//! A concrete eBGP-style algebra: local preference, path length and community
//! tags, with per-edge import/export policies.
//!
//! This is the concrete counterpart of the paper's running example (§2) and of
//! the fattree policies: the `timepiece-nets` crate defines the same
//! semantics at the expression level and differentially tests against this
//! implementation.

use std::collections::{BTreeSet, HashMap};

use timepiece_topology::NodeId;

use crate::traits::RoutingAlgebra;

/// A concrete BGP-style route announcement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BgpRoute {
    /// Local preference — higher is better.
    pub lp: u64,
    /// AS-path length — shorter is better.
    pub len: u64,
    /// Community tags.
    pub tags: BTreeSet<String>,
}

impl BgpRoute {
    /// A fresh route with default preference 100, zero length, no tags.
    pub fn originate() -> BgpRoute {
        BgpRoute { lp: 100, len: 0, tags: BTreeSet::new() }
    }

    /// Does the route carry a tag?
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }

    /// Adds a tag (builder style).
    pub fn with_tag(mut self, tag: impl Into<String>) -> BgpRoute {
        self.tags.insert(tag.into());
        self
    }
}

/// A per-edge routing policy, applied by [`Bgp::transfer`].
///
/// Fields apply in order: drop checks first, then modifications. Path length
/// increments unless `increment_len` is disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgePolicy {
    /// Drop every route (the running example's `filter`).
    pub drop_all: bool,
    /// Drop routes carrying this tag (e.g. valley-freedom's `down`).
    pub drop_if_tag: Option<String>,
    /// Drop routes *not* carrying this tag (the running example's `allow`).
    pub drop_unless_tag: Option<String>,
    /// Tags to add on import (the running example's `tag`).
    pub add_tags: Vec<String>,
    /// Tags to strip on import.
    pub remove_tags: Vec<String>,
    /// Overwrite local preference.
    pub set_lp: Option<u64>,
    /// Skip the default path length increment.
    pub no_len_increment: bool,
}

impl EdgePolicy {
    /// The identity policy: increment length, change nothing else.
    pub fn passthrough() -> EdgePolicy {
        EdgePolicy::default()
    }

    /// A policy that drops everything.
    pub fn deny() -> EdgePolicy {
        EdgePolicy { drop_all: true, ..EdgePolicy::default() }
    }
}

/// The BGP-style algebra: initial routes per node plus per-edge policies.
///
/// # Example
///
/// ```
/// use timepiece_algebra::{Bgp, BgpRoute, EdgePolicy, RoutingAlgebra};
/// use timepiece_topology::NodeId;
///
/// let (w, v) = (NodeId::new(0), NodeId::new(1));
/// let mut bgp = Bgp::new();
/// bgp.set_initial(w, BgpRoute::originate());
/// bgp.set_policy((w, v), EdgePolicy { add_tags: vec!["internal".into()], ..Default::default() });
/// let sent = bgp.transfer((w, v), &bgp.initial(w));
/// assert!(sent.unwrap().has_tag("internal"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bgp {
    initials: HashMap<NodeId, BgpRoute>,
    policies: HashMap<(NodeId, NodeId), EdgePolicy>,
}

impl Bgp {
    /// Creates an algebra with no initial routes and passthrough policies.
    pub fn new() -> Bgp {
        Bgp::default()
    }

    /// Gives `v` an initial route.
    pub fn set_initial(&mut self, v: NodeId, route: BgpRoute) -> &mut Bgp {
        self.initials.insert(v, route);
        self
    }

    /// Installs a policy on an edge.
    pub fn set_policy(&mut self, edge: (NodeId, NodeId), policy: EdgePolicy) -> &mut Bgp {
        self.policies.insert(edge, policy);
        self
    }

    /// The policy of an edge (passthrough if unset).
    pub fn policy(&self, edge: (NodeId, NodeId)) -> EdgePolicy {
        self.policies.get(&edge).cloned().unwrap_or_default()
    }

    /// Compares two present routes: higher lp wins, then shorter length, then
    /// (for determinism and commutativity) lexicographically smaller tags.
    fn better(a: &BgpRoute, b: &BgpRoute) -> bool {
        (std::cmp::Reverse(a.lp), a.len, &a.tags) < (std::cmp::Reverse(b.lp), b.len, &b.tags)
    }
}

impl RoutingAlgebra for Bgp {
    type Route = Option<BgpRoute>;

    fn initial(&self, v: NodeId) -> Option<BgpRoute> {
        self.initials.get(&v).cloned()
    }

    fn transfer(&self, edge: (NodeId, NodeId), route: &Option<BgpRoute>) -> Option<BgpRoute> {
        let route = route.as_ref()?;
        let policy = self.policies.get(&edge);
        if let Some(p) = policy {
            if p.drop_all {
                return None;
            }
            if p.drop_if_tag.as_deref().is_some_and(|t| route.has_tag(t)) {
                return None;
            }
            if p.drop_unless_tag.as_deref().is_some_and(|t| !route.has_tag(t)) {
                return None;
            }
        }
        let mut out = route.clone();
        if let Some(p) = policy {
            for t in &p.add_tags {
                out.tags.insert(t.clone());
            }
            for t in &p.remove_tags {
                out.tags.remove(t);
            }
            if let Some(lp) = p.set_lp {
                out.lp = lp;
            }
            if !p.no_len_increment {
                out.len = out.len.saturating_add(1);
            }
        } else {
            out.len = out.len.saturating_add(1);
        }
        Some(out)
    }

    fn merge(&self, a: &Option<BgpRoute>, b: &Option<BgpRoute>) -> Option<BgpRoute> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if Bgp::better(x, y) { x.clone() } else { y.clone() }),
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> (NodeId, NodeId) {
        (NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn merge_prefers_lp_then_len() {
        let bgp = Bgp::new();
        let low = BgpRoute { lp: 100, len: 2, tags: BTreeSet::new() };
        let high = BgpRoute { lp: 200, len: 5, tags: BTreeSet::new() };
        assert_eq!(bgp.merge(&Some(low.clone()), &Some(high.clone())), Some(high.clone()));
        let short = BgpRoute { lp: 200, len: 2, tags: BTreeSet::new() };
        assert_eq!(bgp.merge(&Some(short.clone()), &Some(high)), Some(short));
        assert_eq!(bgp.merge(&Some(low.clone()), &None), Some(low));
    }

    #[test]
    fn merge_examples_from_paper() {
        // the three ⊕ examples of §2.1
        let bgp = Bgp::new();
        let r1 = BgpRoute { lp: 100, len: 2, tags: BTreeSet::new() };
        let r2 = BgpRoute { lp: 200, len: 5, tags: ["internal".to_owned()].into() };
        assert_eq!(bgp.merge(&Some(r1.clone()), &None), Some(r1.clone()));
        assert_eq!(bgp.merge(&Some(r1.clone()), &Some(r2.clone())), Some(r2.clone()));
        let r3 = BgpRoute { lp: 200, len: 2, tags: BTreeSet::new() };
        assert_eq!(bgp.merge(&Some(r3.clone()), &Some(r2)), Some(r3));
    }

    #[test]
    fn transfer_increments_length() {
        let bgp = Bgp::new();
        let out = bgp.transfer(edge(), &Some(BgpRoute::originate())).unwrap();
        assert_eq!(out.len, 1);
    }

    #[test]
    fn policy_drop_all() {
        let mut bgp = Bgp::new();
        bgp.set_policy(edge(), EdgePolicy::deny());
        assert_eq!(bgp.transfer(edge(), &Some(BgpRoute::originate())), None);
        assert_eq!(bgp.transfer(edge(), &None), None);
    }

    #[test]
    fn policy_tag_filters() {
        let mut bgp = Bgp::new();
        bgp.set_policy(
            edge(),
            EdgePolicy { drop_unless_tag: Some("internal".into()), ..Default::default() },
        );
        assert_eq!(bgp.transfer(edge(), &Some(BgpRoute::originate())), None);
        let tagged = BgpRoute::originate().with_tag("internal");
        assert!(bgp.transfer(edge(), &Some(tagged)).is_some());

        let mut bgp2 = Bgp::new();
        bgp2.set_policy(
            edge(),
            EdgePolicy { drop_if_tag: Some("down".into()), ..Default::default() },
        );
        assert!(bgp2.transfer(edge(), &Some(BgpRoute::originate())).is_some());
        assert_eq!(bgp2.transfer(edge(), &Some(BgpRoute::originate().with_tag("down"))), None);
    }

    #[test]
    fn policy_modifications() {
        let mut bgp = Bgp::new();
        bgp.set_policy(
            edge(),
            EdgePolicy {
                add_tags: vec!["internal".into()],
                remove_tags: vec!["stale".into()],
                set_lp: Some(200),
                ..Default::default()
            },
        );
        let out = bgp.transfer(edge(), &Some(BgpRoute::originate().with_tag("stale"))).unwrap();
        assert!(out.has_tag("internal"));
        assert!(!out.has_tag("stale"));
        assert_eq!(out.lp, 200);
        assert_eq!(out.len, 1);
    }

    #[test]
    fn no_len_increment_respected() {
        let mut bgp = Bgp::new();
        bgp.set_policy(edge(), EdgePolicy { no_len_increment: true, ..Default::default() });
        let out = bgp.transfer(edge(), &Some(BgpRoute::originate())).unwrap();
        assert_eq!(out.len, 0);
    }

    #[test]
    fn initial_routes() {
        let mut bgp = Bgp::new();
        bgp.set_initial(NodeId::new(3), BgpRoute::originate());
        assert_eq!(bgp.initial(NodeId::new(3)), Some(BgpRoute::originate()));
        assert_eq!(bgp.initial(NodeId::new(0)), None);
    }
}
