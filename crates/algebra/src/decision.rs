//! Concrete algebras for the full BGP decision process and the IGP/EGP
//! administrative-distance product.
//!
//! These are the fast, value-level counterparts of the expression-level
//! scenarios in `timepiece-nets` (`Med`, `Ad`): the [`DecisionBgp`] merge
//! implements local-pref ≻ AS-path length ≻ MED ≻ origin, and [`AdProduct`]
//! layers an administrative distance on top — lower AD wins outright, ties
//! fall through to the inner decision process. Both merges are associative,
//! commutative, idempotent and selective (see the property tests in
//! [`crate::laws`]), which is what lets the modular checker reason about
//! them per-node.

use std::collections::HashMap;

use timepiece_topology::NodeId;

use crate::traits::RoutingAlgebra;

/// BGP origin codes, in preference order (IGP best, unknown worst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// Learned from an interior gateway protocol.
    Igp,
    /// Learned from an exterior gateway protocol.
    Egp,
    /// Origin unknown ("incomplete").
    Unknown,
}

impl Origin {
    /// The lowercase variant name used by schema-level `origin` enum fields.
    pub fn variant(&self) -> &'static str {
        match self {
            Origin::Igp => "igp",
            Origin::Egp => "egp",
            Origin::Unknown => "unknown",
        }
    }
}

/// A route carrying the full decision-process attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecisionRoute {
    /// Local preference — higher is better.
    pub lp: u64,
    /// AS-path length — shorter is better.
    pub len: u64,
    /// Multi-exit discriminator — lower is better.
    pub med: u64,
    /// Origin code — earlier variants are better.
    pub origin: Origin,
}

impl DecisionRoute {
    /// A freshly-originated route: lp 100, zero length, MED 0, origin IGP.
    pub fn originate() -> DecisionRoute {
        DecisionRoute { lp: 100, len: 0, med: 0, origin: Origin::Igp }
    }

    /// The decision-process preference key: smaller keys win.
    fn key(&self) -> (std::cmp::Reverse<u64>, u64, u64, Origin) {
        (std::cmp::Reverse(self.lp), self.len, self.med, self.origin)
    }

    /// Is `self` strictly preferred to `other` by the decision process?
    pub fn better(&self, other: &DecisionRoute) -> bool {
        self.key() < other.key()
    }
}

/// The full-decision-process algebra: transfer increments the path length
/// (optionally stamping a per-edge MED), merge runs
/// lp ≻ len ≻ MED ≻ origin.
#[derive(Debug, Clone, Default)]
pub struct DecisionBgp {
    initials: HashMap<NodeId, DecisionRoute>,
    /// MED stamped on routes crossing an edge while still fresh (len 0) —
    /// the "exit discriminator" the destination advertises per link.
    exit_meds: HashMap<(NodeId, NodeId), u64>,
}

impl DecisionBgp {
    /// An algebra with no initial routes and no exit MEDs.
    pub fn new() -> DecisionBgp {
        DecisionBgp::default()
    }

    /// Gives `v` an initial route.
    pub fn set_initial(&mut self, v: NodeId, route: DecisionRoute) -> &mut DecisionBgp {
        self.initials.insert(v, route);
        self
    }

    /// Stamps MED `med` on fresh (len-0) routes crossing `edge`.
    pub fn set_exit_med(&mut self, edge: (NodeId, NodeId), med: u64) -> &mut DecisionBgp {
        self.exit_meds.insert(edge, med);
        self
    }
}

impl RoutingAlgebra for DecisionBgp {
    type Route = Option<DecisionRoute>;

    fn initial(&self, v: NodeId) -> Option<DecisionRoute> {
        self.initials.get(&v).copied()
    }

    fn transfer(
        &self,
        edge: (NodeId, NodeId),
        route: &Option<DecisionRoute>,
    ) -> Option<DecisionRoute> {
        let mut out = (*route)?;
        if out.len == 0 {
            if let Some(&med) = self.exit_meds.get(&edge) {
                out.med = med;
            }
        }
        out.len = out.len.saturating_add(1);
        Some(out)
    }

    fn merge(&self, a: &Option<DecisionRoute>, b: &Option<DecisionRoute>) -> Option<DecisionRoute> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.better(x) { *y } else { *x }),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }
}

/// A route of the AD product: a protocol's administrative distance paired
/// with the protocol-level route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdRoute {
    /// Administrative distance — lower is better, compared first.
    pub ad: u64,
    /// The protocol-level route, deciding ties.
    pub route: DecisionRoute,
}

impl AdRoute {
    /// An eBGP-learned route (AD 20).
    pub fn ebgp(route: DecisionRoute) -> AdRoute {
        AdRoute { ad: 20, route }
    }

    /// An IGP-learned route (AD 110, OSPF-style).
    pub fn igp(route: DecisionRoute) -> AdRoute {
        AdRoute { ad: 110, route }
    }

    /// Is `self` strictly preferred to `other`? Lower AD wins outright;
    /// equal ADs fall through to the inner decision process.
    pub fn better(&self, other: &AdRoute) -> bool {
        self.ad < other.ad || (self.ad == other.ad && self.route.better(&other.route))
    }
}

/// The IGP/EGP product algebra: merge on (AD, then decision process),
/// transfer increments the inner path length and preserves the AD — routes
/// keep the distance of the protocol that introduced them.
#[derive(Debug, Clone, Default)]
pub struct AdProduct {
    initials: HashMap<NodeId, AdRoute>,
}

impl AdProduct {
    /// An algebra with no initial routes.
    pub fn new() -> AdProduct {
        AdProduct::default()
    }

    /// Gives `v` an initial route.
    pub fn set_initial(&mut self, v: NodeId, route: AdRoute) -> &mut AdProduct {
        self.initials.insert(v, route);
        self
    }
}

impl RoutingAlgebra for AdProduct {
    type Route = Option<AdRoute>;

    fn initial(&self, v: NodeId) -> Option<AdRoute> {
        self.initials.get(&v).copied()
    }

    fn transfer(&self, _edge: (NodeId, NodeId), route: &Option<AdRoute>) -> Option<AdRoute> {
        let mut out = (*route)?;
        out.route.len = out.route.len.saturating_add(1);
        Some(out)
    }

    fn merge(&self, a: &Option<AdRoute>, b: &Option<AdRoute>) -> Option<AdRoute> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.better(x) { *y } else { *x }),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_order_is_lp_len_med_origin() {
        let base = DecisionRoute { lp: 100, len: 2, med: 5, origin: Origin::Egp };
        assert!(DecisionRoute { lp: 200, ..base }.better(&base), "lp dominates");
        assert!(DecisionRoute { len: 1, ..base }.better(&base), "len breaks lp ties");
        assert!(DecisionRoute { med: 0, ..base }.better(&base), "med breaks len ties");
        assert!(DecisionRoute { origin: Origin::Igp, ..base }.better(&base), "origin last");
        assert!(!base.better(&base), "strictness");
        // lp beats everything below it
        let worse_rest = DecisionRoute { lp: 200, len: 9, med: 9, origin: Origin::Unknown };
        assert!(worse_rest.better(&base));
    }

    #[test]
    fn exit_med_stamps_only_fresh_routes() {
        let e = (NodeId::new(0), NodeId::new(1));
        let mut alg = DecisionBgp::new();
        alg.set_exit_med(e, 7);
        let fresh = alg.transfer(e, &Some(DecisionRoute::originate())).unwrap();
        assert_eq!((fresh.med, fresh.len), (7, 1));
        let aged = alg.transfer(e, &Some(fresh)).unwrap();
        assert_eq!((aged.med, aged.len), (7, 2), "MED preserved, not re-stamped");
        let other = (NodeId::new(1), NodeId::new(2));
        let unstamped = alg.transfer(other, &Some(DecisionRoute::originate())).unwrap();
        assert_eq!(unstamped.med, 0);
        assert_eq!(alg.transfer(e, &None), None);
    }

    #[test]
    fn ad_beats_the_inner_decision_process() {
        let great_igp =
            AdRoute::igp(DecisionRoute { lp: 1000, len: 0, med: 0, origin: Origin::Igp });
        let modest_ebgp =
            AdRoute::ebgp(DecisionRoute { lp: 100, len: 5, med: 9, origin: Origin::Unknown });
        assert!(modest_ebgp.better(&great_igp), "AD 20 beats AD 110 regardless of attributes");
        // equal AD: inner process decides
        let a = AdRoute::ebgp(DecisionRoute { lp: 100, len: 1, med: 0, origin: Origin::Igp });
        let b = AdRoute::ebgp(DecisionRoute { lp: 100, len: 2, med: 0, origin: Origin::Igp });
        assert!(a.better(&b) && !b.better(&a));
    }

    #[test]
    fn product_transfer_preserves_ad() {
        let alg = AdProduct::new();
        let e = (NodeId::new(0), NodeId::new(1));
        let out = alg.transfer(e, &Some(AdRoute::igp(DecisionRoute::originate()))).unwrap();
        assert_eq!(out.ad, 110);
        assert_eq!(out.route.len, 1);
    }

    #[test]
    fn simulation_converges_to_lowest_ad() {
        use timepiece_topology::gen;
        // v0 originates eBGP, v2 holds a competing IGP route; eBGP wins
        // everywhere once it arrives
        let g = gen::undirected_path(3);
        let v0 = g.node_by_name("v0").unwrap();
        let v2 = g.node_by_name("v2").unwrap();
        let mut alg = AdProduct::new();
        alg.set_initial(v0, AdRoute::ebgp(DecisionRoute::originate()));
        alg.set_initial(v2, AdRoute::igp(DecisionRoute::originate()));
        let mut state: Vec<Option<AdRoute>> = g.nodes().map(|v| alg.initial(v)).collect();
        for _ in 0..8 {
            let prev = state.clone();
            for v in g.nodes() {
                let candidates: Vec<Option<AdRoute>> =
                    g.preds(v).iter().map(|&u| alg.transfer((u, v), &prev[u.index()])).collect();
                state[v.index()] = alg.merge_all(alg.initial(v), candidates.iter());
            }
        }
        for (i, r) in state.iter().enumerate() {
            let r = r.expect("every node has a route");
            assert_eq!(r.ad, 20, "node {i} converged to the eBGP route");
            assert_eq!(r.route.len, i as u64);
        }
    }
}
