//! Checkable algebraic laws for routing algebras.
//!
//! Well-behaved routing protocols need their merge to be associative,
//! commutative, idempotent and *selective* (the result is always one of its
//! arguments), and converge fastest when the algebra is *strictly monotonic*:
//! merge prefers a route over any transferred copy of it (§4, "Incorporating
//! delay"). These helpers phrase each law as a boolean check over sample
//! routes so unit tests and property tests can share them.

use crate::traits::RoutingAlgebra;
use timepiece_topology::NodeId;

/// `a ⊕ b = b ⊕ a`.
pub fn commutative<A: RoutingAlgebra>(alg: &A, a: &A::Route, b: &A::Route) -> bool {
    alg.merge(a, b) == alg.merge(b, a)
}

/// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
pub fn associative<A: RoutingAlgebra>(alg: &A, a: &A::Route, b: &A::Route, c: &A::Route) -> bool {
    alg.merge(&alg.merge(a, b), c) == alg.merge(a, &alg.merge(b, c))
}

/// `a ⊕ a = a`.
pub fn idempotent<A: RoutingAlgebra>(alg: &A, a: &A::Route) -> bool {
    alg.merge(a, a) == *a
}

/// `a ⊕ b ∈ {a, b}`.
pub fn selective<A: RoutingAlgebra>(alg: &A, a: &A::Route, b: &A::Route) -> bool {
    let m = alg.merge(a, b);
    m == *a || m == *b
}

/// Strict monotonicity at an edge: `r ⊕ f_e(r) = r` — a node never prefers a
/// route that has been transferred back to it over the original.
pub fn prefers_original<A: RoutingAlgebra>(alg: &A, edge: (NodeId, NodeId), r: &A::Route) -> bool {
    alg.merge(r, &alg.transfer(edge, r)) == *r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bgp, BgpRoute, ShortestPath};
    use std::collections::BTreeSet;

    #[test]
    fn shortest_path_laws_on_samples() {
        let alg = ShortestPath::new(NodeId::new(0));
        let samples = [None, Some(0u64), Some(1), Some(7), Some(u64::MAX)];
        let e = (NodeId::new(0), NodeId::new(1));
        for a in &samples {
            assert!(idempotent(&alg, a));
            assert!(prefers_original(&alg, e, a));
            for b in &samples {
                assert!(commutative(&alg, a, b));
                assert!(selective(&alg, a, b));
                for c in &samples {
                    assert!(associative(&alg, a, b, c));
                }
            }
        }
    }

    use crate::decision::{AdProduct, AdRoute, DecisionBgp, DecisionRoute, Origin};
    use proptest::prelude::*;

    fn origin_strategy() -> impl Strategy<Value = Origin> {
        (0u8..3).prop_map(|i| match i {
            0 => Origin::Igp,
            1 => Origin::Egp,
            _ => Origin::Unknown,
        })
    }

    fn decision_route() -> impl Strategy<Value = Option<DecisionRoute>> {
        proptest::option::of(
            (0u64..4, 0u64..5, 0u64..4, origin_strategy()).prop_map(|(lp, len, med, origin)| {
                DecisionRoute { lp: lp * 100, len, med, origin }
            }),
        )
    }

    fn ad_route() -> impl Strategy<Value = Option<AdRoute>> {
        decision_route().prop_flat_map(|inner| {
            (0u8..2).prop_map(move |p| {
                inner.map(|route| if p == 0 { AdRoute::ebgp(route) } else { AdRoute::igp(route) })
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 400, rng_seed: 0x00a1_9e8a_0000_0001 })]

        /// The full decision-process merge (lp ≻ len ≻ MED ≻ origin) is a
        /// well-behaved selection function.
        #[test]
        fn decision_merge_laws(
            a in decision_route(),
            b in decision_route(),
            c in decision_route(),
        ) {
            let alg = DecisionBgp::new();
            prop_assert!(idempotent(&alg, &a));
            prop_assert!(commutative(&alg, &a, &b), "commutativity on {a:?} {b:?}");
            prop_assert!(selective(&alg, &a, &b));
            prop_assert!(associative(&alg, &a, &b, &c), "associativity on {a:?} {b:?} {c:?}");
            let e = (NodeId::new(0), NodeId::new(1));
            prop_assert!(prefers_original(&alg, e, &a));
        }

        /// The AD product merge (AD first, decision process on ties) keeps
        /// every law of its factors.
        #[test]
        fn ad_product_merge_laws(
            a in ad_route(),
            b in ad_route(),
            c in ad_route(),
        ) {
            let alg = AdProduct::new();
            prop_assert!(idempotent(&alg, &a));
            prop_assert!(commutative(&alg, &a, &b), "commutativity on {a:?} {b:?}");
            prop_assert!(selective(&alg, &a, &b));
            prop_assert!(associative(&alg, &a, &b, &c), "associativity on {a:?} {b:?} {c:?}");
            let e = (NodeId::new(0), NodeId::new(1));
            prop_assert!(prefers_original(&alg, e, &a));
        }
    }

    #[test]
    fn bgp_laws_on_samples() {
        let alg = Bgp::new();
        let mk = |lp: u64, len: u64, tag: Option<&str>| {
            let mut tags = BTreeSet::new();
            if let Some(t) = tag {
                tags.insert(t.to_owned());
            }
            Some(BgpRoute { lp, len, tags })
        };
        let samples = [
            None,
            mk(100, 0, None),
            mk(100, 2, Some("internal")),
            mk(200, 5, None),
            mk(200, 5, Some("down")),
        ];
        let e = (NodeId::new(0), NodeId::new(1));
        for a in &samples {
            assert!(idempotent(&alg, a));
            assert!(prefers_original(&alg, e, a));
            for b in &samples {
                assert!(commutative(&alg, a, b), "commutativity on {a:?} {b:?}");
                assert!(selective(&alg, a, b));
                for c in &samples {
                    assert!(associative(&alg, a, b, c));
                }
            }
        }
    }
}
