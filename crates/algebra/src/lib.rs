//! Routing algebras for the Timepiece reproduction.
//!
//! A routing algebra (Griffin & Sobrinho's metarouting, as used by the paper's
//! §2.1 model) is a tuple `(S, I, F, ⊕)`: a set of routes, initial routes per
//! node, per-edge transfer functions, and a merge (selection) function.
//!
//! This crate provides the algebra abstraction at two levels:
//!
//! * **Concrete** ([`RoutingAlgebra`]): Rust values and functions, used by the
//!   fast simulator and for checking algebraic laws ([`laws`]) with property
//!   tests. Instances: [`ShortestPath`], [`WidestPath`], [`Bgp`].
//! * **Symbolic** ([`Network`]): routes are terms of the `timepiece-expr` IR
//!   and the functions build terms, so one definition drives both the
//!   reference simulator (by interpretation) and the SMT verifier (by
//!   compilation).
//!
//! # Example
//!
//! ```
//! use timepiece_algebra::{RoutingAlgebra, ShortestPath};
//! use timepiece_topology::gen;
//!
//! let g = gen::path(3);
//! let dest = g.node_by_name("v0").unwrap();
//! let alg = ShortestPath::new(dest);
//! let r = alg.transfer((dest, g.node_by_name("v1").unwrap()), &alg.initial(dest));
//! assert_eq!(r, Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bgp;
pub mod decision;
pub mod laws;
pub mod network;
pub mod policy;
pub mod policy_text;
pub mod shortest_path;
pub mod traits;
pub mod widest_path;

pub use bgp::{Bgp, BgpRoute, EdgePolicy};
pub use decision::{AdProduct, AdRoute, DecisionBgp, DecisionRoute, Origin};
pub use network::{Network, NetworkBuilder, NetworkPolicies, Symbolic};
pub use policy::{
    ClauseAction, FailureModel, MergeKey, PolicyClause, PolicyError, RewriteOp, RouteGuard,
    RoutePolicy, RouteSchema,
};
pub use shortest_path::ShortestPath;
pub use traits::RoutingAlgebra;
pub use widest_path::WidestPath;
