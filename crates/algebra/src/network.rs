//! The expression-level network model.
//!
//! A [`Network`] is a routing algebra whose routes are terms of the
//! `timepiece-expr` IR: the initial routes are expressions (possibly over
//! symbolic variables), and transfer/merge are functions from terms to terms.
//! One definition therefore drives both concrete simulation (interpret the
//! terms) and SMT verification (compile the terms) — the sim/verifier
//! agreement the paper gets from using Zen for both.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use timepiece_expr::{Expr, Type, TypeError, Value};
use timepiece_topology::{NodeId, Topology};

use crate::policy::{FailureModel, RoutePolicy, RouteSchema};

/// A transfer function `f_e`, building the route sent across an edge.
pub type TransferFn = Arc<dyn Fn(&Expr) -> Expr + Send + Sync>;

/// The merge function `⊕`, building the better of two routes.
pub type MergeFn = Arc<dyn Fn(&Expr, &Expr) -> Expr + Send + Sync>;

/// A symbolic input to the network: an unconstrained value chosen by the
/// adversary/environment, optionally restricted by a precondition.
///
/// Examples from the paper: the arbitrary route announced by an external
/// peer, or the symbolic destination prefix of the `Hijack` benchmark.
#[derive(Clone)]
pub struct Symbolic {
    name: String,
    ty: Type,
    constraint: Option<Expr>,
}

impl Symbolic {
    /// Creates a symbolic value, optionally constrained.
    ///
    /// The constraint may mention the symbolic variable itself (via
    /// [`Symbolic::var`]) and any other symbolic of the same network.
    pub fn new(name: impl Into<String>, ty: Type, constraint: Option<Expr>) -> Symbolic {
        Symbolic { name: name.into(), ty, constraint }
    }

    /// The symbolic variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbolic variable's type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// The precondition, if any.
    pub fn constraint(&self) -> Option<&Expr> {
        self.constraint.as_ref()
    }

    /// The variable term referring to this symbolic.
    pub fn var(&self) -> Expr {
        Expr::var(self.name.clone(), self.ty.clone())
    }
}

impl fmt::Debug for Symbolic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Symbolic")
            .field("name", &self.name)
            .field("ty", &self.ty.to_string())
            .field("constrained", &self.constraint.is_some())
            .finish()
    }
}

/// An error found while assembling or validating a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// An edge has no transfer function and no default was provided.
    MissingTransfer {
        /// The edge without a transfer function.
        edge: (NodeId, NodeId),
    },
    /// Two symbolics share a name.
    DuplicateSymbolic(String),
    /// An initial route, transfer result, merge result or constraint had the
    /// wrong type.
    BadType {
        /// Which component was ill-typed.
        what: String,
        /// The underlying type error.
        source: TypeError,
    },
    /// Declarative policies were mixed with closure-based transfer/merge
    /// components on the same builder.
    MixedPolicyModes,
    /// A policy delta was applied to a network not built through the policy
    /// IR (closure-built transfers are opaque and cannot be edited).
    NotPolicyMode,
    /// A delta named an edge the topology does not have.
    UnknownEdge {
        /// The unknown edge.
        edge: (NodeId, NodeId),
    },
    /// A failure-budget delta was applied to a network without a
    /// [`FailureModel`].
    NoFailureModel,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::MissingTransfer { edge } => {
                write!(f, "edge {} -> {} has no transfer function", edge.0, edge.1)
            }
            NetworkError::DuplicateSymbolic(name) => {
                write!(f, "duplicate symbolic value {name:?}")
            }
            NetworkError::BadType { what, source } => write!(f, "ill-typed {what}: {source}"),
            NetworkError::MixedPolicyModes => {
                write!(f, "declarative policies cannot be mixed with closure transfers/merge")
            }
            NetworkError::NotPolicyMode => {
                write!(f, "policy deltas require a network built through the policy IR")
            }
            NetworkError::UnknownEdge { edge } => {
                write!(f, "the topology has no edge {} -> {}", edge.0, edge.1)
            }
            NetworkError::NoFailureModel => {
                write!(f, "the network has no failure model to re-budget")
            }
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::BadType { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The declarative policy layer of a network built through the policy IR:
/// the [`RouteSchema`], the per-edge [`RoutePolicy`]s (with an optional
/// default), and an optional [`FailureModel`].
///
/// Networks carrying this structure expose it to every downstream consumer:
/// the simulator runs the IR's concrete semantics directly, the checker keys
/// solver sessions by [`NetworkPolicies::structural_hash`], and inference
/// derives its atom grammar from the schema.
#[derive(Debug, Clone)]
pub struct NetworkPolicies {
    /// The route schema (record shape + merge order).
    pub schema: RouteSchema,
    /// Per-edge policies.
    pub edge_policies: HashMap<(NodeId, NodeId), RoutePolicy>,
    /// The policy of edges without a specific one.
    pub default_policy: Option<RoutePolicy>,
    /// The bounded link-failure model, if any.
    pub failures: Option<FailureModel>,
}

impl NetworkPolicies {
    /// The policy of an edge (the default when no specific one is set).
    pub fn policy(&self, edge: (NodeId, NodeId)) -> Option<&RoutePolicy> {
        self.edge_policies.get(&edge).or(self.default_policy.as_ref())
    }

    /// A structural fingerprint of the whole policy layer: the schema, the
    /// *set* of distinct policy structures (not their edge assignment, so
    /// topologies of different size built from the same policy templates
    /// share a fingerprint when their template sets coincide), and the
    /// failure budget.
    ///
    /// Policies are fingerprinted through the hash-consing arena: each
    /// distinct policy is compiled once against a canonical probe route, and
    /// the interned result's precomputed [`Expr::structural_hash`] is read
    /// off in O(1) — the fingerprint therefore sees *compiled* structure, so
    /// two policies that compile to the same canonical term (after constant
    /// folding) coincide even when their clause lists differ syntactically.
    pub fn structural_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        let probe_a = Expr::var("·sig-a", self.schema.route_type());
        let probe_b = Expr::var("·sig-b", self.schema.route_type());
        self.schema.merge_expr(&probe_a, &probe_b).structural_hash().hash(&mut h);
        // compile each *syntactically* distinct policy once, then dedup the
        // compiled hashes too (clause lists that fold to the same term)
        let mut distinct: Vec<(u64, &RoutePolicy)> = Vec::new();
        for p in self.edge_policies.values().chain(self.default_policy.as_ref()) {
            let key = p.structural_hash();
            if !distinct.iter().any(|(k, _)| *k == key) {
                distinct.push((key, p));
            }
        }
        let mut policy_hashes: Vec<u64> = distinct
            .iter()
            .map(|(_, p)| p.compile(&self.schema, &probe_a).structural_hash())
            .collect();
        policy_hashes.sort_unstable();
        policy_hashes.dedup();
        policy_hashes.hash(&mut h);
        if let Some(f) = &self.failures {
            f.budget().hash(&mut h);
            f.edges().len().hash(&mut h);
        }
        h.finish()
    }
}

/// A complete network instance `N = (G, S, I, F, ⊕)` at the expression level.
///
/// Build one with [`NetworkBuilder`]; the builder validates the types of
/// every component against the declared route type.
///
/// # Example
///
/// ```
/// use timepiece_algebra::NetworkBuilder;
/// use timepiece_expr::{Expr, Type};
/// use timepiece_topology::gen;
///
/// // hop-count routing to v0 on a 3-node path
/// let g = gen::path(3);
/// let dest = g.node_by_name("v0").unwrap();
/// let route_ty = Type::option(Type::Int);
/// let net = NetworkBuilder::new(g, route_ty.clone())
///     .merge(|a, b| {
///         let better = a.clone().get_some().le(b.clone().get_some());
///         b.clone().is_none().or(a.clone().is_some().and(better)).ite(a.clone(), b.clone())
///     })
///     .default_transfer(|r| {
///         r.clone().match_option(Expr::none(Type::Int), |hops| hops.add(Expr::int(1)).some())
///     })
///     .init(dest, Expr::int(0).some())
///     .build()?;
/// assert_eq!(net.route_type(), &route_ty);
/// # Ok::<(), timepiece_algebra::network::NetworkError>(())
/// ```
#[derive(Clone)]
pub struct Network {
    topology: Arc<Topology>,
    route_type: Type,
    init: Vec<Expr>,
    transfers: HashMap<(NodeId, NodeId), TransferFn>,
    merge: MergeFn,
    symbolics: Vec<Symbolic>,
    policies: Option<Arc<NetworkPolicies>>,
    /// Memoized [`Network::encoder_signature`]; behind an `Arc` so every
    /// clone of this network (sweep jobs clone per row) shares one
    /// computation.
    signature: Arc<std::sync::OnceLock<String>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.topology.node_count())
            .field("edges", &self.topology.edge_count())
            .field("route_type", &self.route_type.to_string())
            .field("symbolics", &self.symbolics)
            .finish()
    }
}

impl Network {
    /// The topology `G`.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A shared handle to the topology.
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// The route type `S`.
    pub fn route_type(&self) -> &Type {
        &self.route_type
    }

    /// The initial route term `I(v)`.
    pub fn init(&self, v: NodeId) -> &Expr {
        &self.init[v.index()]
    }

    /// Applies the transfer function of an edge to a route term.
    ///
    /// # Panics
    ///
    /// Panics if the edge has no transfer function (prevented by the builder
    /// for edges of the topology).
    pub fn transfer(&self, edge: (NodeId, NodeId), route: &Expr) -> Expr {
        (self
            .transfers
            .get(&edge)
            .unwrap_or_else(|| panic!("no transfer function for edge {} -> {}", edge.0, edge.1)))(
            route,
        )
    }

    /// Applies the merge function to two route terms.
    pub fn merge(&self, a: &Expr, b: &Expr) -> Expr {
        (self.merge)(a, b)
    }

    /// The symbolic inputs.
    pub fn symbolics(&self) -> &[Symbolic] {
        &self.symbolics
    }

    /// The declarative policy layer, when the network was built through the
    /// policy IR ([`NetworkBuilder::from_schema`]). `None` for networks
    /// assembled from raw closures.
    pub fn policies(&self) -> Option<&NetworkPolicies> {
        self.policies.as_deref()
    }

    /// The key under which solver sessions may be shared between
    /// verification conditions of this network: a structural hash of the
    /// policy IR when present (two networks built from the same schema and
    /// policy templates produce identical declarations and shared terms),
    /// falling back to the route type for closure-built networks (where the
    /// policy structure is opaque).
    ///
    /// Computed once per network (clones included) and memoized; the
    /// fingerprint itself reads precomputed arena hashes, so repeated calls
    /// — one per sweep job — are a clone of a cached string.
    pub fn encoder_signature(&self) -> String {
        self.signature
            .get_or_init(|| match &self.policies {
                Some(p) => format!("ir:{:016x}", p.structural_hash()),
                None => format!("ty:{}", self.route_type),
            })
            .clone()
    }

    /// The preconditions of all symbolics, as boolean terms.
    pub fn symbolic_constraints(&self) -> Vec<Expr> {
        self.symbolics.iter().filter_map(|s| s.constraint().cloned()).collect()
    }

    /// A fresh variable denoting the route of node `u` (used as a neighbor
    /// input when building verification conditions).
    pub fn route_var(&self, u: NodeId) -> Expr {
        Expr::var(self.route_var_name(u), self.route_type.clone())
    }

    /// The name of [`Network::route_var`]'s variable for node `u` — the key
    /// a counterexample assignment binds that node's route under.
    pub fn route_var_name(&self, u: NodeId) -> String {
        format!("route-{}", self.topology.name(u))
    }

    /// A clone of this network with the policy of one edge replaced
    /// (`Some`) or its override removed so the edge falls back to the
    /// default policy (`None`) — the policy-delta primitive of the
    /// `timepieced` daemon. Only the edited edge's transfer is recompiled;
    /// every other component is shared with `self`. The memoized
    /// [`Network::encoder_signature`] is reset, since the policy set (and so
    /// the IR fingerprint) may have changed.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::NotPolicyMode`] for closure-built networks;
    /// * [`NetworkError::UnknownEdge`] if the topology lacks the edge;
    /// * [`NetworkError::MissingTransfer`] if removing the override leaves
    ///   the edge with no policy (no default was declared);
    /// * [`NetworkError::BadType`] if the new policy's output is ill-typed.
    pub fn set_edge_policy(
        &self,
        edge: (NodeId, NodeId),
        policy: Option<RoutePolicy>,
    ) -> Result<Network, NetworkError> {
        let Some(old) = &self.policies else { return Err(NetworkError::NotPolicyMode) };
        if !self.transfers.contains_key(&edge) {
            return Err(NetworkError::UnknownEdge { edge });
        }
        let mut edited = (**old).clone();
        match policy {
            Some(p) => {
                edited.edge_policies.insert(edge, p);
            }
            None => {
                edited.edge_policies.remove(&edge);
            }
        }
        let policies = Arc::new(edited);
        let Some(effective) = policies.policy(edge).cloned() else {
            return Err(NetworkError::MissingTransfer { edge });
        };
        // recompile exactly the edited edge, as `build` would have: the
        // other edges' closures capture the previous `Arc<NetworkPolicies>`,
        // which is fine — they only read the (unchanged) schema from it
        let p = Arc::clone(&policies);
        let fail_var = policies
            .failures
            .as_ref()
            .filter(|f| f.tracks(edge))
            .map(|_| FailureModel::var(&self.topology, edge));
        let transfer: TransferFn = Arc::new(move |r: &Expr| {
            let transferred = effective.compile(&p.schema, r);
            match &fail_var {
                Some(fail) => fail.clone().ite(p.schema.none_route(), transferred),
                None => transferred,
            }
        });
        let probe = Expr::var("probe-a", self.route_type.clone());
        expect_type(
            &transfer(&probe),
            &self.route_type,
            &format!(
                "transfer result of {} -> {}",
                self.topology.name(edge.0),
                self.topology.name(edge.1)
            ),
        )?;
        let mut net = self.clone();
        net.transfers.insert(edge, transfer);
        net.policies = Some(policies);
        net.signature = Arc::new(std::sync::OnceLock::new());
        Ok(net)
    }

    /// A clone of this network with the failure budget `f` replaced: the
    /// same tracked edges, a new at-most-`budget` assumption. Every failure
    /// symbolic's constraint is rebuilt (the budget constraint is a global
    /// fact each of them carries), transfers are untouched (they gate on the
    /// failure *variable*, not the budget), and the memoized signature is
    /// reset.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::NotPolicyMode`] for closure-built networks;
    /// * [`NetworkError::NoFailureModel`] if the network tracks no failures.
    pub fn with_failure_budget(&self, budget: u64) -> Result<Network, NetworkError> {
        let Some(old) = &self.policies else { return Err(NetworkError::NotPolicyMode) };
        let Some(model) = &old.failures else { return Err(NetworkError::NoFailureModel) };
        let model = FailureModel::at_most(budget, model.edges().iter().copied());
        let constraint = model.budget_constraint(&self.topology);
        let fail_names: std::collections::HashSet<String> =
            model.edges().iter().map(|&e| FailureModel::var_name(&self.topology, e)).collect();
        let mut edited = (**old).clone();
        edited.failures = Some(model);
        let mut net = self.clone();
        net.symbolics = self
            .symbolics
            .iter()
            .map(|s| {
                if fail_names.contains(s.name()) {
                    Symbolic::new(s.name().to_owned(), s.ty().clone(), Some(constraint.clone()))
                } else {
                    s.clone()
                }
            })
            .collect();
        net.policies = Some(Arc::new(edited));
        net.signature = Arc::new(std::sync::OnceLock::new());
        Ok(net)
    }

    /// A structural fingerprint of everything node `v`'s one-step behavior
    /// depends on: its initial route, the compiled transfer of each in-edge
    /// (probed with the predecessor's canonical route variable, so the
    /// neighbor *identity* is part of the hash), the merge order, and the
    /// symbolic preconditions. Two networks assigning `v` the same hash make
    /// `v`'s verification conditions identical up to its interface
    /// annotations — the decidable "did this node change" test behind
    /// incremental re-checking.
    pub fn node_structural_hash(&self, v: NodeId) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.init(v).structural_hash().hash(&mut h);
        for &u in self.topology.preds(v) {
            self.transfer((u, v), &self.route_var(u)).structural_hash().hash(&mut h);
        }
        let probe_a = Expr::var("·sig-a", self.route_type.clone());
        let probe_b = Expr::var("·sig-b", self.route_type.clone());
        self.merge(&probe_a, &probe_b).structural_hash().hash(&mut h);
        for c in self.symbolic_constraints() {
            c.structural_hash().hash(&mut h);
        }
        h.finish()
    }

    /// The one-step update `I(v) ⊕ ⨁_u f_{uv}(r_u)` of equation (4), given a
    /// route term for each in-neighbor (in `preds(v)` order).
    ///
    /// # Panics
    ///
    /// Panics if `neighbor_routes` does not match `preds(v)` in length.
    pub fn step(&self, v: NodeId, neighbor_routes: &[Expr]) -> Expr {
        let preds = self.topology.preds(v);
        assert_eq!(
            preds.len(),
            neighbor_routes.len(),
            "step at {} expects one route per in-neighbor",
            self.topology.name(v)
        );
        let mut acc = self.init(v).clone();
        for (&u, r) in preds.iter().zip(neighbor_routes) {
            let transferred = self.transfer((u, v), r);
            acc = self.merge(&acc, &transferred);
        }
        acc
    }
}

/// Builder for [`Network`], validating component types at [`build`].
///
/// [`build`]: NetworkBuilder::build
pub struct NetworkBuilder {
    topology: Topology,
    route_type: Type,
    init: Vec<Option<Expr>>,
    transfers: HashMap<(NodeId, NodeId), TransferFn>,
    default_transfer: Option<TransferFn>,
    merge: Option<MergeFn>,
    symbolics: Vec<Symbolic>,
    schema: Option<RouteSchema>,
    edge_policies: HashMap<(NodeId, NodeId), RoutePolicy>,
    default_policy: Option<RoutePolicy>,
    failures: Option<FailureModel>,
}

impl fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("nodes", &self.topology.node_count())
            .field("route_type", &self.route_type.to_string())
            .finish()
    }
}

impl NetworkBuilder {
    /// Starts a builder for a topology and route type.
    pub fn new(topology: Topology, route_type: Type) -> NetworkBuilder {
        let n = topology.node_count();
        NetworkBuilder {
            topology,
            route_type,
            init: vec![None; n],
            transfers: HashMap::new(),
            default_transfer: None,
            merge: None,
            symbolics: Vec::new(),
            schema: None,
            edge_policies: HashMap::new(),
            default_policy: None,
            failures: None,
        }
    }

    /// Starts a *policy-mode* builder from a [`RouteSchema`]: the route type
    /// is the schema's, the merge `⊕` is compiled from the schema's keys,
    /// and transfers are declared as [`RoutePolicy`] values via
    /// [`NetworkBuilder::policy`] / [`NetworkBuilder::default_policy`].
    ///
    /// One declarative definition then drives simulation (value semantics),
    /// SMT (compiled terms), solver-session keying
    /// ([`Network::encoder_signature`]) and inference (the schema's atom
    /// grammar).
    pub fn from_schema(topology: Topology, schema: RouteSchema) -> NetworkBuilder {
        let mut builder = NetworkBuilder::new(topology, schema.route_type());
        builder.schema = Some(schema);
        builder
    }

    /// Declares the policy of one edge (policy mode).
    pub fn policy(mut self, edge: (NodeId, NodeId), policy: RoutePolicy) -> Self {
        self.edge_policies.insert(edge, policy);
        self
    }

    /// Declares the policy used by edges without a specific one (policy
    /// mode).
    pub fn default_policy(mut self, policy: RoutePolicy) -> Self {
        self.default_policy = Some(policy);
        self
    }

    /// Attaches a bounded link-failure model (policy mode): every tracked
    /// edge's transfer is wrapped in its failure boolean (`fail → ∞`), the
    /// booleans join the network's symbolics, and the at-most-`f` budget is
    /// threaded through every verification condition as a constraint.
    pub fn failures(mut self, model: FailureModel) -> Self {
        self.failures = Some(model);
        self
    }

    /// Sets the merge function `⊕`.
    pub fn merge(mut self, f: impl Fn(&Expr, &Expr) -> Expr + Send + Sync + 'static) -> Self {
        self.merge = Some(Arc::new(f));
        self
    }

    /// Sets the initial route of a node (default: the route type's default
    /// value — `None` for option route types, matching the paper's `∞`).
    pub fn init(mut self, v: NodeId, route: Expr) -> Self {
        self.init[v.index()] = Some(route);
        self
    }

    /// Sets the transfer function of one edge.
    pub fn transfer(
        mut self,
        edge: (NodeId, NodeId),
        f: impl Fn(&Expr) -> Expr + Send + Sync + 'static,
    ) -> Self {
        self.transfers.insert(edge, Arc::new(f));
        self
    }

    /// Sets the transfer function used by edges without a specific one.
    pub fn default_transfer(mut self, f: impl Fn(&Expr) -> Expr + Send + Sync + 'static) -> Self {
        self.default_transfer = Some(Arc::new(f));
        self
    }

    /// Declares a symbolic input.
    pub fn symbolic(mut self, s: Symbolic) -> Self {
        self.symbolics.push(s);
        self
    }

    /// Validates and assembles the network.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::MissingTransfer`] if an edge lacks a transfer
    ///   function and no default was set;
    /// * [`NetworkError::DuplicateSymbolic`] for name collisions;
    /// * [`NetworkError::BadType`] if any initial route, transfer output,
    ///   merge output or symbolic constraint does not type check against the
    ///   route type.
    pub fn build(self) -> Result<Network, NetworkError> {
        let NetworkBuilder {
            topology,
            route_type,
            init,
            mut transfers,
            default_transfer,
            mut merge,
            mut symbolics,
            schema,
            edge_policies,
            default_policy,
            failures,
        } = self;

        // policy mode: compile the declarative IR into the transfer/merge
        // slots the rest of the pipeline consumes, and remember the IR
        let policies = match schema {
            None => {
                if !edge_policies.is_empty() || default_policy.is_some() || failures.is_some() {
                    return Err(NetworkError::MixedPolicyModes);
                }
                None
            }
            Some(schema) => {
                if !transfers.is_empty() || default_transfer.is_some() || merge.is_some() {
                    return Err(NetworkError::MixedPolicyModes);
                }
                let policies =
                    Arc::new(NetworkPolicies { schema, edge_policies, default_policy, failures });
                {
                    let p = Arc::clone(&policies);
                    merge = Some(Arc::new(move |a: &Expr, b: &Expr| p.schema.merge_expr(a, b)));
                }
                for (u, v) in topology.edges() {
                    let Some(policy) = policies.policy((u, v)).cloned() else { continue };
                    let p = Arc::clone(&policies);
                    let fail_var = policies
                        .failures
                        .as_ref()
                        .filter(|f| f.tracks((u, v)))
                        .map(|_| FailureModel::var(&topology, (u, v)));
                    transfers.insert(
                        (u, v),
                        Arc::new(move |r: &Expr| {
                            let transferred = policy.compile(&p.schema, r);
                            match &fail_var {
                                Some(fail) => fail.clone().ite(p.schema.none_route(), transferred),
                                None => transferred,
                            }
                        }),
                    );
                }
                if let Some(model) = &policies.failures {
                    // every failure variable carries the (shared) at-most-f
                    // budget constraint: the global fact survives any
                    // consumer that samples, filters or reorders symbolics
                    // individually; duplicate assumptions are harmless
                    for &edge in model.edges() {
                        symbolics.push(Symbolic::new(
                            FailureModel::var_name(&topology, edge),
                            Type::Bool,
                            Some(model.budget_constraint(&topology)),
                        ));
                    }
                }
                Some(policies)
            }
        };

        for (i, s) in symbolics.iter().enumerate() {
            if symbolics[..i].iter().any(|t| t.name() == s.name()) {
                return Err(NetworkError::DuplicateSymbolic(s.name().to_owned()));
            }
            if let Some(c) = s.constraint() {
                expect_type(c, &Type::Bool, &format!("constraint of symbolic {}", s.name()))?;
            }
        }

        // fill in defaults and check edges
        for (u, v) in topology.edges() {
            if let std::collections::hash_map::Entry::Vacant(e) = transfers.entry((u, v)) {
                match &default_transfer {
                    Some(f) => {
                        e.insert(Arc::clone(f));
                    }
                    None => return Err(NetworkError::MissingTransfer { edge: (u, v) }),
                }
            }
        }

        let merge = merge.unwrap_or_else(|| {
            // a network with no merge cannot select among neighbors; default to
            // first-argument selection only for single-predecessor graphs, but
            // requiring an explicit merge is clearer — keep a panicking stub.
            Arc::new(|_: &Expr, _: &Expr| panic!("network merge function was not set"))
        });

        let default_init = Expr::constant(Value::default_of(&route_type));
        let init: Vec<Expr> =
            init.into_iter().map(|e| e.unwrap_or_else(|| default_init.clone())).collect();

        // type check every component against the route type
        let probe_a = Expr::var("probe-a", route_type.clone());
        let probe_b = Expr::var("probe-b", route_type.clone());
        expect_type(&merge(&probe_a, &probe_b), &route_type, "merge result")?;
        for (v, e) in init.iter().enumerate() {
            expect_type(
                e,
                &route_type,
                &format!("initial route of {}", topology.name(NodeId::new(v as u32))),
            )?;
        }
        for ((u, v), f) in &transfers {
            expect_type(
                &f(&probe_a),
                &route_type,
                &format!("transfer result of {} -> {}", topology.name(*u), topology.name(*v)),
            )?;
        }

        Ok(Network {
            topology: Arc::new(topology),
            route_type,
            init,
            transfers,
            merge,
            symbolics,
            policies,
            signature: Arc::new(std::sync::OnceLock::new()),
        })
    }
}

fn expect_type(e: &Expr, expected: &Type, what: &str) -> Result<(), NetworkError> {
    match e.type_of() {
        Ok(t) if &t == expected => Ok(()),
        Ok(t) => Err(NetworkError::BadType {
            what: what.to_owned(),
            source: TypeError::Mismatch {
                context: "network component",
                expected: expected.clone(),
                found: t,
            },
        }),
        Err(source) => Err(NetworkError::BadType { what: what.to_owned(), source }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::Env;
    use timepiece_topology::gen;

    fn hoplimit_net() -> Network {
        let g = gen::path(3);
        let dest = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::option(Type::Int))
            .merge(|a, b| {
                let a_better = a.clone().get_some().le(b.clone().get_some());
                b.clone().is_none().or(a.clone().is_some().and(a_better)).ite(a.clone(), b.clone())
            })
            .default_transfer(|r| {
                r.clone().match_option(Expr::none(Type::Int), |h| h.add(Expr::int(1)).some())
            })
            .init(dest, Expr::int(0).some())
            .build()
            .expect("valid network")
    }

    #[test]
    fn build_validates_and_steps() {
        let net = hoplimit_net();
        let g = net.topology();
        let v1 = g.node_by_name("v1").unwrap();
        // v1's only pred is v0 with route Some(0): one step gives Some(1)
        let stepped = net.step(v1, &[Expr::int(0).some()]);
        let v = stepped.eval(&Env::new()).unwrap();
        assert_eq!(v, Value::some(Value::int(1)));
    }

    #[test]
    fn default_init_is_type_default() {
        let net = hoplimit_net();
        let g = net.topology();
        let v2 = g.node_by_name("v2").unwrap();
        let v = net.init(v2).eval(&Env::new()).unwrap();
        assert_eq!(v, Value::none(Type::Int));
    }

    #[test]
    fn missing_transfer_reported() {
        let g = gen::path(2);
        let err = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::MissingTransfer { .. }));
    }

    #[test]
    fn ill_typed_merge_reported() {
        let g = gen::path(2);
        let err = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().and(b.clone()).some()) // option<bool>, not bool
            .default_transfer(|r| r.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::BadType { .. }));
    }

    #[test]
    fn ill_typed_init_reported() {
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        let err = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::int(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::BadType { .. }));
    }

    #[test]
    fn duplicate_symbolic_reported() {
        let g = gen::path(2);
        let err = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .symbolic(Symbolic::new("s", Type::Bool, None))
            .symbolic(Symbolic::new("s", Type::Int, None))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::DuplicateSymbolic("s".into()));
    }

    #[test]
    fn symbolic_constraints_collected() {
        let g = gen::path(2);
        let s = Symbolic::new("x", Type::Int, None);
        let c = s.var().ge(Expr::int(0));
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .symbolic(Symbolic::new("x", Type::Int, Some(c)))
            .build()
            .unwrap();
        assert_eq!(net.symbolics().len(), 1);
        assert_eq!(net.symbolic_constraints().len(), 1);
        let _ = s;
    }

    #[test]
    fn network_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Network>();
    }

    #[test]
    fn per_edge_transfer_overrides_default() {
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .transfer((v0, v1), |_| Expr::bool(false))
            .build()
            .unwrap();
        let out = net.transfer((v0, v1), &Expr::bool(true));
        assert_eq!(out.eval(&Env::new()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn policy_mode_builds_and_records_the_ir() {
        use crate::policy::{MergeKey, RoutePolicy, RouteSchema};
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::path(3);
        let dest = g.node_by_name("v0").unwrap();
        let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let net = NetworkBuilder::from_schema(g, schema.clone())
            .default_policy(RoutePolicy::new().increment("len"))
            .init(dest, origin)
            .build()
            .expect("policy network builds");
        assert!(net.policies().is_some());
        assert!(net.encoder_signature().starts_with("ir:"));
        // the compiled transfer increments
        let v1 = net.topology().node_by_name("v1").unwrap();
        let stepped = net.step(v1, &[Expr::record(schema.record_def(), vec![Expr::int(0)]).some()]);
        let out = stepped.eval(&Env::new()).unwrap();
        assert_eq!(out.unwrap_or_default().unwrap().field("len").unwrap().as_int(), Some(1));
    }

    #[test]
    fn mixed_modes_are_rejected() {
        use crate::policy::{MergeKey, RoutePolicy, RouteSchema};
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let err = NetworkBuilder::from_schema(gen::path(2), schema)
            .default_policy(RoutePolicy::new().increment("len"))
            .merge(|a, _| a.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::MixedPolicyModes);
        let err = NetworkBuilder::new(gen::path(2), Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .default_policy(RoutePolicy::new())
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::MixedPolicyModes);
    }

    #[test]
    fn failure_model_adds_symbolics_and_budget_constraint() {
        use crate::policy::{FailureModel, MergeKey, RoutePolicy, RouteSchema};
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::undirected_path(3);
        let dest = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let net = NetworkBuilder::from_schema(g, schema.clone())
            .default_policy(RoutePolicy::new().increment("len"))
            .failures(FailureModel::at_most(1, [(dest, v1)]))
            .init(dest, origin)
            .build()
            .unwrap();
        assert_eq!(net.symbolics().len(), 1);
        assert_eq!(net.symbolic_constraints().len(), 1, "budget constraint attached");
        // the tracked edge's transfer yields ∞ when its failure bit is up
        let fail_name = FailureModel::var_name(net.topology(), (dest, v1));
        let transferred =
            net.transfer((dest, v1), &Expr::record(schema.record_def(), vec![Expr::int(0)]).some());
        let mut env = Env::new();
        env.bind(fail_name.clone(), Value::Bool(true));
        assert_eq!(transferred.eval(&env).unwrap().is_some_option(), Some(false));
        env.bind(fail_name, Value::Bool(false));
        assert_eq!(transferred.eval(&env).unwrap().is_some_option(), Some(true));
    }

    #[test]
    fn set_edge_policy_recompiles_one_edge_and_restores() {
        use crate::policy::{MergeKey, RouteGuard, RoutePolicy, RouteSchema};
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::path(3);
        let dest = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let v2 = g.node_by_name("v2").unwrap();
        let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let net = NetworkBuilder::from_schema(g, schema.clone())
            .default_policy(RoutePolicy::new().increment("len"))
            .init(dest, origin)
            .build()
            .unwrap();
        let sig = net.encoder_signature();
        let hashes: Vec<u64> =
            net.topology().nodes().map(|v| net.node_structural_hash(v)).collect();
        let sample = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let down = net
            .set_edge_policy((dest, v1), Some(RoutePolicy::new().drop_if(RouteGuard::True)))
            .unwrap();
        // the edited edge now drops every route; the other edge still works
        assert_eq!(
            down.transfer((dest, v1), &sample).eval(&Env::new()).unwrap().is_some_option(),
            Some(false)
        );
        assert_eq!(
            down.transfer((v1, v2), &sample).eval(&Env::new()).unwrap().is_some_option(),
            Some(true)
        );
        assert_ne!(down.encoder_signature(), sig, "the policy set changed");
        // only v1 (the edge's head) sees a different structural hash
        let changed: Vec<bool> = down
            .topology()
            .nodes()
            .zip(&hashes)
            .map(|(v, h)| down.node_structural_hash(v) != *h)
            .collect();
        assert_eq!(changed, [false, true, false]);
        // removing the override restores the default policy — and the hashes
        let restored = down.set_edge_policy((dest, v1), None).unwrap();
        assert_eq!(restored.encoder_signature(), sig);
        for (v, h) in restored.topology().nodes().zip(&hashes) {
            assert_eq!(restored.node_structural_hash(v), *h);
        }
    }

    #[test]
    fn set_edge_policy_rejects_bad_inputs() {
        use crate::policy::{MergeKey, RoutePolicy, RouteSchema};
        let closure_net = hoplimit_net();
        let v0 = closure_net.topology().node_by_name("v0").unwrap();
        let v1 = closure_net.topology().node_by_name("v1").unwrap();
        assert_eq!(
            closure_net.set_edge_policy((v0, v1), None).unwrap_err(),
            NetworkError::NotPolicyMode
        );
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let net = NetworkBuilder::from_schema(g, schema)
            .policy((v0, v1), RoutePolicy::new().increment("len"))
            .build()
            .unwrap();
        // no edge v1 -> v0 on a directed path
        assert!(matches!(
            net.set_edge_policy((v1, v0), None).unwrap_err(),
            NetworkError::UnknownEdge { .. }
        ));
        // removing the only policy of an edge with no default
        assert!(matches!(
            net.set_edge_policy((v0, v1), None).unwrap_err(),
            NetworkError::MissingTransfer { .. }
        ));
    }

    #[test]
    fn with_failure_budget_rebuilds_constraints() {
        use crate::policy::{FailureModel, MergeKey, RoutePolicy, RouteSchema};
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::undirected_path(3);
        let dest = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let v2 = g.node_by_name("v2").unwrap();
        let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let net = NetworkBuilder::from_schema(g, schema)
            .default_policy(RoutePolicy::new().increment("len"))
            .failures(FailureModel::at_most(0, [(dest, v1), (v1, v2)]))
            .init(dest, origin)
            .build()
            .unwrap();
        let sig = net.encoder_signature();
        let rebudgeted = net.with_failure_budget(1).unwrap();
        assert_ne!(rebudgeted.encoder_signature(), sig, "the budget is in the fingerprint");
        assert_eq!(
            rebudgeted.policies().unwrap().failures.as_ref().unwrap().budget(),
            1,
            "new model installed"
        );
        // under budget 1 a single failure satisfies every constraint;
        // under the original budget 0 it violated them
        let mut env = Env::new();
        let model = rebudgeted.policies().unwrap().failures.as_ref().unwrap().clone();
        model.bind_failures(rebudgeted.topology(), &mut env, &[(dest, v1)]);
        for c in rebudgeted.symbolic_constraints() {
            assert_eq!(c.eval(&env).unwrap(), Value::Bool(true));
        }
        assert!(net
            .symbolic_constraints()
            .iter()
            .all(|c| c.eval(&env).unwrap() == Value::Bool(false)));
        // a budget-only change keeps every node's structural hash... changed:
        // the budget constraint is part of each node's symbolic preconditions
        for v in net.topology().nodes() {
            assert_ne!(net.node_structural_hash(v), rebudgeted.node_structural_hash(v));
        }
        // closure-built networks cannot be re-budgeted
        assert_eq!(hoplimit_net().with_failure_budget(1).unwrap_err(), NetworkError::NotPolicyMode);
    }

    #[test]
    fn step_length_mismatch_panics() {
        let net = hoplimit_net();
        let v1 = net.topology().node_by_name("v1").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.step(v1, &[])));
        assert!(result.is_err());
    }
}
