//! A declarative route-policy IR: one definition drives simulation and SMT.
//!
//! The benchmark networks used to wire opaque `Fn(&Expr) -> Expr` closures
//! into [`crate::NetworkBuilder`]; the simulator re-interpreted the same
//! semantics and the SMT backend compiled it, but nothing *about* the policy
//! was inspectable — no structural hashing for solver-session reuse, no
//! schema-driven atom grammars for inference, and every new scenario meant
//! re-deriving the same record plumbing by hand.
//!
//! This module makes the policy layer first-class:
//!
//! * [`RouteSchema`] — the route record (field names and types) plus the
//!   lexicographic [`MergeKey`] list defining the selection function `⊕`
//!   (e.g. the BGP decision process: AD ≺ local-pref ≺ AS-path length ≺
//!   MED ≺ origin).
//! * [`RoutePolicy`] — an ordered list of [`PolicyClause`]s, each a
//!   [`RouteGuard`] plus an action (drop, or a sequence of [`RewriteOp`]s),
//!   modelling an edge's transfer function.
//! * [`FailureModel`] — per-edge symbolic failure booleans with an
//!   "at most `f` fail" budget, wrapped around tracked edges' transfers.
//!
//! Every construct has **two semantics that cannot diverge**, because both
//! are derived from the same declarative structure:
//!
//! * [`RoutePolicy::compile`] / [`RouteSchema::merge_expr`] build
//!   `timepiece-expr` terms (consumed by the SMT encoder and the term
//!   interpreter), and
//! * [`RoutePolicy::apply`] / [`RouteSchema::merge_value`] execute directly
//!   on concrete [`Value`]s (the simulator's fast path).
//!
//! Being plain data, the IR also hashes structurally
//! ([`RouteSchema::structural_hash`], [`RoutePolicy::structural_hash`]),
//! which is what keys long-lived solver sessions across verification rows.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use timepiece_expr::{Env, Expr, RecordDef, Type, Value};

/// An error raised while *concretely* evaluating a policy or merge: an
/// environment missing a symbolic the guard references, or a route value
/// whose shape disagrees with the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A guard referenced a symbolic variable the environment does not bind.
    UnboundVar(String),
    /// A field, tag or enum variant named by the IR is absent from the value.
    BadShape(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnboundVar(name) => write!(f, "unbound symbolic {name:?}"),
            PolicyError::BadShape(what) => write!(f, "route value mismatch: {what}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// One step of the lexicographic route-selection order.
///
/// Keys apply in list order: the first key that strictly separates two
/// candidates decides, later keys only break ties.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MergeKey {
    /// Routes satisfying the guard beat routes that do not (e.g. the hijack
    /// benchmark's "routes for the internal prefix win their own RIB slot").
    GuardFirst(RouteGuard),
    /// Lower numeric field wins (administrative distance, path length, MED).
    Lower(String),
    /// Higher numeric field wins (local preference).
    Higher(String),
    /// Enum field ranked by the given variant order, earlier variants win
    /// (BGP origin: IGP ≺ EGP ≺ unknown).
    RankEnum(String, Vec<String>),
}

/// A declarative predicate over a *present* route (and the symbolic
/// environment), used by policy clauses and `GuardFirst` merge keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RouteGuard {
    /// Always true.
    True,
    /// A symbolic boolean variable of the network (e.g. a link-failure bit).
    SymBool(String),
    /// The set-typed field contains the tag.
    HasTag {
        /// The set field.
        field: String,
        /// The tag tested.
        tag: String,
    },
    /// The integer field equals the constant.
    IntEq {
        /// The integer field.
        field: String,
        /// The constant compared against.
        value: i64,
    },
    /// The bitvector field equals the constant.
    BvEq {
        /// The bitvector field.
        field: String,
        /// The constant compared against.
        value: u64,
    },
    /// The field equals a symbolic variable of the field's type.
    FieldEqVar {
        /// The compared field.
        field: String,
        /// The symbolic variable's name.
        var: String,
    },
    /// Negation.
    Not(Box<RouteGuard>),
    /// Conjunction.
    And(Box<RouteGuard>, Box<RouteGuard>),
    /// Disjunction.
    Or(Box<RouteGuard>, Box<RouteGuard>),
}

impl RouteGuard {
    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RouteGuard {
        RouteGuard::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: RouteGuard) -> RouteGuard {
        RouteGuard::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: RouteGuard) -> RouteGuard {
        RouteGuard::Or(Box::new(self), Box::new(other))
    }

    /// Compiles the guard to a boolean term over a present-route (record)
    /// term.
    pub fn compile(&self, schema: &RouteSchema, payload: &Expr) -> Expr {
        match self {
            RouteGuard::True => Expr::bool(true),
            RouteGuard::SymBool(name) => Expr::var(name.clone(), Type::Bool),
            RouteGuard::HasTag { field, tag } => {
                payload.clone().field(field.clone()).contains(tag.clone())
            }
            RouteGuard::IntEq { field, value } => {
                payload.clone().field(field.clone()).eq(Expr::int(*value))
            }
            RouteGuard::BvEq { field, value } => {
                let width = schema.bv_width(field);
                payload.clone().field(field.clone()).eq(Expr::bv(*value, width))
            }
            RouteGuard::FieldEqVar { field, var } => {
                let ty = schema.field_type(field).clone();
                payload.clone().field(field.clone()).eq(Expr::var(var.clone(), ty))
            }
            RouteGuard::Not(g) => g.compile(schema, payload).not(),
            RouteGuard::And(a, b) => a.compile(schema, payload).and(b.compile(schema, payload)),
            RouteGuard::Or(a, b) => a.compile(schema, payload).or(b.compile(schema, payload)),
        }
    }

    /// Evaluates the guard on a concrete present-route (record) value.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] on unbound symbolics or shape mismatches.
    pub fn holds(&self, payload: &Value, env: &Env) -> Result<bool, PolicyError> {
        let field_of = |field: &String| {
            payload.field(field).ok_or_else(|| PolicyError::BadShape(format!("field {field:?}")))
        };
        match self {
            RouteGuard::True => Ok(true),
            RouteGuard::SymBool(name) => env
                .get(name)
                .and_then(Value::as_bool)
                .ok_or_else(|| PolicyError::UnboundVar(name.clone())),
            RouteGuard::HasTag { field, tag } => field_of(field)?
                .contains_tag(tag)
                .ok_or_else(|| PolicyError::BadShape(format!("tag {tag:?} in {field:?}"))),
            RouteGuard::IntEq { field, value } => {
                Ok(field_of(field)?.as_int() == Some(i128::from(*value)))
            }
            RouteGuard::BvEq { field, value } => Ok(field_of(field)?.as_bv() == Some(*value)),
            RouteGuard::FieldEqVar { field, var } => {
                let bound = env.get(var).ok_or_else(|| PolicyError::UnboundVar(var.clone()))?;
                Ok(field_of(field)? == bound)
            }
            RouteGuard::Not(g) => Ok(!g.holds(payload, env)?),
            RouteGuard::And(a, b) => Ok(a.holds(payload, env)? && b.holds(payload, env)?),
            RouteGuard::Or(a, b) => Ok(a.holds(payload, env)? || b.holds(payload, env)?),
        }
    }
}

/// One field update applied by a rewrite clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RewriteOp {
    /// Add a constant to an integer field (AS-path length increments).
    IncInt {
        /// The integer field.
        field: String,
        /// The increment.
        by: i64,
    },
    /// Overwrite a bitvector field (set local preference / MED).
    SetBv {
        /// The bitvector field.
        field: String,
        /// The new bits.
        value: u64,
    },
    /// Overwrite a boolean (ghost) field.
    SetBool {
        /// The boolean field.
        field: String,
        /// The new value.
        value: bool,
    },
    /// Overwrite an enum field by variant name.
    SetEnum {
        /// The enum field.
        field: String,
        /// The new variant.
        variant: String,
    },
    /// Add a tag to a set field.
    AddTag {
        /// The set field.
        field: String,
        /// The tag added.
        tag: String,
    },
    /// Remove a tag from a set field.
    RemoveTag {
        /// The set field.
        field: String,
        /// The tag removed.
        tag: String,
    },
}

impl RewriteOp {
    fn compile(&self, schema: &RouteSchema, payload: Expr) -> Expr {
        match self {
            RewriteOp::IncInt { field, by } => {
                let bumped = payload.clone().field(field.clone()).add(Expr::int(*by));
                payload.with_field(field.clone(), bumped)
            }
            RewriteOp::SetBv { field, value } => {
                let width = schema.bv_width(field);
                payload.with_field(field.clone(), Expr::bv(*value, width))
            }
            RewriteOp::SetBool { field, value } => {
                payload.with_field(field.clone(), Expr::bool(*value))
            }
            RewriteOp::SetEnum { field, variant } => {
                let def = schema
                    .field_type(field)
                    .enum_def()
                    .unwrap_or_else(|| panic!("field {field:?} is not an enum"))
                    .clone();
                payload
                    .with_field(field.clone(), Expr::constant(Value::enum_variant(&def, variant)))
            }
            RewriteOp::AddTag { field, tag } => {
                let tagged = payload.clone().field(field.clone()).add_tag(tag.clone());
                payload.with_field(field.clone(), tagged)
            }
            RewriteOp::RemoveTag { field, tag } => {
                let stripped = payload.clone().field(field.clone()).remove_tag(tag.clone());
                payload.with_field(field.clone(), stripped)
            }
        }
    }

    fn apply(&self, payload: &mut Value, schema: &RouteSchema) -> Result<(), PolicyError> {
        let field = match self {
            RewriteOp::IncInt { field, .. }
            | RewriteOp::SetBv { field, .. }
            | RewriteOp::SetBool { field, .. }
            | RewriteOp::SetEnum { field, .. }
            | RewriteOp::AddTag { field, .. }
            | RewriteOp::RemoveTag { field, .. } => field,
        };
        let Value::Record { def, fields } = payload else {
            return Err(PolicyError::BadShape("payload is not a record".to_owned()));
        };
        let index = def
            .field_index(field)
            .ok_or_else(|| PolicyError::BadShape(format!("field {field:?}")))?;
        let slot = &mut fields[index];
        match self {
            RewriteOp::IncInt { by, .. } => match slot {
                Value::Int(i) => *i += i128::from(*by),
                _ => return Err(PolicyError::BadShape(format!("{field:?} is not an int"))),
            },
            RewriteOp::SetBv { value, .. } => *slot = Value::bv(*value, schema.bv_width(field)),
            RewriteOp::SetBool { value, .. } => *slot = Value::Bool(*value),
            RewriteOp::SetEnum { variant, .. } => {
                let def = schema
                    .field_type(field)
                    .enum_def()
                    .ok_or_else(|| PolicyError::BadShape(format!("{field:?} is not an enum")))?
                    .clone();
                *slot = Value::enum_variant(&def, variant);
            }
            RewriteOp::AddTag { tag, .. } => set_tag(slot, tag, true)?,
            RewriteOp::RemoveTag { tag, .. } => set_tag(slot, tag, false)?,
        }
        Ok(())
    }
}

/// Sets or clears one tag bit of a set value.
fn set_tag(v: &mut Value, tag: &str, present: bool) -> Result<(), PolicyError> {
    let Value::Set { def, mask } = v else {
        return Err(PolicyError::BadShape("field is not a set".to_owned()));
    };
    let i =
        def.tag_index(tag).ok_or_else(|| PolicyError::BadShape(format!("unknown tag {tag:?}")))?;
    if present {
        *mask |= 1 << i;
    } else {
        *mask &= !(1 << i);
    }
    Ok(())
}

/// What a policy clause does when its guard matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClauseAction {
    /// Drop the route (`∞`), short-circuiting the remaining clauses.
    Drop,
    /// Apply the rewrites in order and continue with the next clause.
    Rewrite(Vec<RewriteOp>),
}

/// One guarded step of a route policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolicyClause {
    /// When the clause applies.
    pub guard: RouteGuard,
    /// What it does.
    pub action: ClauseAction,
}

/// A declarative transfer function: an ordered list of guarded clauses over
/// a present route (`∞` always maps to `∞`).
///
/// Clauses execute in order against the *current* (possibly already
/// rewritten) route; a matching [`ClauseAction::Drop`] ends evaluation with
/// `∞`, a matching rewrite updates the route and evaluation continues.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RoutePolicy {
    clauses: Vec<PolicyClause>,
}

impl RoutePolicy {
    /// The empty policy: the identity on routes.
    pub fn new() -> RoutePolicy {
        RoutePolicy::default()
    }

    /// Appends a clause.
    pub fn when(mut self, guard: RouteGuard, action: ClauseAction) -> RoutePolicy {
        self.clauses.push(PolicyClause { guard, action });
        self
    }

    /// Appends an unconditional rewrite.
    pub fn rewrite(self, ops: impl IntoIterator<Item = RewriteOp>) -> RoutePolicy {
        self.when(RouteGuard::True, ClauseAction::Rewrite(ops.into_iter().collect()))
    }

    /// Appends a guarded drop.
    pub fn drop_if(self, guard: RouteGuard) -> RoutePolicy {
        self.when(guard, ClauseAction::Drop)
    }

    /// Appends the standard AS-path length increment.
    pub fn increment(self, field: impl Into<String>) -> RoutePolicy {
        self.rewrite([RewriteOp::IncInt { field: field.into(), by: 1 }])
    }

    /// The clauses, in evaluation order.
    pub fn clauses(&self) -> &[PolicyClause] {
        &self.clauses
    }

    /// Compiles the policy to a route term: the symbolic semantics consumed
    /// by the SMT backend (and the term interpreter).
    pub fn compile(&self, schema: &RouteSchema, route: &Expr) -> Expr {
        let payload_ty = schema.payload_type().clone();
        let none = Expr::none(payload_ty.clone());
        route
            .clone()
            .match_option(none, |payload| self.compile_clauses(schema, 0, payload, &payload_ty))
    }

    fn compile_clauses(
        &self,
        schema: &RouteSchema,
        i: usize,
        payload: Expr,
        payload_ty: &Type,
    ) -> Expr {
        let Some(clause) = self.clauses.get(i) else { return payload.some() };
        let guard = clause.guard.compile(schema, &payload);
        match &clause.action {
            ClauseAction::Drop => {
                let rest = self.compile_clauses(schema, i + 1, payload, payload_ty);
                guard.ite(Expr::none(payload_ty.clone()), rest)
            }
            ClauseAction::Rewrite(ops) => {
                let rewritten = ops.iter().fold(payload.clone(), |p, op| op.compile(schema, p));
                let next = match &clause.guard {
                    RouteGuard::True => rewritten,
                    _ => guard.ite(rewritten, payload),
                };
                self.compile_clauses(schema, i + 1, next, payload_ty)
            }
        }
    }

    /// Executes the policy on a concrete route value: the direct semantics
    /// the simulator's fast path runs. Agrees with interpreting
    /// [`RoutePolicy::compile`] by construction (and by the IR agreement
    /// tests).
    ///
    /// # Errors
    ///
    /// [`PolicyError`] on unbound symbolics or shape mismatches.
    pub fn apply(
        &self,
        schema: &RouteSchema,
        route: &Value,
        env: &Env,
    ) -> Result<Value, PolicyError> {
        let payload = match route {
            Value::Option { value: None, .. } => return Ok(route.clone()),
            Value::Option { value: Some(p), .. } => (**p).clone(),
            _ => return Err(PolicyError::BadShape("route is not an option".to_owned())),
        };
        let mut payload = payload;
        for clause in &self.clauses {
            if clause.guard.holds(&payload, env)? {
                match &clause.action {
                    ClauseAction::Drop => return Ok(Value::none(schema.payload_type().clone())),
                    ClauseAction::Rewrite(ops) => {
                        for op in ops {
                            op.apply(&mut payload, schema)?;
                        }
                    }
                }
            }
        }
        Ok(Value::some(payload))
    }

    /// A structural fingerprint of the policy (clause list, guards, rewrite
    /// constants) — stable across clones and rebuilds of equal policies.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.clauses.hash(&mut h);
        h.finish()
    }
}

/// A route schema: the record shape of a present route plus the
/// lexicographic merge order over it.
///
/// The route type is always `Option<Record>`, with `None` as the paper's
/// `∞`.
///
/// # Example
///
/// ```
/// use timepiece_algebra::policy::{MergeKey, RouteSchema};
/// use timepiece_expr::Type;
///
/// let schema = RouteSchema::new(
///     "R",
///     [("lp".to_owned(), Type::BitVec(32)), ("len".to_owned(), Type::Int)],
///     [MergeKey::Higher("lp".into()), MergeKey::Lower("len".into())],
/// );
/// assert!(schema.route_type().is_option());
/// assert_eq!(schema.merge_keys().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RouteSchema {
    record: Arc<RecordDef>,
    route_type: Type,
    keys: Vec<MergeKey>,
}

impl RouteSchema {
    /// Builds a schema from field definitions and merge keys.
    pub fn new(
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (String, Type)>,
        keys: impl IntoIterator<Item = MergeKey>,
    ) -> RouteSchema {
        let record = Arc::new(RecordDef::new(name, fields.into_iter().collect::<Vec<_>>()));
        let route_type = Type::option(Type::Record(Arc::clone(&record)));
        RouteSchema { record, route_type, keys: keys.into_iter().collect() }
    }

    /// The record definition of a present route.
    pub fn record_def(&self) -> &Arc<RecordDef> {
        &self.record
    }

    /// The route type `Option<Record>`.
    pub fn route_type(&self) -> Type {
        self.route_type.clone()
    }

    /// The present-route (record) type.
    pub fn payload_type(&self) -> &Type {
        self.route_type.option_payload().expect("schema route type is an option")
    }

    /// The lexicographic merge keys, most significant first.
    pub fn merge_keys(&self) -> &[MergeKey] {
        &self.keys
    }

    /// The type of a field.
    ///
    /// # Panics
    ///
    /// Panics on unknown fields — schemas and policies are built together,
    /// so a miss is a construction bug.
    pub fn field_type(&self, field: &str) -> &Type {
        self.record
            .field_type(field)
            .unwrap_or_else(|| panic!("schema {} has no field {field:?}", self.record.name()))
    }

    fn bv_width(&self, field: &str) -> u32 {
        match self.field_type(field) {
            Type::BitVec(w) => *w,
            other => panic!("field {field:?} is {other}, not a bitvector"),
        }
    }

    /// The `∞` route as a term.
    pub fn none_route(&self) -> Expr {
        Expr::none(self.payload_type().clone())
    }

    /// The `∞` route as a value.
    pub fn none_value(&self) -> Value {
        Value::none(self.payload_type().clone())
    }

    // -- merge ---------------------------------------------------------------

    /// Is present route `x` strictly preferred to present route `y`, as a
    /// term? Lexicographic over [`RouteSchema::merge_keys`].
    pub fn prefer_expr(&self, x: &Expr, y: &Expr) -> Expr {
        let mut acc = Expr::bool(false);
        for key in self.keys.iter().rev() {
            let (better, equal) = self.key_cmp_expr(key, x, y);
            acc = better.or(equal.and(acc));
        }
        acc
    }

    fn key_cmp_expr(&self, key: &MergeKey, x: &Expr, y: &Expr) -> (Expr, Expr) {
        match key {
            MergeKey::Lower(f) => {
                let (a, b) = (x.clone().field(f.clone()), y.clone().field(f.clone()));
                (a.clone().lt(b.clone()), a.eq(b))
            }
            MergeKey::Higher(f) => {
                let (a, b) = (x.clone().field(f.clone()), y.clone().field(f.clone()));
                (a.clone().gt(b.clone()), a.eq(b))
            }
            MergeKey::RankEnum(f, order) => {
                let rank = |e: &Expr| self.enum_rank_expr(f, order, e);
                let (a, b) = (rank(x), rank(y));
                (a.clone().lt(b.clone()), a.eq(b))
            }
            MergeKey::GuardFirst(g) => {
                let (a, b) = (g.compile(self, x), g.compile(self, y));
                (a.clone().and(b.clone().not()), a.iff(b))
            }
        }
    }

    fn enum_rank_expr(&self, field: &str, order: &[String], payload: &Expr) -> Expr {
        let def = self
            .field_type(field)
            .enum_def()
            .unwrap_or_else(|| panic!("field {field:?} is not an enum"))
            .clone();
        let e = payload.clone().field(field.to_owned());
        let mut acc = Expr::int(order.len() as i64);
        for (i, variant) in order.iter().enumerate().rev() {
            let is = e.clone().eq(Expr::constant(Value::enum_variant(&def, variant)));
            acc = is.ite(Expr::int(i as i64), acc);
        }
        acc
    }

    /// The selection function `⊕` as a term: prefer a present route, then
    /// the lexicographic key order; the first argument wins ties.
    pub fn merge_expr(&self, a: &Expr, b: &Expr) -> Expr {
        let pa = a.clone().get_some();
        let pb = b.clone().get_some();
        let b_strictly_better = self.prefer_expr(&pb, &pa);
        let choose_b = b.clone().is_some().and(a.clone().is_none().or(b_strictly_better));
        choose_b.ite(b.clone(), a.clone())
    }

    /// Is present route `x` strictly preferred to present route `y`, on
    /// values?
    ///
    /// # Errors
    ///
    /// [`PolicyError`] on unbound symbolics (guard keys) or shape mismatches.
    pub fn prefer_value(&self, x: &Value, y: &Value, env: &Env) -> Result<bool, PolicyError> {
        for key in &self.keys {
            match key {
                MergeKey::Lower(f) => {
                    let (a, b) = (self.numeric(x, f)?, self.numeric(y, f)?);
                    if a != b {
                        return Ok(a < b);
                    }
                }
                MergeKey::Higher(f) => {
                    let (a, b) = (self.numeric(x, f)?, self.numeric(y, f)?);
                    if a != b {
                        return Ok(a > b);
                    }
                }
                MergeKey::RankEnum(f, order) => {
                    let (a, b) = (self.enum_rank(x, f, order)?, self.enum_rank(y, f, order)?);
                    if a != b {
                        return Ok(a < b);
                    }
                }
                MergeKey::GuardFirst(g) => {
                    let (a, b) = (g.holds(x, env)?, g.holds(y, env)?);
                    if a != b {
                        return Ok(a);
                    }
                }
            }
        }
        Ok(false)
    }

    fn numeric(&self, payload: &Value, field: &str) -> Result<i128, PolicyError> {
        let v = payload
            .field(field)
            .ok_or_else(|| PolicyError::BadShape(format!("field {field:?}")))?;
        v.as_int()
            .or_else(|| v.as_bv().map(i128::from))
            .ok_or_else(|| PolicyError::BadShape(format!("{field:?} is not numeric")))
    }

    fn enum_rank(
        &self,
        payload: &Value,
        field: &str,
        order: &[String],
    ) -> Result<usize, PolicyError> {
        let v = payload
            .field(field)
            .ok_or_else(|| PolicyError::BadShape(format!("field {field:?}")))?;
        let Value::Enum { def, index } = v else {
            return Err(PolicyError::BadShape(format!("{field:?} is not an enum")));
        };
        let name = &def.variants()[*index];
        Ok(order.iter().position(|o| o == name).unwrap_or(order.len()))
    }

    /// The selection function `⊕` on values — the simulator's fast path.
    ///
    /// # Errors
    ///
    /// As [`RouteSchema::prefer_value`].
    pub fn merge_value(&self, a: &Value, b: &Value, env: &Env) -> Result<Value, PolicyError> {
        let (pa, pb) = match (a, b) {
            (Value::Option { value: va, .. }, Value::Option { value: vb, .. }) => (va, vb),
            _ => return Err(PolicyError::BadShape("merge over non-options".to_owned())),
        };
        Ok(match (pa, pb) {
            (_, None) => a.clone(),
            (None, Some(_)) => b.clone(),
            (Some(x), Some(y)) => {
                if self.prefer_value(y, x, env)? {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        })
    }

    /// A structural fingerprint of the schema: field names, field types and
    /// the merge-key order.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.record.name().hash(&mut h);
        for (name, ty) in self.record.fields() {
            name.hash(&mut h);
            ty.to_string().hash(&mut h);
        }
        self.keys.hash(&mut h);
        h.finish()
    }
}

/// A bounded link-failure model: each tracked edge gets a symbolic boolean
/// (`true` = the link is down and its transfer yields `∞`), with the global
/// assumption that **at most `budget`** of them are true.
///
/// The failure booleans join [`crate::Network::symbolics`], so the budget
/// constraint is threaded through every verification condition (the encoder
/// receives it as an assumption), and the simulator closes them through the
/// input environment like any other symbolic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FailureModel {
    budget: u64,
    edges: Vec<(timepiece_topology::NodeId, timepiece_topology::NodeId)>,
}

impl FailureModel {
    /// Tracks `edges` with an at-most-`budget` failure assumption.
    pub fn at_most(
        budget: u64,
        edges: impl IntoIterator<Item = (timepiece_topology::NodeId, timepiece_topology::NodeId)>,
    ) -> FailureModel {
        FailureModel { budget, edges: edges.into_iter().collect() }
    }

    /// The failure budget `f`.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The tracked edges.
    pub fn edges(&self) -> &[(timepiece_topology::NodeId, timepiece_topology::NodeId)] {
        &self.edges
    }

    /// The failure variable's name for a tracked edge.
    pub fn var_name(
        topology: &timepiece_topology::Topology,
        edge: (timepiece_topology::NodeId, timepiece_topology::NodeId),
    ) -> String {
        format!("fail-{}-{}", topology.name(edge.0), topology.name(edge.1))
    }

    /// The failure variable term for a tracked edge.
    pub fn var(
        topology: &timepiece_topology::Topology,
        edge: (timepiece_topology::NodeId, timepiece_topology::NodeId),
    ) -> Expr {
        Expr::var(FailureModel::var_name(topology, edge), Type::Bool)
    }

    /// Is the edge tracked?
    pub fn tracks(&self, edge: (timepiece_topology::NodeId, timepiece_topology::NodeId)) -> bool {
        self.edges.contains(&edge)
    }

    /// The at-most-`budget` constraint: `Σ ite(failᵢ, 1, 0) ≤ budget`.
    pub fn budget_constraint(&self, topology: &timepiece_topology::Topology) -> Expr {
        let mut sum = Expr::int(0);
        for &edge in &self.edges {
            sum = sum.add(FailureModel::var(topology, edge).ite(Expr::int(1), Expr::int(0)));
        }
        sum.le(Expr::int(self.budget as i64))
    }

    /// An input environment closing every failure variable: exactly the
    /// edges in `down` fail. Useful for simulating concrete failure
    /// scenarios.
    pub fn bind_failures(
        &self,
        topology: &timepiece_topology::Topology,
        env: &mut Env,
        down: &[(timepiece_topology::NodeId, timepiece_topology::NodeId)],
    ) {
        for &edge in &self.edges {
            env.bind(FailureModel::var_name(topology, edge), Value::Bool(down.contains(&edge)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RouteSchema {
        RouteSchema::new(
            "R",
            [
                ("ad".to_owned(), Type::BitVec(32)),
                ("lp".to_owned(), Type::BitVec(32)),
                ("len".to_owned(), Type::Int),
                ("med".to_owned(), Type::BitVec(32)),
                ("origin".to_owned(), Type::enumeration("Origin", ["egp", "igp", "unknown"])),
                ("comms".to_owned(), Type::set("Comms", ["down", "bte"])),
                ("tag".to_owned(), Type::Bool),
            ],
            [
                MergeKey::Lower("ad".into()),
                MergeKey::Higher("lp".into()),
                MergeKey::Lower("len".into()),
                MergeKey::Lower("med".into()),
                MergeKey::RankEnum(
                    "origin".into(),
                    vec!["igp".into(), "egp".into(), "unknown".into()],
                ),
            ],
        )
    }

    fn route(
        s: &RouteSchema,
        ad: u64,
        lp: u64,
        len: i64,
        med: u64,
        origin: &str,
        tags: &[&str],
    ) -> Value {
        let def = s.record_def();
        let origin_def = s.field_type("origin").enum_def().unwrap().clone();
        let comm_def = s.field_type("comms").set_def().unwrap().clone();
        Value::some(Value::record(
            def,
            vec![
                Value::bv(ad, 32),
                Value::bv(lp, 32),
                Value::int(len),
                Value::bv(med, 32),
                Value::enum_variant(&origin_def, origin),
                Value::set_of(&comm_def, tags.iter().copied()),
                Value::Bool(false),
            ],
        ))
    }

    /// Evaluating the compiled term and executing the value semantics must
    /// agree — the core one-definition-two-backends invariant.
    fn assert_agree(s: &RouteSchema, p: &RoutePolicy, r: &Value, env: &Env) {
        let var = Expr::var("r", s.route_type());
        let compiled = p.compile(s, &var);
        let mut bound = env.clone();
        bound.bind("r", r.clone());
        let via_term = compiled.eval(&bound).unwrap();
        let via_value = p.apply(s, r, env).unwrap();
        assert_eq!(via_term, via_value, "policy {p:?} on {r}");
    }

    #[test]
    fn increment_policy_agrees_and_preserves_infinity() {
        let s = schema();
        let p = RoutePolicy::new().increment("len");
        let r = route(&s, 20, 100, 3, 0, "igp", &["down"]);
        assert_agree(&s, &p, &r, &Env::new());
        assert_agree(&s, &p, &s.none_value(), &Env::new());
        let out = p.apply(&s, &r, &Env::new()).unwrap();
        assert_eq!(out.unwrap_or_default().unwrap().field("len").unwrap().as_int(), Some(4));
    }

    #[test]
    fn guarded_drop_and_rewrite_agree() {
        let s = schema();
        let p = RoutePolicy::new()
            .drop_if(RouteGuard::HasTag { field: "comms".into(), tag: "down".into() })
            .increment("len")
            .when(
                RouteGuard::IntEq { field: "len".into(), value: 1 },
                ClauseAction::Rewrite(vec![RewriteOp::SetBv { field: "med".into(), value: 7 }]),
            );
        let plain = route(&s, 20, 100, 0, 0, "igp", &[]);
        let tagged = route(&s, 20, 100, 0, 0, "igp", &["down"]);
        assert_agree(&s, &p, &plain, &Env::new());
        assert_agree(&s, &p, &tagged, &Env::new());
        // the tagged route is dropped
        assert_eq!(p.apply(&s, &tagged, &Env::new()).unwrap(), s.none_value());
        // the plain route is incremented then MED-stamped (guard sees the
        // *rewritten* len)
        let out = p.apply(&s, &plain, &Env::new()).unwrap().unwrap_or_default().unwrap();
        assert_eq!(out.field("med").unwrap().as_bv(), Some(7));
    }

    #[test]
    fn sym_bool_guard_reads_the_environment() {
        let s = schema();
        let p = RoutePolicy::new().drop_if(RouteGuard::SymBool("failed".into())).increment("len");
        let r = route(&s, 20, 100, 0, 0, "igp", &[]);
        let mut up = Env::new();
        up.bind("failed", Value::Bool(false));
        let mut down = Env::new();
        down.bind("failed", Value::Bool(true));
        assert_agree(&s, &p, &r, &up);
        assert_agree(&s, &p, &r, &down);
        assert_eq!(p.apply(&s, &r, &down).unwrap(), s.none_value());
        assert!(matches!(
            p.apply(&s, &r, &Env::new()),
            Err(PolicyError::UnboundVar(name)) if name == "failed"
        ));
    }

    #[test]
    fn merge_is_lexicographic_and_agrees() {
        let s = schema();
        let env = Env::new();
        let base = route(&s, 20, 100, 2, 0, "igp", &[]);
        let cases = [
            (route(&s, 10, 100, 9, 9, "unknown", &[]), true), // lower ad wins
            (route(&s, 20, 200, 9, 9, "unknown", &[]), true), // higher lp wins
            (route(&s, 20, 100, 1, 9, "unknown", &[]), true), // shorter len wins
            (route(&s, 20, 100, 2, 9, "igp", &[]), false),    // higher med loses
            (route(&s, 20, 100, 2, 0, "egp", &[]), false),    // worse origin loses
            (route(&s, 20, 100, 2, 0, "igp", &[]), false),    // exact tie: not strict
        ];
        for (other, wins) in cases {
            let (x, y) = (other.unwrap_or_default().unwrap(), base.unwrap_or_default().unwrap());
            assert_eq!(s.prefer_value(&x, &y, &env).unwrap(), wins, "{x} vs {y}");
            // term semantics agree
            let (vx, vy) = (
                Expr::var("x", s.payload_type().clone()),
                Expr::var("y", s.payload_type().clone()),
            );
            let e = s.prefer_expr(&vx, &vy);
            let mut bound = Env::new();
            bound.bind("x", x);
            bound.bind("y", y);
            assert_eq!(e.eval_bool(&bound).unwrap(), wins);
        }
    }

    #[test]
    fn merge_value_prefers_presence_and_keeps_first_on_ties() {
        let s = schema();
        let env = Env::new();
        let none = s.none_value();
        let a = route(&s, 20, 100, 2, 0, "igp", &["down"]);
        let b = route(&s, 20, 100, 2, 0, "igp", &["bte"]);
        assert_eq!(s.merge_value(&none, &a, &env).unwrap(), a);
        assert_eq!(s.merge_value(&a, &none, &env).unwrap(), a);
        assert_eq!(s.merge_value(&a, &b, &env).unwrap(), a, "first argument wins ties");
        assert_eq!(s.merge_value(&b, &a, &env).unwrap(), b);
        // term semantics agree
        let (va, vb) = (Expr::var("a", s.route_type()), Expr::var("b", s.route_type()));
        let m = s.merge_expr(&va, &vb);
        let mut bound = Env::new();
        bound.bind("a", a.clone());
        bound.bind("b", b);
        assert_eq!(m.eval(&bound).unwrap(), a);
    }

    #[test]
    fn guard_first_key_classes_beat_attributes() {
        let s = RouteSchema::new(
            "P",
            [("dst".to_owned(), Type::BitVec(32)), ("len".to_owned(), Type::Int)],
            [
                MergeKey::GuardFirst(RouteGuard::FieldEqVar {
                    field: "dst".into(),
                    var: "p".into(),
                }),
                MergeKey::Lower("len".into()),
            ],
        );
        let mk = |dst: u64, len: i64| {
            Value::some(Value::record(s.record_def(), vec![Value::bv(dst, 32), Value::int(len)]))
        };
        let mut env = Env::new();
        env.bind("p", Value::bv(7, 32));
        let ours_long = mk(7, 9).unwrap_or_default().unwrap();
        let theirs_short = mk(3, 1).unwrap_or_default().unwrap();
        assert!(s.prefer_value(&ours_long, &theirs_short, &env).unwrap());
        assert!(!s.prefer_value(&theirs_short, &ours_long, &env).unwrap());
    }

    #[test]
    fn structural_hash_ignores_construction_path_but_sees_structure() {
        let a = RoutePolicy::new().increment("len");
        let b = RoutePolicy::new().rewrite([RewriteOp::IncInt { field: "len".into(), by: 1 }]);
        assert_eq!(a.structural_hash(), b.structural_hash(), "equal structure, equal hash");
        let c = RoutePolicy::new().rewrite([RewriteOp::IncInt { field: "len".into(), by: 2 }]);
        assert_ne!(a.structural_hash(), c.structural_hash(), "constants are structure");
        assert_eq!(schema().structural_hash(), schema().structural_hash());
    }

    #[test]
    fn failure_model_budget_constraint_counts() {
        let mut g = timepiece_topology::Topology::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_undirected(a, b);
        g.add_undirected(b, c);
        let model = FailureModel::at_most(1, [(a, b), (b, c)]);
        assert!(model.tracks((a, b)) && !model.tracks((b, a)));
        let constraint = model.budget_constraint(&g);
        let mut env = Env::new();
        model.bind_failures(&g, &mut env, &[(a, b)]);
        assert!(constraint.eval_bool(&env).unwrap(), "one failure within budget");
        model.bind_failures(&g, &mut env, &[(a, b), (b, c)]);
        assert!(!constraint.eval_bool(&env).unwrap(), "two failures exceed f=1");
    }
}
