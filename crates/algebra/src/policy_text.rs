//! A canonical text form for the policy IR.
//!
//! The scenario compiler (`timepiece-scenario`) stores policies in TOML as
//! clause strings; this module gives every policy-IR constituent a compact
//! [`fmt::Display`] rendering and a [`std::str::FromStr`] parser that round
//! trip exactly:
//!
//! * guards — `true`, `sym(x)`, `has-tag(comms, down)`, `int-eq(len, 0)`,
//!   `bv-eq(med, 5)`, `field-eq-var(destination, dest)`, combined with
//!   `!`, `&`, `|` and parentheses (`!` binds tightest, then `&`, then `|`);
//! * rewrite ops — `inc(len, 1)`, `set-bv(med, 5)`, `set-bool(tag, true)`,
//!   `set-enum(origin, egp)`, `add-tag(comms, down)`,
//!   `remove-tag(comms, down)`;
//! * merge keys — `lower(ad)`, `higher(lp)`,
//!   `rank(origin; igp, egp, unknown)`, `first(<guard>)`;
//! * clauses — `when <guard> => drop` or `when <guard> => <op>; <op>`.
//!
//! Parse errors are plain strings naming the offending token; the scenario
//! compiler wraps them with file positions.

use std::fmt;
use std::str::FromStr;

use crate::policy::{ClauseAction, MergeKey, PolicyClause, RewriteOp, RouteGuard};

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

/// Guard precedence levels for parenthesis-free printing.
fn guard_prec(g: &RouteGuard) -> u8 {
    match g {
        RouteGuard::Or(_, _) => 0,
        RouteGuard::And(_, _) => 1,
        _ => 2,
    }
}

fn fmt_guard(g: &RouteGuard, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = guard_prec(g);
    if prec < min_prec {
        write!(f, "(")?;
    }
    match g {
        RouteGuard::True => write!(f, "true")?,
        RouteGuard::SymBool(name) => write!(f, "sym({name})")?,
        RouteGuard::HasTag { field, tag } => write!(f, "has-tag({field}, {tag})")?,
        RouteGuard::IntEq { field, value } => write!(f, "int-eq({field}, {value})")?,
        RouteGuard::BvEq { field, value } => write!(f, "bv-eq({field}, {value})")?,
        RouteGuard::FieldEqVar { field, var } => write!(f, "field-eq-var({field}, {var})")?,
        RouteGuard::Not(inner) => {
            write!(f, "!")?;
            fmt_guard(inner, 2, f)?;
        }
        RouteGuard::And(a, b) => {
            fmt_guard(a, 1, f)?;
            write!(f, " & ")?;
            fmt_guard(b, 2, f)?;
        }
        RouteGuard::Or(a, b) => {
            fmt_guard(a, 0, f)?;
            write!(f, " | ")?;
            fmt_guard(b, 1, f)?;
        }
    }
    if prec < min_prec {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for RouteGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_guard(self, 0, f)
    }
}

impl fmt::Display for RewriteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteOp::IncInt { field, by } => write!(f, "inc({field}, {by})"),
            RewriteOp::SetBv { field, value } => write!(f, "set-bv({field}, {value})"),
            RewriteOp::SetBool { field, value } => write!(f, "set-bool({field}, {value})"),
            RewriteOp::SetEnum { field, variant } => write!(f, "set-enum({field}, {variant})"),
            RewriteOp::AddTag { field, tag } => write!(f, "add-tag({field}, {tag})"),
            RewriteOp::RemoveTag { field, tag } => write!(f, "remove-tag({field}, {tag})"),
        }
    }
}

impl fmt::Display for MergeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeKey::GuardFirst(guard) => write!(f, "first({guard})"),
            MergeKey::Lower(field) => write!(f, "lower({field})"),
            MergeKey::Higher(field) => write!(f, "higher({field})"),
            MergeKey::RankEnum(field, order) => write!(f, "rank({field}; {})", order.join(", ")),
        }
    }
}

impl fmt::Display for PolicyClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "when {} => ", self.guard)?;
        match &self.action {
            ClauseAction::Drop => write!(f, "drop"),
            ClauseAction::Rewrite(ops) => {
                let rendered: Vec<String> = ops.iter().map(|op| op.to_string()).collect();
                write!(f, "{}", rendered.join("; "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i128),
    LParen,
    RParen,
    Comma,
    Semi,
    Bang,
    Amp,
    Pipe,
    Arrow,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s:?}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::Comma => write!(f, "','"),
            Tok::Semi => write!(f, "';'"),
            Tok::Bang => write!(f, "'!'"),
            Tok::Amp => write!(f, "'&'"),
            Tok::Pipe => write!(f, "'|'"),
            Tok::Arrow => write!(f, "'=>'"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '!' => {
                toks.push(Tok::Bang);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err("'=' must be part of '=>'".to_owned());
                }
            }
            '-' if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                toks.push(Tok::Num(text.parse().map_err(|_| format!("bad number {text:?}"))?));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                toks.push(Tok::Num(text.parse().map_err(|_| format!("bad number {text:?}"))?));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(input[start..i].to_owned()));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, String> {
        Ok(Parser { toks: lex(input)?, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), String> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            Some(t) => Err(format!("expected {want}, got {t}")),
            None => Err(format!("expected {want}, got end of input")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(format!("expected {what}, got {t}")),
            None => Err(format!("expected {what}, got end of input")),
        }
    }

    fn num(&mut self, what: &str) -> Result<i128, String> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(t) => Err(format!("expected {what}, got {t}")),
            None => Err(format!("expected {what}, got end of input")),
        }
    }

    fn done(&self) -> Result<(), String> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(format!("trailing input starting at {t}")),
        }
    }

    /// `or := and ('|' and)*`
    fn guard(&mut self) -> Result<RouteGuard, String> {
        let mut g = self.guard_and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            g = g.or(self.guard_and()?);
        }
        Ok(g)
    }

    /// `and := atom ('&' atom)*`
    fn guard_and(&mut self) -> Result<RouteGuard, String> {
        let mut g = self.guard_atom()?;
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            g = g.and(self.guard_atom()?);
        }
        Ok(g)
    }

    /// `atom := '!' atom | '(' or ')' | true | sym(..) | has-tag(..) | ...`
    fn guard_atom(&mut self) -> Result<RouteGuard, String> {
        match self.next() {
            Some(Tok::Bang) => Ok(self.guard_atom()?.not()),
            Some(Tok::LParen) => {
                let g = self.guard()?;
                self.expect(&Tok::RParen)?;
                Ok(g)
            }
            Some(Tok::Ident(head)) => match head.as_str() {
                "true" => Ok(RouteGuard::True),
                "sym" => {
                    self.expect(&Tok::LParen)?;
                    let name = self.ident("a symbolic name")?;
                    self.expect(&Tok::RParen)?;
                    Ok(RouteGuard::SymBool(name))
                }
                "has-tag" => {
                    let (field, tag) = self.field_ident_pair("a tag")?;
                    Ok(RouteGuard::HasTag { field, tag })
                }
                "int-eq" => {
                    let (field, value) = self.field_num_pair("an integer")?;
                    Ok(RouteGuard::IntEq {
                        field,
                        value: i64::try_from(value).map_err(|_| "int-eq value out of range")?,
                    })
                }
                "bv-eq" => {
                    let (field, value) = self.field_num_pair("a bitvector value")?;
                    Ok(RouteGuard::BvEq {
                        field,
                        value: u64::try_from(value).map_err(|_| "bv-eq value out of range")?,
                    })
                }
                "field-eq-var" => {
                    let (field, var) = self.field_ident_pair("a variable name")?;
                    Ok(RouteGuard::FieldEqVar { field, var })
                }
                other => Err(format!("unknown guard {other:?}")),
            },
            Some(t) => Err(format!("expected a guard, got {t}")),
            None => Err("expected a guard, got end of input".to_owned()),
        }
    }

    fn field_ident_pair(&mut self, what: &str) -> Result<(String, String), String> {
        self.expect(&Tok::LParen)?;
        let field = self.ident("a field name")?;
        self.expect(&Tok::Comma)?;
        let second = self.ident(what)?;
        self.expect(&Tok::RParen)?;
        Ok((field, second))
    }

    fn field_num_pair(&mut self, what: &str) -> Result<(String, i128), String> {
        self.expect(&Tok::LParen)?;
        let field = self.ident("a field name")?;
        self.expect(&Tok::Comma)?;
        let value = self.num(what)?;
        self.expect(&Tok::RParen)?;
        Ok((field, value))
    }

    fn rewrite_op(&mut self) -> Result<RewriteOp, String> {
        let head = self.ident("a rewrite op")?;
        match head.as_str() {
            "inc" => {
                let (field, by) = self.field_num_pair("an increment")?;
                Ok(RewriteOp::IncInt {
                    field,
                    by: i64::try_from(by).map_err(|_| "inc value out of range")?,
                })
            }
            "set-bv" => {
                let (field, value) = self.field_num_pair("a bitvector value")?;
                Ok(RewriteOp::SetBv {
                    field,
                    value: u64::try_from(value).map_err(|_| "set-bv value out of range")?,
                })
            }
            "set-bool" => {
                let (field, value) = self.field_ident_pair("true or false")?;
                let value = match value.as_str() {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("set-bool expects true or false, got {other:?}")),
                };
                Ok(RewriteOp::SetBool { field, value })
            }
            "set-enum" => {
                let (field, variant) = self.field_ident_pair("an enum variant")?;
                Ok(RewriteOp::SetEnum { field, variant })
            }
            "add-tag" => {
                let (field, tag) = self.field_ident_pair("a tag")?;
                Ok(RewriteOp::AddTag { field, tag })
            }
            "remove-tag" => {
                let (field, tag) = self.field_ident_pair("a tag")?;
                Ok(RewriteOp::RemoveTag { field, tag })
            }
            other => Err(format!("unknown rewrite op {other:?}")),
        }
    }

    fn merge_key(&mut self) -> Result<MergeKey, String> {
        let head = self.ident("a merge key")?;
        match head.as_str() {
            "lower" => {
                self.expect(&Tok::LParen)?;
                let field = self.ident("a field name")?;
                self.expect(&Tok::RParen)?;
                Ok(MergeKey::Lower(field))
            }
            "higher" => {
                self.expect(&Tok::LParen)?;
                let field = self.ident("a field name")?;
                self.expect(&Tok::RParen)?;
                Ok(MergeKey::Higher(field))
            }
            "rank" => {
                self.expect(&Tok::LParen)?;
                let field = self.ident("a field name")?;
                self.expect(&Tok::Semi)?;
                let mut order = vec![self.ident("an enum variant")?];
                while self.peek() == Some(&Tok::Comma) {
                    self.next();
                    order.push(self.ident("an enum variant")?);
                }
                self.expect(&Tok::RParen)?;
                Ok(MergeKey::RankEnum(field, order))
            }
            "first" => {
                self.expect(&Tok::LParen)?;
                let guard = self.guard()?;
                self.expect(&Tok::RParen)?;
                Ok(MergeKey::GuardFirst(guard))
            }
            other => Err(format!("unknown merge key {other:?}")),
        }
    }

    fn clause(&mut self) -> Result<PolicyClause, String> {
        match self.next() {
            Some(Tok::Ident(kw)) if kw == "when" => {}
            Some(t) => return Err(format!("a clause starts with 'when', got {t}")),
            None => return Err("a clause starts with 'when', got end of input".to_owned()),
        }
        let guard = self.guard()?;
        self.expect(&Tok::Arrow)?;
        if matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "drop") {
            self.next();
            return Ok(PolicyClause { guard, action: ClauseAction::Drop });
        }
        let mut ops = vec![self.rewrite_op()?];
        while self.peek() == Some(&Tok::Semi) {
            self.next();
            ops.push(self.rewrite_op()?);
        }
        Ok(PolicyClause { guard, action: ClauseAction::Rewrite(ops) })
    }
}

impl FromStr for RouteGuard {
    type Err = String;

    fn from_str(s: &str) -> Result<RouteGuard, String> {
        let mut p = Parser::new(s)?;
        let g = p.guard()?;
        p.done()?;
        Ok(g)
    }
}

impl FromStr for RewriteOp {
    type Err = String;

    fn from_str(s: &str) -> Result<RewriteOp, String> {
        let mut p = Parser::new(s)?;
        let op = p.rewrite_op()?;
        p.done()?;
        Ok(op)
    }
}

impl FromStr for MergeKey {
    type Err = String;

    fn from_str(s: &str) -> Result<MergeKey, String> {
        let mut p = Parser::new(s)?;
        let key = p.merge_key()?;
        p.done()?;
        Ok(key)
    }
}

impl FromStr for PolicyClause {
    type Err = String;

    fn from_str(s: &str) -> Result<PolicyClause, String> {
        let mut p = Parser::new(s)?;
        let clause = p.clause()?;
        p.done()?;
        Ok(clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoutePolicy;

    fn roundtrip_guard(g: RouteGuard) {
        let text = g.to_string();
        let back: RouteGuard = text.parse().unwrap_or_else(|e| panic!("parsing {text:?}: {e}"));
        assert_eq!(back, g, "{text}");
    }

    #[test]
    fn guards_roundtrip() {
        let a = RouteGuard::IntEq { field: "len".into(), value: 0 };
        let b = RouteGuard::HasTag { field: "comms".into(), tag: "down".into() };
        let c = RouteGuard::SymBool("fail-edge-0-0-agg-0-0".into());
        let d = RouteGuard::BvEq { field: "med".into(), value: 5 };
        let e = RouteGuard::FieldEqVar { field: "destination".into(), var: "dest".into() };
        roundtrip_guard(RouteGuard::True);
        roundtrip_guard(a.clone());
        roundtrip_guard(a.clone().not());
        roundtrip_guard(a.clone().and(b.clone()).or(c.clone()));
        roundtrip_guard(a.clone().or(b.clone()).and(c.clone()));
        roundtrip_guard(a.clone().or(b.clone().and(c.clone())).not());
        roundtrip_guard(d.and(e).or(a.not()));
    }

    #[test]
    fn negative_int_eq_roundtrips() {
        roundtrip_guard(RouteGuard::IntEq { field: "len".into(), value: -3 });
    }

    #[test]
    fn precedence_parses_as_printed() {
        // `a | b & c` is `a | (b & c)`
        let g: RouteGuard = "int-eq(len, 1) | int-eq(len, 2) & int-eq(len, 3)".parse().unwrap();
        assert!(matches!(g, RouteGuard::Or(_, _)));
        // explicit parens override
        let g: RouteGuard = "(int-eq(len, 1) | int-eq(len, 2)) & int-eq(len, 3)".parse().unwrap();
        assert!(matches!(g, RouteGuard::And(_, _)));
    }

    #[test]
    fn rewrite_ops_roundtrip() {
        for op in [
            RewriteOp::IncInt { field: "len".into(), by: 1 },
            RewriteOp::SetBv { field: "med".into(), value: 3 },
            RewriteOp::SetBool { field: "tag".into(), value: true },
            RewriteOp::SetEnum { field: "origin".into(), variant: "egp".into() },
            RewriteOp::AddTag { field: "comms".into(), tag: "down".into() },
            RewriteOp::RemoveTag { field: "comms".into(), tag: "bte".into() },
        ] {
            let text = op.to_string();
            assert_eq!(text.parse::<RewriteOp>().unwrap(), op, "{text}");
        }
    }

    #[test]
    fn merge_keys_roundtrip() {
        for key in [
            MergeKey::Lower("ad".into()),
            MergeKey::Higher("lp".into()),
            MergeKey::RankEnum("origin".into(), vec!["igp".into(), "egp".into()]),
            MergeKey::GuardFirst(RouteGuard::HasTag { field: "comms".into(), tag: "down".into() }),
        ] {
            let text = key.to_string();
            assert_eq!(text.parse::<MergeKey>().unwrap(), key, "{text}");
        }
    }

    #[test]
    fn clauses_roundtrip() {
        let policy = RoutePolicy::new()
            .when(
                RouteGuard::IntEq { field: "len".into(), value: 0 },
                ClauseAction::Rewrite(vec![
                    RewriteOp::SetBv { field: "med".into(), value: 2 },
                    RewriteOp::AddTag { field: "comms".into(), tag: "down".into() },
                ]),
            )
            .drop_if(RouteGuard::HasTag { field: "comms".into(), tag: "bte".into() })
            .increment("len");
        for clause in policy.clauses() {
            let text = clause.to_string();
            assert_eq!(&text.parse::<PolicyClause>().unwrap(), clause, "{text}");
        }
    }

    #[test]
    fn parse_errors_name_the_problem() {
        assert!("when".parse::<PolicyClause>().unwrap_err().contains("guard"));
        assert!("nope(len)".parse::<MergeKey>().unwrap_err().contains("unknown merge key"));
        assert!("inc(len, x)".parse::<RewriteOp>().unwrap_err().contains("expected an increment"));
        assert!("int-eq(len, 1) extra"
            .parse::<RouteGuard>()
            .unwrap_err()
            .contains("trailing input"));
    }
}
