//! The shortest-path (hop count) algebra — RIP-like routing to one
//! destination.

use timepiece_topology::NodeId;

use crate::traits::RoutingAlgebra;

/// Hop-count routing to a single destination; `None` is the absent route.
///
/// This is the concrete counterpart of the paper's `Reach` policy: transfer
/// increments the hop count, merge prefers the shorter route.
///
/// # Example
///
/// ```
/// use timepiece_algebra::{RoutingAlgebra, ShortestPath};
/// use timepiece_topology::NodeId;
///
/// let alg = ShortestPath::new(NodeId::new(0));
/// assert_eq!(alg.merge(&Some(3), &Some(1)), Some(1));
/// assert_eq!(alg.merge(&None, &Some(9)), Some(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortestPath {
    dest: NodeId,
}

impl ShortestPath {
    /// Creates the algebra with the given destination.
    pub fn new(dest: NodeId) -> ShortestPath {
        ShortestPath { dest }
    }

    /// The destination node.
    pub fn dest(&self) -> NodeId {
        self.dest
    }
}

impl RoutingAlgebra for ShortestPath {
    type Route = Option<u64>;

    fn initial(&self, v: NodeId) -> Option<u64> {
        if v == self.dest {
            Some(0)
        } else {
            None
        }
    }

    fn transfer(&self, _edge: (NodeId, NodeId), route: &Option<u64>) -> Option<u64> {
        route.map(|hops| hops.saturating_add(1))
    }

    fn merge(&self, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(*x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_only_at_dest() {
        let alg = ShortestPath::new(NodeId::new(2));
        assert_eq!(alg.initial(NodeId::new(2)), Some(0));
        assert_eq!(alg.initial(NodeId::new(0)), None);
        assert_eq!(alg.dest(), NodeId::new(2));
    }

    #[test]
    fn transfer_increments_and_preserves_none() {
        let alg = ShortestPath::new(NodeId::new(0));
        let e = (NodeId::new(0), NodeId::new(1));
        assert_eq!(alg.transfer(e, &Some(4)), Some(5));
        assert_eq!(alg.transfer(e, &None), None);
        assert_eq!(alg.transfer(e, &Some(u64::MAX)), Some(u64::MAX));
    }

    #[test]
    fn merge_prefers_present_then_shorter() {
        let alg = ShortestPath::new(NodeId::new(0));
        assert_eq!(alg.merge(&None, &None), None);
        assert_eq!(alg.merge(&Some(2), &Some(2)), Some(2));
        assert_eq!(alg.merge(&Some(1), &Some(5)), Some(1));
    }
}
