//! The routing algebra abstraction.

use std::fmt::Debug;

use timepiece_topology::NodeId;

/// A routing algebra `(S, I, F, ⊕)` over a fixed topology.
///
/// * `Route` is the route set `S` (conventionally an `Option`, with `None`
///   playing the paper's `∞` "no route").
/// * [`RoutingAlgebra::initial`] is the initialization function `I`.
/// * [`RoutingAlgebra::transfer`] is the edge transfer family `F`.
/// * [`RoutingAlgebra::merge`] is the selection function `⊕`, expected to be
///   associative, commutative and selective (see [`crate::laws`]).
pub trait RoutingAlgebra {
    /// The set of routes `S`.
    type Route: Clone + Debug + PartialEq;

    /// The initial route `I(v)` of a node.
    fn initial(&self, v: NodeId) -> Self::Route;

    /// The transfer function `f_{uv}` applied to a route crossing `u → v`.
    fn transfer(&self, edge: (NodeId, NodeId), route: &Self::Route) -> Self::Route;

    /// The merge `a ⊕ b`, selecting the better of two routes.
    fn merge(&self, a: &Self::Route, b: &Self::Route) -> Self::Route;

    /// Folds merge over any number of candidate routes, starting from `init`.
    fn merge_all<'a>(
        &self,
        init: Self::Route,
        candidates: impl IntoIterator<Item = &'a Self::Route>,
    ) -> Self::Route
    where
        Self::Route: 'a,
    {
        candidates.into_iter().fold(init, |acc, r| self.merge(&acc, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_topology::NodeId;

    /// A toy algebra: routes are hop counts, merge is min.
    struct MinHops;

    impl RoutingAlgebra for MinHops {
        type Route = u32;

        fn initial(&self, v: NodeId) -> u32 {
            if v.index() == 0 {
                0
            } else {
                u32::MAX
            }
        }

        fn transfer(&self, _edge: (NodeId, NodeId), route: &u32) -> u32 {
            route.saturating_add(1)
        }

        fn merge(&self, a: &u32, b: &u32) -> u32 {
            *a.min(b)
        }
    }

    #[test]
    fn merge_all_folds() {
        let alg = MinHops;
        let routes = [7, 3, 9];
        assert_eq!(alg.merge_all(5, routes.iter()), 3);
        assert_eq!(alg.merge_all(1, routes.iter()), 1);
        assert_eq!(alg.merge_all(u32::MAX, [].iter()), u32::MAX);
    }
}
