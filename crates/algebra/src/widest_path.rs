//! The widest-path (maximum bottleneck bandwidth) algebra.

use std::collections::HashMap;

use timepiece_topology::NodeId;

use crate::traits::RoutingAlgebra;

/// Bottleneck-bandwidth routing to a single destination.
///
/// A route carries the minimum capacity along its path; merge prefers the
/// *widest* route. This algebra is selective and monotone (capacities only
/// shrink along a path), so it converges like shortest paths — it exists here
/// to exercise the algebra laws on a non-additive instance.
#[derive(Debug, Clone)]
pub struct WidestPath {
    dest: NodeId,
    capacities: HashMap<(NodeId, NodeId), u64>,
    default_capacity: u64,
}

impl WidestPath {
    /// Creates the algebra; edges not in `capacities` get `default_capacity`.
    pub fn new(
        dest: NodeId,
        capacities: HashMap<(NodeId, NodeId), u64>,
        default_capacity: u64,
    ) -> WidestPath {
        WidestPath { dest, capacities, default_capacity }
    }

    /// The capacity of an edge.
    pub fn capacity(&self, edge: (NodeId, NodeId)) -> u64 {
        self.capacities.get(&edge).copied().unwrap_or(self.default_capacity)
    }
}

impl RoutingAlgebra for WidestPath {
    type Route = Option<u64>;

    fn initial(&self, v: NodeId) -> Option<u64> {
        if v == self.dest {
            Some(u64::MAX)
        } else {
            None
        }
    }

    fn transfer(&self, edge: (NodeId, NodeId), route: &Option<u64>) -> Option<u64> {
        route.map(|width| width.min(self.capacity(edge)))
    }

    fn merge(&self, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(*x.max(y)),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alg() -> WidestPath {
        let mut caps = HashMap::new();
        caps.insert((NodeId::new(0), NodeId::new(1)), 10);
        caps.insert((NodeId::new(1), NodeId::new(2)), 40);
        WidestPath::new(NodeId::new(0), caps, 100)
    }

    #[test]
    fn transfer_takes_bottleneck() {
        let a = alg();
        let e01 = (NodeId::new(0), NodeId::new(1));
        let e12 = (NodeId::new(1), NodeId::new(2));
        let at1 = a.transfer(e01, &a.initial(NodeId::new(0)));
        assert_eq!(at1, Some(10));
        assert_eq!(a.transfer(e12, &at1), Some(10)); // 40 does not widen 10
    }

    #[test]
    fn default_capacity_applies() {
        let a = alg();
        let unknown = (NodeId::new(5), NodeId::new(6));
        assert_eq!(a.capacity(unknown), 100);
        assert_eq!(a.transfer(unknown, &Some(u64::MAX)), Some(100));
    }

    #[test]
    fn merge_prefers_wider() {
        let a = alg();
        assert_eq!(a.merge(&Some(10), &Some(40)), Some(40));
        assert_eq!(a.merge(&None, &Some(1)), Some(1));
        assert_eq!(a.merge(&None, &None), None);
    }
}
