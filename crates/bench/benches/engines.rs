//! Criterion comparison of the two engines (Fig. 1's shape at small k) and
//! ablations of the design choices called out in DESIGN.md: encoding cost
//! versus solving cost, and thread-count scaling.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use timepiece_bench::{fattree_instance, BenchKind};
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::monolithic::{check_monolithic, monolithic_vc};
use timepiece_core::vc::inductive_vc;
use timepiece_smt::Encoder;

fn bench_modular_vs_monolithic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1-k4");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    let inst = fattree_instance(BenchKind::parse("SpHijack").unwrap(), 4);
    group.bench_function("modular", |b| {
        let checker = ModularChecker::new(CheckOptions::default());
        b.iter(|| {
            assert!(checker
                .check(&inst.network, &inst.interface, &inst.property)
                .expect("encodes")
                .is_verified());
        })
    });
    group.bench_function("monolithic", |b| {
        b.iter(|| {
            assert!(check_monolithic(&inst.network, &inst.property, None)
                .expect("encodes")
                .outcome
                .is_verified());
        })
    });
    group.finish();
}

fn bench_encoding_cost(c: &mut Criterion) {
    // ablation: how much of a node check is formula construction vs solving
    let mut group = c.benchmark_group("encoding");
    group.sample_size(20);
    let inst = fattree_instance(BenchKind::parse("SpLen").unwrap(), 8);
    let core = inst
        .network
        .topology()
        .nodes()
        .max_by_key(|&v| inst.network.topology().in_degree(v))
        .expect("nonempty");
    group.bench_function("inductive-vc-build+compile", |b| {
        b.iter(|| {
            let vc = inductive_vc(&inst.network, &inst.interface, core, 0);
            let mut enc = Encoder::new();
            for a in vc.assumptions() {
                enc.compile_bool(a).expect("encodes");
            }
            enc.compile_bool(vc.goal()).expect("encodes");
        })
    });
    group.bench_function("monolithic-vc-build+compile", |b| {
        b.iter(|| {
            let vc = monolithic_vc(&inst.network, &inst.property);
            let mut enc = Encoder::new();
            for a in vc.assumptions() {
                enc.compile_bool(a).expect("encodes");
            }
            enc.compile_bool(vc.goal()).expect("encodes");
        })
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // ablation: the embarrassingly-parallel claim — same work, varying pool
    let mut group = c.benchmark_group("threads");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    let inst = fattree_instance(BenchKind::parse("SpReach").unwrap(), 8);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("t{threads}"), |b| {
            let checker = ModularChecker::new(CheckOptions {
                threads: Some(threads),
                ..CheckOptions::default()
            });
            b.iter(|| {
                assert!(checker
                    .check(&inst.network, &inst.interface, &inst.property)
                    .expect("encodes")
                    .is_verified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modular_vs_monolithic, bench_encoding_cost, bench_thread_scaling);
criterion_main!(benches);
