//! Criterion benchmarks for the Fig. 14 fattree sweeps at small k.
//!
//! These measure the modular engine end-to-end (all three conditions at all
//! nodes, in parallel) for each of the eight benchmarks. The full paper-size
//! sweep lives in the `repro` binary; keeping criterion at k = 4 makes
//! `cargo bench` finish in minutes while still tracking regressions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use timepiece_bench::{fattree_instance, BenchKind};
use timepiece_core::check::{CheckOptions, ModularChecker};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14-k4");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    for kind in BenchKind::all() {
        let inst = fattree_instance(kind, 4);
        let checker = ModularChecker::new(CheckOptions::default());
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let report =
                    checker.check(&inst.network, &inst.interface, &inst.property).expect("encodes");
                assert!(report.is_verified());
            })
        });
    }
    group.finish();
}

fn bench_single_node(c: &mut Criterion) {
    // the paper's headline: individual node checks take milliseconds
    let mut group = c.benchmark_group("single-node-check");
    group.sample_size(10);
    for kind in [BenchKind::parse("SpReach").unwrap(), BenchKind::parse("SpHijack").unwrap()] {
        let inst = fattree_instance(kind, 8);
        let checker = ModularChecker::new(CheckOptions::default());
        let node = inst.network.topology().nodes().next().expect("nonempty");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let (failures, _) = checker
                    .check_node(&inst.network, &inst.interface, &inst.property, node)
                    .expect("encodes");
                assert!(failures.is_empty());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14, bench_single_node);
criterion_main!(benches);
