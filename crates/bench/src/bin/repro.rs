//! Regenerates every table and figure of the paper as text output, plus the
//! interface-inference pipeline of `timepiece-infer`.
//!
//! ```text
//! repro fig1      [--max-k N] [--timeout-secs S] [--threads T]
//! repro fig3
//! repro fig13
//! repro fig14     [--bench NAME|all] [--max-k N] [--timeout-secs S] [--no-ms]
//! repro table1
//! repro table2
//! repro table3
//! repro wan       [--peers N] [--timeout-secs S]
//! repro keyideas
//! repro infer     [--bench reach|len|all] [--max-k N] [--no-roles]
//! repro all
//! ```
//!
//! Defaults keep the sweeps laptop-sized (k ≤ 12, 60 s budget); raise
//! `--max-k`/`--timeout-secs` to push toward the paper's k = 40 / 2 h runs.

use std::time::Duration;

use timepiece_bench::{loc, run_row, BenchKind, SweepOptions};
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::monolithic::check_monolithic;
use timepiece_core::strawperson::check_strawperson;
use timepiece_expr::Env;
use timepiece_nets::example::{RunningExample, EXTERNAL_ROUTE_VAR};
use timepiece_nets::ghost;
use timepiece_nets::wan::WanBench;
use timepiece_topology::FatTree;

const USAGE: &str = "usage: repro <subcommand> [flags]

subcommands:
  fig1       modular vs monolithic sweep on SpHijack
  fig3       running example simulation table
  fig13      example 4-fattree with Vf down-edge tagging
  fig14      the eight fattree benchmark sweeps
  table1     ghost-state property encodings
  table2     lines of code per benchmark definition
  table3     eBGP route fields modelled in SMT
  wan        BlockToExternal on the synthetic Internet2
  keyideas   the Figs. 4-10 demonstrations
  infer      infer interfaces from simulation, verify, compare to hand-written
  all        everything above (except infer)

flags:
  --max-k N          largest fattree parameter to sweep (default 12; infer: 8)
  --timeout-secs S   per-engine solver budget in seconds (default 60)
  --threads T        worker threads for the modular checker (default: all cores)
  --bench NAME       restrict fig14 to matching benchmarks / infer to reach|len
  --no-ms            skip the monolithic baseline in sweeps
  --no-roles         infer without fattree role generalization
  --peers N          external peer count for the wan subcommand (default 253)";

struct Args {
    max_k: Option<usize>,
    timeout: Duration,
    threads: Option<usize>,
    bench: String,
    run_ms: bool,
    use_roles: bool,
    peers: usize,
}

/// The next flag value, or a usage error naming the flag and what it wants.
fn next_value(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
    what: &str,
) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("{flag} requires a value ({what})"))
}

/// The next flag value parsed as `T`, or a usage error.
fn parse_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
    what: &str,
) -> Result<T, String> {
    let raw = next_value(it, flag, what)?;
    raw.parse().map_err(|_| format!("{flag}: cannot parse {raw:?} as {what}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        max_k: None,
        timeout: Duration::from_secs(60),
        threads: None,
        bench: "all".to_owned(),
        run_ms: true,
        use_roles: true,
        peers: 253,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--max-k" => args.max_k = Some(parse_value(&mut it, flag, "integer k")?),
            "--timeout-secs" => {
                args.timeout = Duration::from_secs(parse_value(&mut it, flag, "seconds")?)
            }
            "--threads" => args.threads = Some(parse_value(&mut it, flag, "thread count")?),
            "--bench" => args.bench = next_value(&mut it, flag, "benchmark name")?,
            "--no-ms" => args.run_ms = false,
            "--no-roles" => args.use_roles = false,
            "--peers" => args.peers = parse_value(&mut it, flag, "peer count")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

impl Args {
    fn max_k(&self) -> usize {
        self.max_k.unwrap_or(12)
    }
}

fn ks(max_k: usize) -> Vec<usize> {
    (4..=max_k).step_by(4).collect()
}

fn sweep(kind: BenchKind, args: &Args) {
    println!("\n=== Fig. {} — {} (Tp vs Ms) ===", kind.figure(), kind.name());
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "k", "nodes", "Tp total", "Tp median", "Tp p99", "Ms"
    );
    let options =
        SweepOptions { timeout: args.timeout, run_monolithic: args.run_ms, threads: args.threads };
    for k in ks(args.max_k()) {
        let row = run_row(kind, k, &options);
        println!(
            "{:>4} {:>6} {:>12} {:>12} {:>12} {:>12}",
            row.k,
            row.nodes,
            row.tp.display(),
            format!("{:.3}s", row.tp_median.as_secs_f64()),
            format!("{:.3}s", row.tp_p99.as_secs_f64()),
            row.ms.map_or("-".to_owned(), |m| m.display()),
        );
    }
}

fn fig1(args: &Args) {
    // Fig. 1: connectivity with external route announcements — the Hijack
    // policy is the evaluation's benchmark with exactly that shape.
    println!("=== Fig. 1 — modular vs monolithic verification time ===");
    println!("(SpHijack: fattree connectivity with symbolic external announcements)");
    sweep(BenchKind::SpHijack, args);
}

fn fig3() {
    println!("=== Fig. 3 — running example simulation ===");
    let ex = RunningExample::new();
    let mut env = Env::new();
    env.bind(EXTERNAL_ROUTE_VAR, ex.no_route());
    let trace = timepiece_sim::simulate(&ex.network, &env, 16).expect("simulates");
    print!("{:>4}", "time");
    for v in ex.network.topology().nodes() {
        print!(" {:>28}", ex.network.topology().name(v));
    }
    println!();
    for t in 0..=4 {
        print!("{t:>4}");
        for v in ex.network.topology().nodes() {
            print!(" {:>28}", trace.state(v, t).to_string());
        }
        println!();
    }
    println!("paper: stabilizes at time 3; measured: converged at t = {:?}", trace.converged_at());
}

fn fig13() {
    println!("=== Fig. 13 — example 4-fattree with Vf down-edge tagging ===");
    let ft = FatTree::new(4);
    for v in ft.topology().nodes() {
        let succs: Vec<String> = ft
            .topology()
            .succs(v)
            .iter()
            .map(|&u| {
                let marker = if ft.is_down_edge(v, u) { "↓" } else { "↑" };
                format!("{}{marker}", ft.topology().name(u))
            })
            .collect();
        println!("  {:>9} -> {}", ft.topology().name(v), succs.join(", "));
    }
    println!(
        "(nodes: {} = 1.25k², directed edges: {} = k³; ↓ edges add the `down` community)",
        ft.topology().node_count(),
        ft.topology().edge_count()
    );
}

fn table1() {
    println!("=== Table 1 — ghost-state property encodings ===");
    let check = |inst: &timepiece_nets::BenchInstance| {
        ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .expect("encodes")
            .is_verified()
    };
    let rows: [(&str, &str, bool, bool); 4] = [
        (
            "isolation",
            "1 bit per isolation domain",
            check(&ghost::isolation(true)),
            !check(&ghost::isolation(false)),
        ),
        (
            "unordered waypoint",
            "k bits for k waypoints",
            check(&ghost::unordered_waypoints(false)),
            !check(&ghost::unordered_waypoints(true)),
        ),
        (
            "no-transit",
            "mark with {peer, prov, cust}",
            check(&ghost::no_transit(false)),
            !check(&ghost::no_transit(true)),
        ),
        (
            "fault tolerance",
            "1 symbolic bit per tracked edge",
            check(&ghost::fault_tolerance(false)),
            !check(&ghost::fault_tolerance(true)),
        ),
    ];
    println!("{:<20} {:<34} {:>9} {:>12}", "property", "ghost state", "verified", "bug caught");
    for (name, state, ok, caught) in rows {
        println!("{name:<20} {state:<34} {ok:>9} {caught:>12}");
    }
    println!("(reachability-origin bit: see `repro keyideas` Fig. 10; bounded length: Fig. 14b)");
}

fn table2() {
    println!("=== Table 2 — lines of code per benchmark definition ===");
    println!(
        "{:<18} {:>12} {:>14} {:>13}   (paper C# values in parentheses)",
        "benchmark", "network LoC", "interface LoC", "property LoC"
    );
    for (row, (pname, pn, pi, pp)) in loc::table2().iter().zip(loc::PAPER_TABLE2) {
        assert_eq!(row.benchmark, pname);
        println!(
            "{:<18} {:>8} ({pn:>3}) {:>9} ({pi:>3}) {:>8} ({pp:>3})",
            row.benchmark, row.network, row.interface, row.property
        );
    }
}

fn table3() {
    println!("=== Table 3 — eBGP route fields modelled in SMT ===");
    let schema = timepiece_nets::bgp::BgpSchema::new(["down"], ["tag"]);
    println!("{:<28} {:<24}", "route field", "modelled type in SMT");
    for (name, ty) in schema.record_def().fields() {
        let smt_ty = match ty {
            timepiece_expr::Type::BitVec(w) => format!("bitvector({w})"),
            timepiece_expr::Type::Int => "integer".to_owned(),
            timepiece_expr::Type::Enum(d) => format!("enum {{{}}}", d.variants().join(", ")),
            timepiece_expr::Type::Set(d) => {
                format!("set over {} tags (bitvector)", d.universe().len())
            }
            timepiece_expr::Type::Bool => "boolean (ghost)".to_owned(),
            other => other.to_string(),
        };
        println!("{name:<28} {smt_ty:<24}");
    }
}

fn wan(args: &Args) {
    println!("=== §6 WAN — BlockToExternal on synthetic Internet2 ===");
    let bench = WanBench::with_peers(7, args.peers);
    let inst = bench.build();
    println!(
        "{} internal + {} peers, ~{} policy terms",
        bench.wan().internal_nodes().count(),
        bench.wan().external_nodes().count(),
        bench.policy_term_count()
    );
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    let report = checker.check(&inst.network, &inst.interface, &inst.property).expect("encodes");
    let stats = report.stats();
    println!(
        "modular:    verified = {} wall = {:.2}s median = {:.3}s p99 = {:.3}s",
        report.is_verified(),
        report.wall().as_secs_f64(),
        stats.median.as_secs_f64(),
        stats.p99.as_secs_f64(),
    );
    println!("            (paper: 38.3 s total, 0.6 s median, 4.2 s p99 on a 6-core laptop)");
    let mono =
        check_monolithic(&inst.network, &inst.property, Some(args.timeout)).expect("encodes");
    println!(
        "monolithic: outcome = {} wall = {:.2}s   (paper: no result within 2 h)",
        if mono.outcome.is_verified() { "verified" } else { "timeout/failed" },
        mono.wall.as_secs_f64(),
    );
}

fn keyideas() {
    println!("=== §2 key ideas — Figs. 4–10 on the running example ===");
    let ex = RunningExample::new();
    let checker = ModularChecker::new(CheckOptions::default());
    let verify = |a: &timepiece_core::NodeAnnotations, p: &timepiece_core::NodeAnnotations| {
        checker.check(&ex.network, a, p).expect("encodes").is_verified()
    };
    println!(
        "Fig. 7  tagging interfaces verify 'e's routes are tagged':        {}",
        verify(&ex.tagging_interfaces(), &ex.tagging_property())
    );
    println!(
        "Fig. 8  timed interfaces verify 'e eventually reaches w':        {}",
        verify(&ex.reachability_interfaces(), &ex.reachability_property())
    );
    let bad = ex.bad_interfaces(false);
    println!(
        "Fig. 4/9 bad interfaces accepted by unsound strawperson (SV):     {}",
        check_strawperson(&ex.network, &bad).expect("encodes").is_empty()
    );
    println!(
        "Fig. 9  bad interfaces rejected by Timepiece (initial cond.):     {}",
        !verify(&bad, &ex.tagging_property())
    );
    println!(
        "Fig. 9  patched (∨ s=∞) still rejected (inductive cond.):        {}",
        !verify(&ex.bad_interfaces(true), &ex.tagging_property())
    );
    println!(
        "Fig. 10 ghost interfaces verify 'e's route originated at w':      {}",
        verify(&ex.ghost_interfaces(), &ex.ghost_property())
    );
}

fn fig14(args: &Args) {
    if args.bench.eq_ignore_ascii_case("all") {
        for kind in BenchKind::ALL {
            sweep(kind, args);
        }
    } else {
        let spec = args.bench.to_lowercase();
        let kinds: Vec<BenchKind> = BenchKind::ALL
            .into_iter()
            .filter(|k| k.name().to_lowercase().contains(&spec))
            .collect();
        assert!(!kinds.is_empty(), "no benchmark matches {spec:?}");
        for kind in kinds {
            sweep(kind, args);
        }
    }
}

/// One inference run: build the property-only spec, infer, verify, and
/// compare against the hand-written interface of the same benchmark.
fn infer_row(name: &str, k: usize, args: &Args) {
    use timepiece_infer::{InferOptions, InferenceEngine, RoleMap};
    use timepiece_nets::{len::LenBench, reach::ReachBench};

    let (spec, instance, fattree, dest) = match name {
        "SpReach" => {
            let bench = ReachBench::single_dest(k, 0);
            let dest = bench.dest_node().expect("fixed destination");
            (bench.spec(), bench.build(), bench.fattree().clone(), dest)
        }
        "SpLen" => {
            let bench = LenBench::single_dest(k, 0);
            let dest = bench.dest_node().expect("fixed destination");
            (bench.spec(), bench.build(), bench.fattree().clone(), dest)
        }
        other => unreachable!("unknown inference benchmark {other}"),
    };
    let roles = if args.use_roles {
        RoleMap::fattree(&fattree, dest)
    } else {
        RoleMap::singleton(fattree.topology())
    };
    // templates are indexed by role; keep the node → role mapping for the
    // quality comparison below
    let node_role = roles.clone();
    let engine = InferenceEngine::new(InferOptions {
        check: CheckOptions {
            timeout: Some(args.timeout),
            threads: args.threads,
            ..CheckOptions::default()
        },
        ..InferOptions::default()
    });
    let result = engine
        .infer(&spec.network, &spec.property, roles, &[Env::new()])
        .expect("benchmark specs simulate and encode");
    let report = &result.report;

    // hand-written comparison: same property, same checker options
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    let hand_start = std::time::Instant::now();
    let hand = checker
        .check(&instance.network, &instance.interface, &instance.property)
        .expect("hand-written interfaces encode");
    let hand_wall = hand_start.elapsed();

    // annotation quality: how many nodes got exactly the paper's witness time
    let tau_matches = fattree
        .topology()
        .nodes()
        .filter(|&v| report.role_templates[node_role.role_of(v)].tau == fattree.dist(v, dest))
        .count();
    println!(
        "{:>8} {:>3} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10}",
        name,
        k,
        fattree.topology().node_count(),
        if report.verified { "yes" } else { "NO" },
        report.rounds,
        report.total_repairs(),
        format!("{:.2}s", report.wall.as_secs_f64()),
        format!("{:.2}s", hand_wall.as_secs_f64()),
        format!("{tau_matches}/{}", fattree.topology().node_count()),
        if hand.is_verified() { "yes" } else { "NO" },
    );
}

fn infer(args: &Args) {
    println!("=== timepiece-infer — interfaces from simulation, repaired by CEGIS ===");
    println!(
        "(property-only specs; role generalization {}; {} templates per instance)",
        if args.use_roles { "on" } else { "off" },
        if args.use_roles { "6" } else { "1.25k²" },
    );
    println!(
        "{:>8} {:>3} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "bench",
        "k",
        "nodes",
        "verified",
        "rounds",
        "repairs",
        "infer+chk",
        "hand chk",
        "τ match",
        "hand ok"
    );
    let spec = args.bench.to_lowercase();
    let benches: Vec<&str> = ["SpReach", "SpLen"]
        .into_iter()
        .filter(|b| spec == "all" || b.to_lowercase().contains(&spec))
        .collect();
    assert!(!benches.is_empty(), "no inference benchmark matches {spec:?}");
    for name in benches {
        for k in (4..=args.max_k.unwrap_or(8)).step_by(2) {
            infer_row(name, k, args);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = argv.split_first().map(|(c, r)| (c.as_str(), r)).unwrap_or(("all", &[]));
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        "fig1" => fig1(&args),
        "fig3" => fig3(),
        "fig13" => fig13(),
        "fig14" => fig14(&args),
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "wan" => wan(&args),
        "keyideas" => keyideas(),
        "infer" => infer(&args),
        "all" => {
            fig3();
            fig13();
            keyideas();
            table1();
            table2();
            table3();
            fig1(&args);
            fig14(&args);
            wan(&args);
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
