//! Regenerates every table and figure of the paper as text output, plus the
//! interface-inference pipeline of `timepiece-infer`.
//!
//! ```text
//! repro fig1      [--max-k N] [--timeout-secs S] [--threads T]
//! repro fig3
//! repro fig13
//! repro fig14     [--bench NAME|all] [--scenario-file PATH]
//!                 [--max-k N | --ks 4,6,8] [--timeout-secs S]
//!                 [--no-ms] [--shards N] [--json PATH] [--trace PATH]
//!                 [--workers HOST:PORT,...] [--plan striped|adaptive]
//!                 [--history DUMP.json,...] [--halt-workers]
//! repro table1
//! repro table2
//! repro table3
//! repro wan       [--peers N] [--timeout-secs S]
//! repro keyideas
//! repro infer     [--bench reach|len|all] [--max-k N] [--no-roles] [--trace PATH]
//! repro arena     [--bench NAME|all] [--max-k N | --ks 4,6,8] [--timeout-secs S]
//! repro profile   [--bench NAME|all] [--max-k N | --ks 4,6,8] [--timeout-secs S]
//! repro trend     DUMP.json [DUMP.json ...]   (oldest first)
//! repro serve     [--bench NAME | --scenario-file PATH] [--k K] [--port P]
//!                 [--timeout-secs S] [--threads T]
//! repro ask       [--port P] [--request JSON]
//! repro soak      [--bench NAME] [--ks 4,6,8] [--clients N] [--deltas M] [--json PATH]
//! repro plan      [--bench NAME] [--k K] [--shards N] [--history DUMP.json,...]
//! repro worker    [--listen HOST:PORT] [--die-after N]
//! repro shard-worker --bench NAME --k K --shard I --shards N
//!                 [--nodes a,b,...] [--plan-spec JSON]  (internal)
//! repro fuzz      [--cases N] [--seed S] [--out DIR] [--steps N]
//! repro check     --scenario-file PATH [--steps N] [--timeout-secs S]
//! repro export    --bench NAME [--k K] [--out PATH]
//! repro all
//! ```
//!
//! Benchmarks come from the scenario registry (`timepiece-bench::\
//! ScenarioSpec`): the paper's eight Fig. 14 sweeps plus the post-paper MED,
//! IGP/EGP and link-failure scenarios — all present in `fig14`, `--json`
//! dumps and sharding alike. `--scenario-file PATH` compiles a declarative
//! TOML scenario (see `examples/scenarios/`) into the same registry, so file
//! scenarios flow through sweeps, subprocess sharding, the daemon and
//! `repro check` unchanged; `repro export` prints any registry scenario in
//! that format. Defaults keep the sweeps laptop-sized (k ≤ 12, 60 s
//! budget); raise `--max-k`/`--timeout-secs` to push toward the paper's
//! k = 40 / 2 h runs. With `--shards N` the modular engine forks `N` worker
//! subprocesses per row, merges their shard reports, and asserts full node
//! coverage; without sharding, sweep rows share one persistent checker pool
//! whose solver sessions carry over between rows.
//!
//! With `--workers host:port,...` the sweep goes *distributed*: each row's
//! shards are dispatched over TCP to `repro worker --listen` processes
//! (anywhere), with heartbeat liveness, dead-worker reassignment and
//! batched cross-worker stealing; `--shards` then defaults to 4x the worker
//! count so the steal scheduler has batches to move. `--plan adaptive`
//! replaces class-striped shard plans with cost-model LPT packing, fit from
//! the accumulated `--json` dumps named by `--history` (uniform costs when
//! no history exists); `repro plan` prints the resulting plan without
//! running anything.
//!
//! `--trace PATH` (fig14, infer) collects spans from every layer —
//! per-node checks, per-VC encode/solve, scheduler claim/steal, CEGIS
//! rounds — and writes a Chrome trace-event JSON loadable in Perfetto or
//! `chrome://tracing`, one track per worker thread (and per shard process
//! when combined with `--shards`). The registry's metrics snapshot rides
//! along under `otherData`. `repro profile` runs sweep rows with tracing on
//! and prints the phase breakdown directly: encode/solve/steal-idle/other
//! shares per row, per-node-class attribution, and the slowest nodes.
//!
//! `repro serve` starts `timepieced` — the verification daemon of
//! `timepiece-daemon` — on one warm instance; `repro ask` sends it a single
//! request; `repro soak` measures it under concurrent delta streams (cold
//! full-check baseline, single-edge probe, then N clients × M randomized
//! deltas) and dumps soak rows that `repro trend` can ingest alongside
//! fig14 dumps.

use std::time::Duration;

use timepiece_bench::{
    fattree_instance, halt_workers, loc, plan_row, run_row, run_row_distributed, run_row_pooled,
    run_row_sharded, run_shard, run_shard_nodes, run_soak, run_worker, trend, BenchKind,
    DistOptions, PlanChoice, PlanSpec, Row, SoakOptions, SweepOptions, WorkerExit, WorkerOptions,
};
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::monolithic::check_monolithic;
use timepiece_core::strawperson::check_strawperson;
use timepiece_core::sweep::CheckerPool;
use timepiece_daemon::{serve, spawn_sigterm_watcher, Client, DaemonState, Request};
use timepiece_expr::Env;
use timepiece_nets::example::{RunningExample, EXTERNAL_ROUTE_VAR};
use timepiece_nets::ghost;
use timepiece_nets::wan::WanBench;
use timepiece_topology::FatTree;

const USAGE_HEAD: &str = "usage: repro <subcommand> [flags]

subcommands:
  fig1       modular vs monolithic sweep on SpHijack
  fig3       running example simulation table
  fig13      example 4-fattree with Vf down-edge tagging
  fig14      the eight fattree benchmark sweeps (or a --scenario-file)
  table1     ghost-state property encodings
  table2     lines of code per benchmark definition
  table3     eBGP route fields modelled in SMT
  wan        BlockToExternal on the synthetic Internet2
  keyideas   the Figs. 4-10 demonstrations
  infer      infer interfaces from simulation, verify, compare to hand-written
  arena      per-row term-arena interning traffic and dedup ratios
  profile    phase-attributed breakdown per sweep row (encode/solve/steal-idle)
  trend      per-benchmark wall-time trajectories over --json dumps
  serve      start timepieced: the verification daemon, warm on one instance
  ask        send one NDJSON request to a running timepieced and print the reply
  soak       concurrent delta streams against one warm daemon (p50/p95, cones)
  plan       print the striped and adaptive shard plans without running anything
  worker     serve shard checks over TCP until a coordinator sends halt
  shard-worker  (internal) check one shard of one instance, print JSON report
  fuzz       differential-fuzz the three policy evaluators, shrink failures
  check      replay one --scenario-file through every evaluator and the checker
  export     print a registry scenario as a scenario file (edit and recompile)
  all        everything above (except infer, arena, trend and the daemon)

flags:";

struct Args {
    max_k: Option<usize>,
    ks: Option<Vec<usize>>,
    timeout: Duration,
    threads: Option<usize>,
    bench: String,
    run_ms: bool,
    use_roles: bool,
    peers: usize,
    shards: usize,
    workers: Vec<String>,
    plan: String,
    history: Vec<String>,
    halt_workers: bool,
    listen: Option<String>,
    die_after: Option<usize>,
    nodes: Option<String>,
    plan_spec: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    k: Option<usize>,
    shard: Option<usize>,
    trace_spans: bool,
    port: u16,
    request: Option<String>,
    clients: usize,
    deltas: usize,
    scenario_file: Option<String>,
    cases: u32,
    seed: u64,
    out: Option<String>,
    steps: usize,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            max_k: None,
            ks: None,
            timeout: Duration::from_secs(60),
            threads: None,
            bench: "all".to_owned(),
            run_ms: true,
            use_roles: true,
            peers: 253,
            shards: 1,
            workers: Vec::new(),
            plan: "striped".to_owned(),
            history: Vec::new(),
            halt_workers: false,
            listen: None,
            die_after: None,
            nodes: None,
            plan_spec: None,
            json: None,
            trace: None,
            k: None,
            shard: None,
            trace_spans: false,
            port: 7171,
            request: None,
            clients: 4,
            deltas: 8,
            scenario_file: None,
            cases: 100,
            seed: 0,
            out: None,
            steps: 32,
        }
    }
}

/// Parses `raw` as `T`, naming the flag and expected shape on failure.
fn typed<T: std::str::FromStr>(flag: &str, raw: &str, what: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{flag}: cannot parse {raw:?} as {what}"))
}

/// One entry of the declarative flag table: name, metavar (empty for bare
/// switches), help text, and a typed setter. The table *is* the parser and
/// the usage text — adding a flag is adding one entry.
struct FlagSpec {
    name: &'static str,
    metavar: &'static str,
    help: &'static str,
    set: fn(&mut Args, &str, &str) -> Result<(), String>,
}

static FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--max-k",
        metavar: "N",
        help: "largest fattree parameter to sweep (default 12; infer: 8)",
        set: |a, f, v| typed(f, v, "integer k").map(|k| a.max_k = Some(k)),
    },
    FlagSpec {
        name: "--ks",
        metavar: "A,B,C",
        help: "sweep exactly these fattree parameters (overrides --max-k)",
        set: |a, f, v| {
            let ks = v
                .split(',')
                .map(|part| typed::<usize>(f, part.trim(), "an integer k"))
                .collect::<Result<Vec<_>, _>>()?;
            if ks.is_empty() {
                return Err(format!("{f} requires at least one k"));
            }
            if let Some(bad) = ks.iter().find(|&&k| k < 2 || k % 2 != 0) {
                return Err(format!("{f}: fattree parameter k must be even and >= 2, got {bad}"));
            }
            a.ks = Some(ks);
            Ok(())
        },
    },
    FlagSpec {
        name: "--timeout-secs",
        metavar: "S",
        help: "per-engine solver budget in seconds (default 60)",
        set: |a, f, v| typed(f, v, "seconds").map(|s| a.timeout = Duration::from_secs(s)),
    },
    FlagSpec {
        name: "--timeout-millis",
        metavar: "M",
        help: "per-engine solver budget in milliseconds (shard protocol)",
        set: |a, f, v| typed(f, v, "milliseconds").map(|m| a.timeout = Duration::from_millis(m)),
    },
    FlagSpec {
        name: "--threads",
        metavar: "T",
        help: "worker threads for the modular checker (default: all cores)",
        set: |a, f, v| typed(f, v, "thread count").map(|t| a.threads = Some(t)),
    },
    FlagSpec {
        name: "--bench",
        metavar: "NAME",
        help: "restrict fig14 to matching benchmarks / infer to reach|len\n(export: which scenario to print)",
        set: |a, _, v| {
            a.bench = v.to_owned();
            Ok(())
        },
    },
    FlagSpec {
        name: "--scenario-file",
        metavar: "PATH",
        help: "compile PATH and register it as a scenario (fig14, serve,\ncheck, shard-worker); fig14 then sweeps it unless --bench widens",
        set: |a, _, v| {
            a.scenario_file = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--no-ms",
        metavar: "",
        help: "skip the monolithic baseline in sweeps",
        set: |a, _, _| {
            a.run_ms = false;
            Ok(())
        },
    },
    FlagSpec {
        name: "--no-roles",
        metavar: "",
        help: "infer without fattree role generalization",
        set: |a, _, _| {
            a.use_roles = false;
            Ok(())
        },
    },
    FlagSpec {
        name: "--peers",
        metavar: "N",
        help: "external peer count for the wan subcommand (default 253)",
        set: |a, f, v| typed(f, v, "peer count").map(|n| a.peers = n),
    },
    FlagSpec {
        name: "--shards",
        metavar: "N",
        help: "fork N shard-worker processes per modular sweep row\n(with --workers: shards per row, default 4x worker count;\n plan: shards to plan, default 4)",
        set: |a, f, v| {
            a.shards = typed(f, v, "shard count")?;
            if a.shards == 0 {
                return Err(format!("{f} requires at least one shard"));
            }
            Ok(())
        },
    },
    FlagSpec {
        name: "--workers",
        metavar: "LIST",
        help: "(fig14) dispatch shards over TCP to these comma-separated\n`repro worker` host:port addresses instead of forking",
        set: |a, f, v| {
            a.workers =
                v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
            if a.workers.is_empty() {
                return Err(format!("{f} requires at least one worker address"));
            }
            Ok(())
        },
    },
    FlagSpec {
        name: "--plan",
        metavar: "P",
        help: "(fig14, plan) shard plan: striped (default) or adaptive",
        set: |a, f, v| {
            if v != "striped" && v != "adaptive" {
                return Err(format!("{f}: expected striped or adaptive, got {v:?}"));
            }
            a.plan = v.to_owned();
            Ok(())
        },
    },
    FlagSpec {
        name: "--history",
        metavar: "LIST",
        help: "(fig14, plan) comma-separated fig14 --json dumps the\nadaptive cost model is fit from (none: uniform costs)",
        set: |a, _, v| {
            a.history =
                v.split(',').map(str::trim).filter(|p| !p.is_empty()).map(String::from).collect();
            Ok(())
        },
    },
    FlagSpec {
        name: "--halt-workers",
        metavar: "",
        help: "(fig14) send halt to every --workers address afterwards",
        set: |a, _, _| {
            a.halt_workers = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--listen",
        metavar: "ADDR",
        help: "(worker) TCP address to bind (default 127.0.0.1:7272)",
        set: |a, _, v| {
            a.listen = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--die-after",
        metavar: "N",
        help: "(worker) fault injection: silently drop the connection\nafter N check frames and exit nonzero",
        set: |a, f, v| typed(f, v, "check count").map(|n| a.die_after = Some(n)),
    },
    FlagSpec {
        name: "--nodes",
        metavar: "LIST",
        help: "(shard-worker) comma-separated node names to check,\noverriding the locally recomputed striped plan",
        set: |a, _, v| {
            a.nodes = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--plan-spec",
        metavar: "JSON",
        help: "(shard-worker) plan spec to record in the shard report",
        set: |a, _, v| {
            a.plan_spec = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--json",
        metavar: "PATH",
        help: "also write fig14 rows as machine-readable JSON to PATH",
        set: |a, _, v| {
            a.json = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--trace",
        metavar: "PATH",
        help: "write a Chrome trace-event JSON of the run (fig14, infer)",
        set: |a, _, v| {
            a.trace = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--k",
        metavar: "K",
        help: "(serve, export, shard-worker) fattree parameter of the instance",
        set: |a, f, v| typed(f, v, "integer k").map(|k| a.k = Some(k)),
    },
    FlagSpec {
        name: "--shard",
        metavar: "I",
        help: "(shard-worker) which shard of the plan to check",
        set: |a, f, v| typed(f, v, "shard index").map(|s| a.shard = Some(s)),
    },
    FlagSpec {
        name: "--trace-spans",
        metavar: "",
        help: "(shard-worker) collect spans and embed them in the report",
        set: |a, _, _| {
            a.trace_spans = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--port",
        metavar: "P",
        help: "(serve, ask) daemon TCP port on 127.0.0.1 (default 7171)",
        set: |a, f, v| typed(f, v, "TCP port").map(|p| a.port = p),
    },
    FlagSpec {
        name: "--request",
        metavar: "JSON",
        help: "(ask) raw request frame to send (default: status)",
        set: |a, _, v| {
            a.request = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--clients",
        metavar: "N",
        help: "(soak) concurrent client threads (default 4)",
        set: |a, f, v| {
            a.clients = typed(f, v, "client count")?;
            if a.clients == 0 {
                return Err(format!("{f} requires at least one client"));
            }
            Ok(())
        },
    },
    FlagSpec {
        name: "--deltas",
        metavar: "M",
        help: "(soak) deltas each client streams (default 8)",
        set: |a, f, v| typed(f, v, "deltas per client").map(|d| a.deltas = d),
    },
    FlagSpec {
        name: "--cases",
        metavar: "N",
        help: "(fuzz) random cases to run (default 100)",
        set: |a, f, v| typed(f, v, "case count").map(|c| a.cases = c),
    },
    FlagSpec {
        name: "--seed",
        metavar: "S",
        help: "(fuzz) RNG seed; the same seed replays the same cases",
        set: |a, f, v| typed(f, v, "integer seed").map(|s| a.seed = s),
    },
    FlagSpec {
        name: "--out",
        metavar: "PATH",
        help: "(fuzz) directory for minimal failing scenarios (default .)\n(export) file to write instead of stdout",
        set: |a, _, v| {
            a.out = Some(v.to_owned());
            Ok(())
        },
    },
    FlagSpec {
        name: "--steps",
        metavar: "N",
        help: "(check, fuzz) simulation step bound (default 32)",
        set: |a, f, v| typed(f, v, "step count").map(|s| a.steps = s),
    },
];

/// The usage text: the subcommand table plus a flags section generated from
/// [`FLAGS`], so the two can never drift apart.
fn usage() -> String {
    let mut out = String::from(USAGE_HEAD);
    out.push('\n');
    for flag in FLAGS {
        let lhs = if flag.metavar.is_empty() {
            flag.name.to_owned()
        } else {
            format!("{} {}", flag.name, flag.metavar)
        };
        for (i, line) in flag.help.lines().enumerate() {
            if i == 0 {
                out.push_str(&format!("  {lhs:<18} {line}\n"));
            } else {
                out.push_str(&format!("  {:<18} {line}\n", ""));
            }
        }
    }
    out.pop();
    out
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let spec = FLAGS
            .iter()
            .find(|s| s.name == flag.as_str())
            .ok_or_else(|| format!("unknown flag {flag:?}"))?;
        if spec.metavar.is_empty() {
            (spec.set)(&mut args, spec.name, "")?;
        } else {
            let value = it
                .next()
                .ok_or_else(|| format!("{} requires a value ({})", spec.name, spec.metavar))?;
            (spec.set)(&mut args, spec.name, value)?;
        }
    }
    Ok(args)
}

impl Args {
    fn max_k(&self) -> usize {
        self.max_k.unwrap_or(12)
    }
}

fn ks(args: &Args) -> Vec<usize> {
    match &args.ks {
        Some(ks) => ks.clone(),
        None => (4..=args.max_k()).step_by(4).collect(),
    }
}

/// Reads and parses the `--history` dumps the adaptive cost model fits from,
/// labelled by file stem (matching `repro trend` column headers).
fn load_history(paths: &[String]) -> Result<Vec<(String, Vec<trend::TrendPoint>)>, String> {
    paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let points = trend::parse_dump(&text).map_err(|e| format!("{path}: {e}"))?;
            let label = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
            Ok((label, points))
        })
        .collect()
}

/// The shard plan a sweep row uses: striped, or LPT packing over a cost
/// model fit from the `--history` dumps for this benchmark.
fn plan_choice(
    kind: BenchKind,
    args: &Args,
    history: &[(String, Vec<trend::TrendPoint>)],
) -> PlanChoice {
    if args.plan == "adaptive" {
        PlanChoice::Adaptive(trend::fit_cost_model(history, kind.name()))
    } else {
        PlanChoice::Striped
    }
}

/// The per-row shard count: `--shards` when given, else four shards per
/// worker in distributed mode so the steal scheduler has batches to move.
fn effective_shards(args: &Args) -> usize {
    if args.shards <= 1 && !args.workers.is_empty() {
        4 * args.workers.len()
    } else {
        args.shards
    }
}

fn sweep(
    kind: BenchKind,
    args: &Args,
    mut pool: Option<&mut CheckerPool>,
    history: &[(String, Vec<trend::TrendPoint>)],
) -> Result<Vec<Row>, String> {
    println!("\n=== Fig. {} — {} (Tp vs Ms) ===", kind.figure(), kind.name());
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "k", "nodes", "Tp total", "Tp median", "Tp p99", "Ms"
    );
    let options =
        SweepOptions { timeout: args.timeout, run_monolithic: args.run_ms, threads: args.threads };
    let mut rows = Vec::new();
    // compiled (file) scenarios have one fixed topology: one row at their
    // native size, whatever the requested grid
    let row_ks = match kind.native_k() {
        Some(native) => vec![native],
        None => ks(args),
    };
    for k in row_ks {
        let row = if !args.workers.is_empty() {
            if kind.scenario_file().is_some() {
                return Err(format!(
                    "{}: file scenarios cannot be dispatched to TCP workers (the remote \
                     `repro worker` has no copy of the file); use --shards for local \
                     subprocess sharding instead",
                    kind.name()
                ));
            }
            run_row_distributed(
                kind,
                k,
                &options,
                effective_shards(args),
                &args.workers,
                &plan_choice(kind, args, history),
                &DistOptions::default(),
            )
            .map_err(|e| format!("{} k={k}: {e}", kind.name()))?
        } else if args.shards > 1 {
            let exe = std::env::current_exe().expect("own executable path");
            run_row_sharded(kind, k, &options, args.shards, &exe, &plan_choice(kind, args, history))
        } else if let Some(pool) = pool.as_deref_mut() {
            // the persistent pool carries solver sessions across rows
            run_row_pooled(kind, k, &options, pool)
        } else {
            run_row(kind, k, &options)
        };
        println!(
            "{:>4} {:>6} {:>12} {:>12} {:>12} {:>12}",
            row.k,
            row.nodes,
            row.tp.display(),
            format!("{:.3}s", row.tp_median.as_secs_f64()),
            format!("{:.3}s", row.tp_p99.as_secs_f64()),
            row.ms.as_ref().map_or("-".to_owned(), |m| m.display()),
        );
        if let Some(balance) = &row.balance {
            println!(
                "     [{} plan] shard imbalance {:.2} (max/mean wall), steal batches {}, \
                 stolen shards {}, reassigned {}",
                balance.plan,
                balance.imbalance(),
                balance.steal_batches,
                balance.stolen_shards,
                balance.reassigned,
            );
        }
        rows.push(row);
    }
    Ok(rows)
}

/// One fig14 row in its machine-readable form.
fn row_json(kind: BenchKind, row: &Row, shards: usize) -> timepiece_sched::Json {
    use timepiece_sched::Json;
    let engine = |result: &timepiece_bench::EngineResult| {
        Json::obj([
            ("outcome", Json::str(result.outcome())),
            ("wall_secs", Json::Num(result.wall().as_secs_f64())),
        ])
    };
    let mut tp = engine(&row.tp);
    if let Json::Obj(pairs) = &mut tp {
        pairs.push(("median_secs".to_owned(), Json::Num(row.tp_median.as_secs_f64())));
        pairs.push(("p99_secs".to_owned(), Json::Num(row.tp_p99.as_secs_f64())));
        pairs.push(("shards".to_owned(), Json::from(shards)));
    }
    // the term-arena delta for this row: dedup_ratio is constructions per
    // distinct *new* term, hit_rate the share served by existing nodes
    let arena = Json::obj([
        ("new_terms", Json::from(row.arena.terms as usize)),
        ("hits", Json::from(row.arena.hits as usize)),
        ("misses", Json::from(row.arena.misses as usize)),
        ("bytes", Json::from(row.arena.bytes as usize)),
        ("hit_rate", Json::Num(row.arena.hit_rate())),
        ("dedup_ratio", Json::Num(row.arena.dedup_ratio())),
    ]);
    // the modular engine's compiled-term cache; pooled sweeps carry hits
    // over from structurally identical earlier rows
    let terms = row.terms.map_or(Json::Null, |t| {
        Json::obj([
            ("hits", Json::from(t.hits as usize)),
            ("misses", Json::from(t.misses as usize)),
            ("hit_rate", Json::Num(t.hit_rate())),
        ])
    });
    // per-class wall-time rollups: the samples `repro trend` fits adaptive
    // cost models from
    let classes = Json::Arr(
        row.classes
            .iter()
            .map(|c| {
                Json::obj([
                    ("class", Json::str(c.class.as_str())),
                    ("nodes", Json::from(c.nodes)),
                    ("total_secs", Json::Num(c.total_secs)),
                ])
            })
            .collect(),
    );
    // shard balance for sharded/distributed rows: per-shard wall times, the
    // max/mean ratio, and the steal/reassignment counters
    let balance = row.balance.as_ref().map_or(Json::Null, |b| {
        Json::obj([
            ("plan", Json::str(b.plan.as_str())),
            ("shard_secs", Json::Arr(b.shard_secs.iter().map(|&s| Json::Num(s)).collect())),
            ("imbalance", Json::Num(b.imbalance())),
            ("steal_batches", Json::from(b.steal_batches)),
            ("stolen_shards", Json::from(b.stolen_shards)),
            ("reassigned", Json::from(b.reassigned)),
        ])
    });
    Json::obj([
        ("bench", Json::str(kind.name())),
        ("figure", Json::str(kind.figure())),
        ("k", Json::from(row.k)),
        ("nodes", Json::from(row.nodes)),
        ("tp", tp),
        ("ms", row.ms.as_ref().map_or(Json::Null, engine)),
        ("arena", arena),
        ("term_cache", terms),
        ("classes", classes),
        ("balance", balance),
    ])
}

fn fig1(args: &Args) -> Result<(), String> {
    // Fig. 1: connectivity with external route announcements — the Hijack
    // policy is the evaluation's benchmark with exactly that shape.
    println!("=== Fig. 1 — modular vs monolithic verification time ===");
    println!("(SpHijack: fattree connectivity with symbolic external announcements)");
    let history = load_history(&args.history)?;
    sweep(BenchKind::parse("SpHijack").expect("registered"), args, None, &history).map(|_| ())
}

fn fig3() {
    println!("=== Fig. 3 — running example simulation ===");
    let ex = RunningExample::new();
    let mut env = Env::new();
    env.bind(EXTERNAL_ROUTE_VAR, ex.no_route());
    let trace = timepiece_sim::simulate(&ex.network, &env, 16).expect("simulates");
    print!("{:>4}", "time");
    for v in ex.network.topology().nodes() {
        print!(" {:>28}", ex.network.topology().name(v));
    }
    println!();
    for t in 0..=4 {
        print!("{t:>4}");
        for v in ex.network.topology().nodes() {
            print!(" {:>28}", trace.state(v, t).to_string());
        }
        println!();
    }
    println!("paper: stabilizes at time 3; measured: converged at t = {:?}", trace.converged_at());
}

fn fig13() {
    println!("=== Fig. 13 — example 4-fattree with Vf down-edge tagging ===");
    let ft = FatTree::new(4);
    for v in ft.topology().nodes() {
        let succs: Vec<String> = ft
            .topology()
            .succs(v)
            .iter()
            .map(|&u| {
                let marker = if ft.is_down_edge(v, u) { "↓" } else { "↑" };
                format!("{}{marker}", ft.topology().name(u))
            })
            .collect();
        println!("  {:>9} -> {}", ft.topology().name(v), succs.join(", "));
    }
    println!(
        "(nodes: {} = 1.25k², directed edges: {} = k³; ↓ edges add the `down` community)",
        ft.topology().node_count(),
        ft.topology().edge_count()
    );
}

fn table1() {
    println!("=== Table 1 — ghost-state property encodings ===");
    let check = |inst: &timepiece_nets::BenchInstance| {
        ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .expect("encodes")
            .is_verified()
    };
    let rows: [(&str, &str, bool, bool); 4] = [
        (
            "isolation",
            "1 bit per isolation domain",
            check(&ghost::isolation(true)),
            !check(&ghost::isolation(false)),
        ),
        (
            "unordered waypoint",
            "k bits for k waypoints",
            check(&ghost::unordered_waypoints(false)),
            !check(&ghost::unordered_waypoints(true)),
        ),
        (
            "no-transit",
            "mark with {peer, prov, cust}",
            check(&ghost::no_transit(false)),
            !check(&ghost::no_transit(true)),
        ),
        (
            "fault tolerance",
            "1 symbolic bit per tracked edge",
            check(&ghost::fault_tolerance(false)),
            !check(&ghost::fault_tolerance(true)),
        ),
    ];
    println!("{:<20} {:<34} {:>9} {:>12}", "property", "ghost state", "verified", "bug caught");
    for (name, state, ok, caught) in rows {
        println!("{name:<20} {state:<34} {ok:>9} {caught:>12}");
    }
    println!("(reachability-origin bit: see `repro keyideas` Fig. 10; bounded length: Fig. 14b)");
}

fn table2() {
    println!("=== Table 2 — lines of code per benchmark definition ===");
    println!(
        "{:<18} {:>12} {:>14} {:>13}   (paper C# values in parentheses)",
        "benchmark", "network LoC", "interface LoC", "property LoC"
    );
    for (row, (pname, pn, pi, pp)) in loc::table2().iter().zip(loc::PAPER_TABLE2) {
        assert_eq!(row.benchmark, pname);
        println!(
            "{:<18} {:>8} ({pn:>3}) {:>9} ({pi:>3}) {:>8} ({pp:>3})",
            row.benchmark, row.network, row.interface, row.property
        );
    }
}

fn table3() {
    println!("=== Table 3 — eBGP route fields modelled in SMT ===");
    let schema = timepiece_nets::bgp::BgpSchema::new(["down"], ["tag"]);
    println!("{:<28} {:<24}", "route field", "modelled type in SMT");
    for (name, ty) in schema.record_def().fields() {
        let smt_ty = match ty {
            timepiece_expr::Type::BitVec(w) => format!("bitvector({w})"),
            timepiece_expr::Type::Int => "integer".to_owned(),
            timepiece_expr::Type::Enum(d) => format!("enum {{{}}}", d.variants().join(", ")),
            timepiece_expr::Type::Set(d) => {
                format!("set over {} tags (bitvector)", d.universe().len())
            }
            timepiece_expr::Type::Bool => "boolean (ghost)".to_owned(),
            other => other.to_string(),
        };
        println!("{name:<28} {smt_ty:<24}");
    }
}

fn wan(args: &Args) {
    println!("=== §6 WAN — BlockToExternal on synthetic Internet2 ===");
    let bench = WanBench::with_peers(7, args.peers);
    let inst = bench.build();
    println!(
        "{} internal + {} peers, ~{} policy terms",
        bench.wan().internal_nodes().count(),
        bench.wan().external_nodes().count(),
        bench.policy_term_count()
    );
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    let report = checker.check(&inst.network, &inst.interface, &inst.property).expect("encodes");
    let stats = report.stats();
    println!(
        "modular:    verified = {} wall = {:.2}s median = {:.3}s p99 = {:.3}s",
        report.is_verified(),
        report.wall().as_secs_f64(),
        stats.median.as_secs_f64(),
        stats.p99.as_secs_f64(),
    );
    println!("            (paper: 38.3 s total, 0.6 s median, 4.2 s p99 on a 6-core laptop)");
    let mono =
        check_monolithic(&inst.network, &inst.property, Some(args.timeout)).expect("encodes");
    println!(
        "monolithic: outcome = {} wall = {:.2}s   (paper: no result within 2 h)",
        if mono.outcome.is_verified() { "verified" } else { "timeout/failed" },
        mono.wall.as_secs_f64(),
    );
}

fn keyideas() {
    println!("=== §2 key ideas — Figs. 4–10 on the running example ===");
    let ex = RunningExample::new();
    let checker = ModularChecker::new(CheckOptions::default());
    let verify = |a: &timepiece_core::NodeAnnotations, p: &timepiece_core::NodeAnnotations| {
        checker.check(&ex.network, a, p).expect("encodes").is_verified()
    };
    println!(
        "Fig. 7  tagging interfaces verify 'e's routes are tagged':        {}",
        verify(&ex.tagging_interfaces(), &ex.tagging_property())
    );
    println!(
        "Fig. 8  timed interfaces verify 'e eventually reaches w':        {}",
        verify(&ex.reachability_interfaces(), &ex.reachability_property())
    );
    let bad = ex.bad_interfaces(false);
    println!(
        "Fig. 4/9 bad interfaces accepted by unsound strawperson (SV):     {}",
        check_strawperson(&ex.network, &bad).expect("encodes").is_empty()
    );
    println!(
        "Fig. 9  bad interfaces rejected by Timepiece (initial cond.):     {}",
        !verify(&bad, &ex.tagging_property())
    );
    println!(
        "Fig. 9  patched (∨ s=∞) still rejected (inductive cond.):        {}",
        !verify(&ex.bad_interfaces(true), &ex.tagging_property())
    );
    println!(
        "Fig. 10 ghost interfaces verify 'e's route originated at w':      {}",
        verify(&ex.ghost_interfaces(), &ex.ghost_property())
    );
}

/// The scenarios a `--bench` spec selects (all of them for `all`).
fn select_kinds(bench: &str) -> Result<Vec<BenchKind>, String> {
    if bench.eq_ignore_ascii_case("all") {
        return Ok(BenchKind::all().collect());
    }
    let spec = bench.to_lowercase();
    let kinds: Vec<BenchKind> =
        BenchKind::all().filter(|k| k.name().to_lowercase().contains(&spec)).collect();
    if kinds.is_empty() {
        return Err(unknown_bench(bench));
    }
    Ok(kinds)
}

/// Drains the collected spans and writes them as a Chrome trace-event JSON
/// (one track per worker thread / shard process), with the metrics
/// registry's snapshot attached under `otherData`.
fn write_trace(path: &str) {
    use timepiece_sched::Json;
    let trace = timepiece_trace::take();
    let spans = trace.spans.len();
    let mut doc = timepiece_trace::chrome_trace(&trace);
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("otherData".to_owned(), timepiece_trace::metrics_json()));
    }
    std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path} ({spans} spans)");
}

fn fig14(args: &Args) -> Result<(), String> {
    let file_kind = load_scenario_file(args)?;
    let kinds = match file_kind {
        // a file scenario with an unrestricted --bench means "sweep the
        // file"; an explicit --bench can still widen or re-select
        Some(kind) if args.bench == "all" => vec![kind],
        _ => select_kinds(&args.bench)?,
    };
    let history = load_history(&args.history)?;
    if args.trace.is_some() {
        timepiece_trace::enable();
    }
    // one persistent checker pool for the whole sweep: rows of every size
    // (and every scenario sharing an IR signature) reuse solver sessions
    let mut pool = (args.shards <= 1 && args.workers.is_empty()).then(|| {
        CheckerPool::with_default_parallelism(CheckOptions {
            timeout: Some(args.timeout),
            threads: args.threads,
            ..CheckOptions::default()
        })
    });
    let shards = effective_shards(args);
    let mut rows = Vec::new();
    for kind in kinds {
        for row in sweep(kind, args, pool.as_mut(), &history)? {
            rows.push(row_json(kind, &row, shards));
        }
    }
    if let Some(path) = &args.json {
        use timepiece_sched::Json;
        let doc = Json::obj([
            ("timeout_secs", Json::Num(args.timeout.as_secs_f64())),
            ("shards", Json::from(shards)),
            ("rows", Json::Arr(rows)),
        ]);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.trace {
        write_trace(path);
    }
    if args.halt_workers && !args.workers.is_empty() {
        for warning in halt_workers(&args.workers) {
            eprintln!("halt: {warning}");
        }
    }
    Ok(())
}

/// The `repro arena` subcommand: per-row interning traffic, then the
/// process-wide arena summary. Rows run through one persistent checker
/// pool, so the compiled-term column shows cross-row reuse directly.
fn arena_cmd(args: &Args) -> Result<(), String> {
    use timepiece_expr::arena;
    let kinds = select_kinds(&args.bench)?;
    println!("=== term arena — interning and compiled-term traffic per row ===");
    println!("(arena columns are per-row deltas; `dedup` is constructions per new term;");
    println!(" `tc hit%` is the persistent pool's compiled-term cache, warm across rows)");
    println!(
        "{:>9} {:>3} {:>6} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "bench", "k", "nodes", "new terms", "constructed", "arena hit%", "dedup", "kB", "tc hit%"
    );
    let options =
        SweepOptions { timeout: args.timeout, run_monolithic: false, threads: args.threads };
    let mut pool = CheckerPool::with_default_parallelism(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    for kind in kinds {
        for k in ks(args) {
            let row = run_row_pooled(kind, k, &options, &mut pool);
            println!(
                "{:>9} {:>3} {:>6} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
                kind.name(),
                row.k,
                row.nodes,
                row.arena.terms,
                row.arena.constructed(),
                format!("{:.1}", 100.0 * row.arena.hit_rate()),
                format!("{:.1}x", row.arena.dedup_ratio()),
                row.arena.bytes / 1024,
                row.terms.map_or("-".to_owned(), |t| format!("{:.1}", 100.0 * t.hit_rate())),
            );
        }
    }
    let total = arena::stats();
    println!(
        "\narena lifetime: {} distinct terms (~{} kB retained), {} constructions, \
         hit rate {:.1}%, dedup {:.1}x",
        total.terms,
        total.bytes / 1024,
        total.constructed(),
        100.0 * total.hit_rate(),
        total.dedup_ratio(),
    );
    Ok(())
}

/// The `repro profile` subcommand: run sweep rows with tracing on and print
/// the phase-attributed breakdown — self-time shares per phase, per-class
/// rollups, and slowest-node attribution — instead of writing a trace file.
fn profile_cmd(args: &Args) -> Result<(), String> {
    use timepiece_trace::{Phase, Profile};
    let kinds = select_kinds(&args.bench)?;
    timepiece_trace::enable();
    println!("=== repro profile — phase-attributed breakdown per sweep row ===");
    println!("(phase columns are self-time shares of the traced work; `intern` is the");
    println!(" arena counter — it overlaps encode, so it reports beside the shares, not");
    println!(" inside them; `other` folds node bookkeeping, rounds and simulation)");
    let options =
        SweepOptions { timeout: args.timeout, run_monolithic: false, threads: args.threads };
    let mut pool = CheckerPool::with_default_parallelism(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    for kind in kinds {
        println!("\n--- {} ---", kind.name());
        println!(
            "{:>4} {:>6} {:>9} {:>8} {:>8} {:>11} {:>8} {:>9}",
            "k", "nodes", "wall", "encode", "solve", "steal-idle", "other", "intern"
        );
        for k in ks(args) {
            let intern_before = timepiece_trace::metrics::counter_value("expr.arena.intern_ns");
            // drop spans left over from the previous row so each profile
            // covers exactly one row's work
            let _ = timepiece_trace::take();
            let row = run_row_pooled(kind, k, &options, &mut pool);
            let trace = timepiece_trace::take();
            let intern_ns = timepiece_trace::metrics::counter_value("expr.arena.intern_ns")
                .saturating_sub(intern_before);
            let profile = Profile::from_trace(&trace, intern_ns);
            let accounted = profile.accounted_ns().max(1);
            let pct = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / accounted as f64);
            let other = profile.phase_ns(Phase::Other)
                + profile.phase_ns(Phase::Round)
                + profile.phase_ns(Phase::Sim);
            println!(
                "{:>4} {:>6} {:>9} {:>8} {:>8} {:>11} {:>8} {:>9}",
                row.k,
                row.nodes,
                format!("{:.2}s", row.tp.wall().as_secs_f64()),
                pct(profile.phase_ns(Phase::Encode)),
                pct(profile.phase_ns(Phase::Solve)),
                pct(profile.phase_ns(Phase::Idle)),
                pct(other),
                format!("{:.0}ms", intern_ns as f64 / 1e6),
            );
            for class in &profile.classes {
                println!(
                    "       {:<14} {:>4} nodes   total {:>8}   encode {:>8}   solve {:>8}",
                    if class.class.is_empty() { "(unclassed)" } else { class.class.as_str() },
                    class.nodes,
                    format!("{:.3}s", class.total_ns as f64 / 1e9),
                    format!("{:.3}s", class.encode_ns as f64 / 1e9),
                    format!("{:.3}s", class.solve_ns as f64 / 1e9),
                );
            }
            for node in profile.nodes.iter().take(3) {
                println!(
                    "       slowest: {:<12} class {:<12} total {:>8}  solve {:>8}  {}",
                    node.name,
                    if node.class.is_empty() { "-" } else { node.class.as_str() },
                    format!("{:.3}s", node.total_ns as f64 / 1e9),
                    format!("{:.3}s", node.solve_ns as f64 / 1e9),
                    node.verdict,
                );
            }
        }
    }
    timepiece_trace::disable();
    Ok(())
}

/// An unknown-benchmark error that names what *is* registered — and how to
/// bring a new scenario into the registry.
fn unknown_bench(given: &str) -> String {
    format!(
        "unknown benchmark {given:?}; registered benchmarks: {} \
         (or load a file scenario with --scenario-file PATH)",
        BenchKind::names().join(", ")
    )
}

/// Compiles and registers `--scenario-file` (when given), returning its
/// registry handle. Every subcommand that takes the flag funnels through
/// here, so diagnostics render identically everywhere.
fn load_scenario_file(args: &Args) -> Result<Option<BenchKind>, String> {
    match &args.scenario_file {
        None => Ok(None),
        Some(path) => timepiece_bench::register_scenario_file(path)
            .map(Some)
            .map_err(|e| format!("--scenario-file {path}: {e}")),
    }
}

/// Prints per-benchmark wall-time trajectories over accumulated `--json`
/// dumps (oldest first).
fn trend_cmd(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err("trend requires at least one --json dump path".to_owned());
    }
    let mut dumps = Vec::new();
    let mut labels = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        dumps.push(trend::parse_dump(&text).map_err(|e| format!("{path}: {e}"))?);
        // column headers are the file stems, so long paths don't skew the table
        labels.push(
            std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned()),
        );
    }
    println!("=== bench trajectories over {} dump(s) ===", dumps.len());
    print!("{}", trend::render(&labels, &dumps));
    // only sharded/distributed history carries per-shard wall times
    if let Some(table) = trend::render_balance(&labels, &dumps) {
        println!();
        print!("{table}");
    }
    Ok(())
}

/// The benchmark `serve`/`soak` run when `--bench` is unrestricted: soaking
/// all thirteen scenarios is a sweep, not a service, so the daemon commands
/// default to the canonical reachability one — or to the `--scenario-file`
/// when one is loaded.
fn daemon_bench(args: &Args) -> Result<BenchKind, String> {
    if let Some(kind) = load_scenario_file(args)? {
        if args.bench == "all" {
            return Ok(kind);
        }
    }
    let name = if args.bench == "all" { "SpReach" } else { args.bench.as_str() };
    BenchKind::parse(name).ok_or_else(|| format!("--bench: {}", unknown_bench(name)))
}

/// The `repro serve` subcommand: start `timepieced` warm on one fattree
/// instance and serve until `shutdown` or SIGTERM drains it.
fn serve_cmd(args: &Args) -> Result<(), String> {
    let kind = daemon_bench(args)?;
    let k = kind.native_k().or(args.k).unwrap_or(4);
    let label = format!("{} k={k}", kind.name());
    eprintln!("compiling {label} and running the warm-up check...");
    let options = CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        session_cap: Some(64),
        ..CheckOptions::default()
    };
    let state = DaemonState::new(label, fattree_instance(kind, k), options)
        .map_err(|e| format!("warm-up check failed: {e}"))?;
    let listener = std::net::TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| format!("binding 127.0.0.1:{}: {e}", args.port))?;
    let addr = listener.local_addr().map_err(|e| format!("local address: {e}"))?;
    spawn_sigterm_watcher(state.drain());
    // the smoke test and scripts wait for this line before connecting
    println!("timepieced listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve(listener, state).map_err(|e| format!("serve: {e}"))
}

/// The `repro ask` subcommand: one request to a running daemon, reply on
/// stdout. Without `--request` it sends `status`.
fn ask_cmd(args: &Args) -> Result<(), String> {
    let mut client = Client::connect(("127.0.0.1", args.port))
        .map_err(|e| format!("connecting to 127.0.0.1:{}: {e}", args.port))?;
    let reply = match &args.request {
        Some(raw) => {
            let frame = timepiece_sched::Json::parse(raw).map_err(|e| format!("--request: {e}"))?;
            client.request(&frame)
        }
        None => client.send(&Request::Status),
    }
    .map_err(|e| format!("request failed: {e}"))?;
    println!("{reply}");
    Ok(())
}

/// The `repro soak` subcommand: measure a warm daemon under concurrent
/// delta streams, one row per fattree size.
fn soak_cmd(args: &Args) -> Result<(), String> {
    let kind = daemon_bench(args)?;
    let options = SoakOptions {
        clients: args.clients,
        deltas_per_client: args.deltas,
        timeout: args.timeout,
        threads: args.threads,
        ..SoakOptions::default()
    };
    println!("=== repro soak — {} under concurrent delta streams ===", kind.name());
    println!(
        "({} clients x {} deltas each; cold full-check baseline and single-edge \
         link-down probe per row)",
        args.clients, args.deltas
    );
    println!(
        "{:>4} {:>6} {:>10} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8} {:>5}",
        "k", "nodes", "cold", "cone", "cone%", "probe", "speedup", "p50", "p95", "avgcone", "err"
    );
    let mut rows = Vec::new();
    // the soak grid defaults to the recorded EXPERIMENTS.md sizes
    let ks = args.ks.clone().unwrap_or_else(|| vec![4, 6, 8]);
    for k in ks {
        let r = run_soak(kind, k, &options);
        println!(
            "{:>4} {:>6} {:>10} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8} {:>5}",
            r.k,
            r.nodes,
            format!("{:.0}ms", r.baseline_full_ms),
            r.probe_cone,
            format!("{:.0}%", 100.0 * r.probe_cone_frac()),
            format!("{:.0}ms", r.probe_ms),
            format!("{:.1}x", r.probe_speedup()),
            format!("{:.0}ms", r.p50_ms),
            format!("{:.0}ms", r.p95_ms),
            format!("{:.1}", r.mean_cone),
            r.storm_errors,
        );
        rows.push(r.to_json());
    }
    if let Some(path) = &args.json {
        use timepiece_sched::Json;
        let doc = Json::obj([
            ("soak", Json::Bool(true)),
            ("clients", Json::from(args.clients)),
            ("deltas_per_client", Json::from(args.deltas)),
            ("timeout_secs", Json::Num(args.timeout.as_secs_f64())),
            ("rows", Json::Arr(rows)),
        ]);
        std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// The (internal) shard-worker entrypoint: check one shard of one instance
/// and print the JSON report on stdout.
fn shard_worker(args: &Args) -> Result<(), String> {
    if args.trace_spans {
        // the coordinator asked for spans: collect them and let `run_shard`
        // embed the drained trace in the report
        timepiece_trace::enable();
    }
    // a coordinator sharding a file scenario ships the path; recompile it
    // into this process's registry before resolving --bench
    load_scenario_file(args)?;
    let bench = BenchKind::parse(&args.bench)
        .ok_or_else(|| format!("--bench: {}", unknown_bench(&args.bench)))?;
    let k = args.k.ok_or("shard-worker requires --k")?;
    let shard = args.shard.ok_or("shard-worker requires --shard")?;
    if args.shards <= shard {
        return Err(format!("--shard {shard} out of range for --shards {}", args.shards));
    }
    let options =
        SweepOptions { timeout: args.timeout, run_monolithic: false, threads: args.threads };
    let report = match &args.nodes {
        // explicit node list from the coordinator: check exactly these
        // nodes and record the plan spec that produced them, so the report
        // replays deterministically
        Some(list) => {
            let inst = fattree_instance(bench, k);
            let topology = inst.network.topology();
            let mut nodes = Vec::new();
            for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                let v = topology
                    .node_by_name(name)
                    .ok_or_else(|| format!("--nodes: unknown node {name:?}"))?;
                nodes.push(v);
            }
            let spec = match &args.plan_spec {
                Some(raw) => {
                    let value = timepiece_sched::Json::parse(raw)
                        .map_err(|e| format!("--plan-spec: {e}"))?;
                    PlanSpec::from_json(&value).map_err(|e| format!("--plan-spec: {e}"))?
                }
                None => PlanSpec::striped(),
            };
            run_shard_nodes(bench, k, shard, args.shards, spec, &nodes, &options)
        }
        // legacy protocol: recompute the striped plan locally
        None => run_shard(bench, k, shard, args.shards, &options),
    };
    println!("{}", report.to_json());
    Ok(())
}

/// The `repro worker` subcommand: serve shard checks over TCP until a
/// coordinator sends `halt`. `--die-after N` arms the documented dead-worker
/// fault: the process drops the connection after N checks and exits nonzero,
/// so the reassignment drill in CI looks like a crashed host.
fn worker_cmd(args: &Args) -> Result<(), String> {
    let listen = args.listen.clone().unwrap_or_else(|| "127.0.0.1:7272".to_owned());
    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("local address: {e}"))?;
    // scripts wait for this line before pointing a coordinator here
    println!("repro worker listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let options = WorkerOptions { max_sessions: None, die_after: args.die_after };
    match run_worker(listener, &options).map_err(|e| format!("worker: {e}"))? {
        WorkerExit::Died => {
            eprintln!("worker: --die-after fault fired, exiting uncleanly");
            std::process::exit(17);
        }
        WorkerExit::Halted | WorkerExit::SessionLimit => Ok(()),
    }
}

/// The `repro plan` subcommand: print the striped and adaptive shard plans
/// for one instance — per-shard node lists, predicted per-shard seconds and
/// the predicted max/mean imbalance — without checking anything.
fn plan_cmd(args: &Args) -> Result<(), String> {
    let kind = daemon_bench(args)?;
    let k = args.k.unwrap_or(4);
    let shards = if args.shards > 1 { args.shards } else { 4 };
    let history = load_history(&args.history)?;
    let model = trend::fit_cost_model(&history, kind.name());
    let inst = fattree_instance(kind, k);
    let topology = inst.network.topology();
    println!(
        "=== shard plans — {} k={k}: {} nodes over {shards} shards ===",
        kind.name(),
        topology.node_count()
    );
    if model.is_uniform() {
        println!("cost model: uniform (no class samples in --history; LPT balances sizes)");
    } else {
        let costs: Vec<String> =
            model.classes().map(|(class, secs)| format!("{class}={secs:.3}s/node")).collect();
        println!("cost model: {} (fit from: {})", costs.join(", "), model.sources().join(", "));
    }
    for (label, choice) in
        [("striped", PlanChoice::Striped), ("adaptive", PlanChoice::Adaptive(model.clone()))]
    {
        let (plan, _spec, predicted) = plan_row(topology, shards, &choice);
        println!(
            "\n--- {label} plan (predicted imbalance {:.2}) ---",
            timepiece_sched::cost::imbalance(&predicted)
        );
        for (shard, secs) in predicted.iter().enumerate() {
            let names: Vec<&str> = plan.nodes_of(shard).iter().map(|&v| topology.name(v)).collect();
            println!(
                "  shard {shard}: {} nodes, predicted {secs:.3}s: {}",
                names.len(),
                names.join(", ")
            );
        }
    }
    Ok(())
}

/// One inference run: build the property-only spec, infer, verify, and
/// compare against the hand-written interface of the same benchmark.
fn infer_row(kind: BenchKind, k: usize, args: &Args) {
    use timepiece_infer::{InferOptions, InferenceEngine, RoleMap};

    let name = kind.name();
    let setup = kind.infer_setup(k).expect("caller filtered for inference support");
    let (spec, instance, fattree, dest) = (setup.spec, setup.instance, setup.fattree, setup.dest);
    let roles = if args.use_roles {
        RoleMap::fattree(&fattree, dest)
    } else {
        RoleMap::singleton(fattree.topology())
    };
    // templates are indexed by role; keep the node → role mapping for the
    // quality comparison below
    let node_role = roles.clone();
    let engine = InferenceEngine::new(InferOptions {
        check: CheckOptions {
            timeout: Some(args.timeout),
            threads: args.threads,
            ..CheckOptions::default()
        },
        ..InferOptions::default()
    });
    let result = engine
        .infer(&spec.network, &spec.property, roles, &[Env::new()])
        .expect("benchmark specs simulate and encode");
    let report = &result.report;

    // hand-written comparison: same property, same checker options
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    let hand_start = std::time::Instant::now();
    let hand = checker
        .check(&instance.network, &instance.interface, &instance.property)
        .expect("hand-written interfaces encode");
    let hand_wall = hand_start.elapsed();

    // annotation quality: how many nodes got exactly the paper's witness time
    let tau_matches = fattree
        .topology()
        .nodes()
        .filter(|&v| report.role_templates[node_role.role_of(v)].tau == fattree.dist(v, dest))
        .count();
    println!(
        "{:>8} {:>3} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10}",
        name,
        k,
        fattree.topology().node_count(),
        if report.verified { "yes" } else { "NO" },
        report.rounds,
        report.total_repairs(),
        format!("{:.2}s", report.wall.as_secs_f64()),
        format!("{:.2}s", hand_wall.as_secs_f64()),
        format!("{tau_matches}/{}", fattree.topology().node_count()),
        if hand.is_verified() { "yes" } else { "NO" },
    );
}

fn infer(args: &Args) -> Result<(), String> {
    if args.trace.is_some() {
        timepiece_trace::enable();
    }
    println!("=== timepiece-infer — interfaces from simulation, repaired by CEGIS ===");
    println!(
        "(property-only specs; role generalization {}; {} templates per instance)",
        if args.use_roles { "on" } else { "off" },
        if args.use_roles { "6" } else { "1.25k²" },
    );
    println!(
        "{:>8} {:>3} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "bench",
        "k",
        "nodes",
        "verified",
        "rounds",
        "repairs",
        "infer+chk",
        "hand chk",
        "τ match",
        "hand ok"
    );
    let spec = args.bench.to_lowercase();
    let benches: Vec<BenchKind> = BenchKind::all()
        .filter(BenchKind::supports_inference)
        .filter(|b| spec == "all" || b.name().to_lowercase().contains(&spec))
        .collect();
    if benches.is_empty() {
        let supported: Vec<&str> =
            BenchKind::all().filter(BenchKind::supports_inference).map(|k| k.name()).collect();
        return Err(format!(
            "no inference benchmark matches {spec:?}; scenarios with inference support: {}",
            supported.join(", ")
        ));
    }
    // `--ks` overrides the default grid here exactly as it does in sweeps
    // (inference defaults to steps of 2 where fig14 uses 4)
    let ks = args.ks.clone().unwrap_or_else(|| (4..=args.max_k.unwrap_or(8)).step_by(2).collect());
    for kind in benches {
        for &k in &ks {
            infer_row(kind, k, args);
        }
    }
    if let Some(path) = &args.trace {
        write_trace(path);
    }
    Ok(())
}

/// The `repro fuzz` subcommand: random scenarios through the three policy
/// evaluators, failures shrunk and written to disk as replayable scenario
/// files. Exits nonzero on any disagreement.
fn fuzz_cmd(args: &Args) -> Result<(), String> {
    let options = timepiece_scenario::FuzzOptions {
        cases: args.cases,
        seed: args.seed,
        sabotage: None,
        out_dir: Some(args.out.clone().unwrap_or_else(|| ".".to_owned())),
        max_steps: args.steps,
        z3_checks: 2,
    };
    println!("=== repro fuzz — differential fuzzing of the policy evaluators ===");
    println!(
        "({} cases, seed {}; fast-path vs interpreted full traces, plus Z3 spot checks",
        options.cases, options.seed
    );
    println!(" equating compiled policy/merge terms with direct execution)");
    let report = timepiece_scenario::run_fuzz(&options);
    if report.clean() {
        println!("all {} cases agree across the three evaluators", report.cases);
        return Ok(());
    }
    for failure in &report.failures {
        println!("case {}: {}", failure.case_index, failure.description);
        if let Some(path) = &failure.path {
            println!("  minimal scenario: {path} (replay: repro check --scenario-file {path})");
        }
    }
    Err(format!(
        "{} of {} cases found evaluator disagreements",
        report.failures.len(),
        report.cases
    ))
}

/// The `repro check` subcommand: compile one scenario file, run the
/// differential evaluator check on its network, then the modular checker on
/// its property. The replay path for `repro fuzz` failures.
fn check_cmd(args: &Args) -> Result<(), String> {
    let path = args.scenario_file.as_deref().ok_or("check requires --scenario-file PATH")?;
    let compiled = timepiece_scenario::compile_file(path).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "=== repro check — {} ({} nodes, figure {}) ===",
        compiled.name,
        compiled.network.topology().node_count(),
        compiled.figure
    );
    let env = compiled.closing_env();
    let problems =
        timepiece_scenario::fuzz::diff_network(&compiled.network, &env, args.steps, None, 2);
    for p in &problems {
        println!("discrepancy: {p}");
    }
    if problems.is_empty() {
        println!("evaluators agree on the {}-step trace", args.steps);
    }
    let inst = compiled.instance();
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(args.timeout),
        threads: args.threads,
        ..CheckOptions::default()
    });
    let report = checker
        .check(&inst.network, &inst.interface, &inst.property)
        .map_err(|e| format!("encoding failed: {e}"))?;
    if report.is_verified() {
        println!("modular verification: verified ({:.2}s)", report.wall().as_secs_f64());
    } else {
        println!("modular verification: FAILED at:");
        for f in report.failures() {
            println!("  {} ({:?})", f.node_name, f.vc);
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(format!("{} evaluator discrepancies on {path}", problems.len()))
    }
}

/// The `repro export` subcommand: print a registry scenario as a scenario
/// file — the starting point for customizing a benchmark without writing
/// Rust.
fn export_cmd(args: &Args) -> Result<(), String> {
    if args.bench == "all" {
        return Err(format!(
            "export needs one --bench NAME; registered benchmarks: {}",
            BenchKind::names().join(", ")
        ));
    }
    let kind = BenchKind::parse(&args.bench)
        .ok_or_else(|| format!("--bench: {}", unknown_bench(&args.bench)))?;
    let k = kind.native_k().or(args.k).unwrap_or(4);
    let inst = fattree_instance(kind, k);
    let text = timepiece_scenario::export_instance(kind.name(), kind.figure(), &inst, k)?;
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = argv.split_first().map(|(c, r)| (c.as_str(), r)).unwrap_or(("all", &[]));
    // trend takes positional dump paths, not flags
    if cmd == "trend" {
        if let Err(msg) = trend_cmd(rest) {
            usage_error(&msg);
        }
        return;
    }
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(msg) => usage_error(&msg),
    };
    let result = match cmd {
        "fig1" => fig1(&args),
        "fig3" => {
            fig3();
            Ok(())
        }
        "fig13" => {
            fig13();
            Ok(())
        }
        "fig14" => fig14(&args),
        "table1" => {
            table1();
            Ok(())
        }
        "table2" => {
            table2();
            Ok(())
        }
        "table3" => {
            table3();
            Ok(())
        }
        "wan" => {
            wan(&args);
            Ok(())
        }
        "keyideas" => {
            keyideas();
            Ok(())
        }
        "infer" => infer(&args),
        "arena" => arena_cmd(&args),
        "profile" => profile_cmd(&args),
        "serve" => serve_cmd(&args),
        "ask" => ask_cmd(&args),
        "soak" => soak_cmd(&args),
        "plan" => plan_cmd(&args),
        "worker" => worker_cmd(&args),
        "shard-worker" => shard_worker(&args),
        "fuzz" => fuzz_cmd(&args),
        "check" => check_cmd(&args),
        "export" => export_cmd(&args),
        "all" => {
            fig3();
            fig13();
            keyideas();
            table1();
            table2();
            table3();
            fig1(&args).and_then(|()| fig14(&args)).map(|()| wan(&args))
        }
        other => usage_error(&format!("unknown subcommand {other:?}")),
    };
    if let Err(msg) = result {
        usage_error(&msg);
    }
}
