//! Distributed sharded verification over TCP.
//!
//! `repro fig14 --shards N` forks workers on one box; this module is the
//! next scaling rung: a **coordinator** drives `repro worker --listen`
//! processes on other hosts over TCP, reusing the NDJSON framing the rest
//! of the pipeline already speaks ([`timepiece_trace::json`]) and the
//! [`ShardReport`] protocol of the forked path — the coordinator cannot
//! tell a remote worker's report from a forked one, so the merge,
//! coverage-proof and replay machinery is shared.
//!
//! # Wire protocol
//!
//! One TCP connection per worker per row; every frame is one JSON line:
//!
//! ```text
//! C → W   {"type":"hello", "version":1, "bench":…, "k":…, "shards":N,
//!          "plan":{…}, "timeout_millis":…, "threads":…, "trace":…,
//!          "sabotage":[…]}
//! W → C   {"type":"ready", "version":1}
//! C → W   {"type":"check", "shard":i, "nodes":["core-0",…]}
//! W → C   {"type":"progress", "shard":i}        (heartbeat, ~2.5 Hz)
//! W → C   {"type":"report", "report":{…}}       (a ShardReport)
//! C → W   {"type":"done"}                       (row over; worker re-accepts)
//! C → W   {"type":"halt"}                       (worker process exits)
//! either  {"type":"error", "detail":…}          (fatal for the session)
//! ```
//!
//! # Scheduling: batched steal-half, and death
//!
//! The coordinator seeds each worker's pending deque round-robin with shard
//! indices, then runs one dispatcher thread per worker. A dispatcher with
//! an empty deque first drains the *orphan* queue (shards returned by dead
//! workers), then **steals half** the pending deque — whole shards, back
//! half — from the most-loaded live worker, so work migrates across hosts
//! in shard-granularity batches rather than node-at-a-time chatter.
//!
//! Liveness is the read timeout: a checking worker heartbeats `progress`
//! frames from its connection thread while the solver runs, so the only
//! way a coordinator read blocks past [`DistOptions::liveness`] is a dead
//! or wedged peer. *Any* read failure marks the worker dead and requeues
//! its in-flight shard plus pending deque as orphans; the sweep completes
//! as long as one worker survives.

use std::collections::VecDeque;
use std::fmt;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use timepiece_core::check::CheckOptions;
use timepiece_core::stats::TimingStats;
use timepiece_core::sweep::CheckerPool;
use timepiece_core::Temporal;
use timepiece_sched::json::{read_line_value, write_line_value, MAX_LINE_BYTES};
use timepiece_sched::{CancelToken, Json};
use timepiece_trace::Phase;

use crate::runner::{
    class_samples, fattree_instance, monolithic_result, BenchKind, EngineResult, Row, RowBalance,
    SweepOptions,
};
use crate::shard::{
    merge_reports, plan_row, MergeError, PlanChoice, PlanSpec, ShardReport, PROTOCOL_VERSION,
};

/// How often a checking worker emits `progress` heartbeats.
const HEARTBEAT: Duration = Duration::from_millis(400);

/// How long an idle dispatcher naps before re-polling the queues for
/// orphans when other dispatchers still have shards in flight.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Coordinator-side options for one distributed row.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Declare a worker dead when a read from it blocks this long. Workers
    /// heartbeat at ~2.5 Hz while checking, so this bounds death-detection
    /// latency, not check time.
    pub liveness: Duration,
    /// Names of nodes whose interface every worker replaces with a
    /// never-holds-a-route annotation — documented fault injection, so the
    /// equivalence tests can compare failing-node sets across the wire.
    pub sabotage: Vec<String>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions { liveness: Duration::from_secs(5), sabotage: Vec::new() }
    }
}

/// Worker-side options for [`run_worker`].
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Serve at most this many coordinator connections, then return
    /// (`None`: serve until halted). Tests use this as a backstop.
    pub max_sessions: Option<usize>,
    /// Fault injection for the dead-worker drills: after receiving this
    /// many `check` frames (across the process lifetime), drop the
    /// connection on the next one without replying and return
    /// [`WorkerExit::Died`] — from the coordinator the death is
    /// indistinguishable from a crashed host.
    pub die_after: Option<usize>,
}

/// Why [`run_worker`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// A coordinator sent `halt`.
    Halted,
    /// [`WorkerOptions::max_sessions`] was reached.
    SessionLimit,
    /// The [`WorkerOptions::die_after`] fault fired.
    Died,
}

/// Why a distributed row failed. Worker-attributable variants name the
/// worker by its address, so a broken host in a fleet is identifiable from
/// the error alone.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// No worker could be reached at all.
    NoWorkers {
        /// The per-address connection failures.
        detail: String,
    },
    /// A connected worker sent a fatal `error` frame (version mismatch,
    /// unknown benchmark, unknown node …).
    Worker {
        /// The worker's address.
        worker: String,
        /// What it reported.
        detail: String,
    },
    /// The surviving workers' reports did not merge into a full row —
    /// including the case where every worker died and shards are missing.
    Merge(MergeError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NoWorkers { detail } => write!(f, "no workers reachable: {detail}"),
            DistError::Worker { worker, detail } => write!(f, "worker {worker}: {detail}"),
            DistError::Merge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<MergeError> for DistError {
    fn from(e: MergeError) -> DistError {
        DistError::Merge(e)
    }
}

fn frame(kind: &str, fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![("type".to_owned(), Json::str(kind))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(pairs)
}

fn frame_type(value: &Json) -> &str {
    value.get("type").and_then(Json::as_str).unwrap_or("")
}

/// The coordinator's per-row scheduling state, shared by the dispatchers.
#[derive(Debug)]
struct Queues {
    /// Pending shard indices per worker.
    pending: Vec<VecDeque<usize>>,
    /// Shards returned by dead workers, drained by any live dispatcher.
    orphans: VecDeque<usize>,
    alive: Vec<bool>,
    in_flight: usize,
    steal_batches: usize,
    stolen_shards: usize,
    reassigned: usize,
}

enum NextJob {
    Run(usize),
    /// Nothing to run now, but another dispatcher still has a shard in
    /// flight — its death could orphan work, so stay available.
    Wait,
    Exhausted,
}

impl Queues {
    fn seed(workers: usize, shards: usize) -> Queues {
        let mut pending = vec![VecDeque::new(); workers];
        for shard in 0..shards {
            pending[shard % workers].push_back(shard);
        }
        Queues {
            pending,
            orphans: VecDeque::new(),
            alive: vec![true; workers],
            in_flight: 0,
            steal_batches: 0,
            stolen_shards: 0,
            reassigned: 0,
        }
    }

    fn next(&mut self, me: usize) -> NextJob {
        if let Some(shard) = self.pending[me].pop_front().or_else(|| self.orphans.pop_front()) {
            self.in_flight += 1;
            return NextJob::Run(shard);
        }
        // steal-half, batched: the back half of the most-loaded live
        // worker's deque migrates here in one decision
        let victim = (0..self.pending.len())
            .filter(|&j| j != me && self.alive[j] && !self.pending[j].is_empty())
            .max_by_key(|&j| self.pending[j].len());
        if let Some(victim) = victim {
            let take = self.pending[victim].len().div_ceil(2);
            let mut batch: Vec<usize> =
                (0..take).map_while(|_| self.pending[victim].pop_back()).collect();
            self.steal_batches += 1;
            self.stolen_shards += batch.len();
            let run = batch.remove(0);
            self.pending[me].extend(batch);
            self.in_flight += 1;
            return NextJob::Run(run);
        }
        if self.in_flight > 0 {
            NextJob::Wait
        } else {
            NextJob::Exhausted
        }
    }

    fn finished(&mut self) {
        self.in_flight -= 1;
    }

    /// Marks `me` dead mid-`shard`: the in-flight shard and the whole
    /// pending deque become orphans for the survivors.
    fn died(&mut self, me: usize, shard: usize) {
        self.alive[me] = false;
        let mut returned = vec![shard];
        returned.extend(self.pending[me].drain(..));
        self.reassigned += returned.len();
        self.orphans.extend(returned);
        self.in_flight -= 1;
    }
}

/// One worker connection from the coordinator's side.
struct Peer {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Peer {
    fn connect(addr: &str, liveness: Duration) -> Result<Peer, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(liveness)).map_err(|e| format!("read timeout: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(Peer { addr: addr.to_owned(), reader: BufReader::new(stream), writer })
    }

    fn send(&mut self, value: &Json) -> Result<(), String> {
        write_line_value(&mut self.writer, value).map_err(|e| format!("send: {e}"))
    }

    /// The next frame; any failure (timeout, closed socket, garbage) is
    /// death — NDJSON framing cannot resume a half-read line.
    fn recv(&mut self) -> Result<Json, String> {
        match read_line_value(&mut self.reader, MAX_LINE_BYTES) {
            Ok(Some(value)) => Ok(value),
            Ok(None) => Err("connection closed".to_owned()),
            Err(e) => Err(format!("read: {e}")),
        }
    }

    fn hello(
        &mut self,
        kind: BenchKind,
        k: usize,
        shards: usize,
        spec: &PlanSpec,
        options: &SweepOptions,
        dist: &DistOptions,
    ) -> Result<(), String> {
        self.send(&frame(
            "hello",
            [
                ("version", Json::from(PROTOCOL_VERSION)),
                ("bench", Json::str(kind.name())),
                ("k", Json::from(k)),
                ("shards", Json::from(shards)),
                ("plan", spec.to_json()),
                ("timeout_millis", Json::from(options.timeout.as_millis() as usize)),
                ("threads", Json::from(options.threads.unwrap_or(0))),
                ("trace", Json::from(timepiece_trace::enabled())),
                ("sabotage", Json::arr(dist.sabotage.iter().map(Json::str))),
            ],
        ))?;
        let ready = self.recv()?;
        match frame_type(&ready) {
            "ready" => {
                let version = ready.get("version").and_then(Json::as_usize).unwrap_or(0);
                if version != PROTOCOL_VERSION {
                    return Err(format!(
                        "speaks protocol version {version}, coordinator speaks {PROTOCOL_VERSION}"
                    ));
                }
                Ok(())
            }
            "error" => Err(ready
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("unspecified worker error")
                .to_owned()),
            other => Err(format!("expected ready frame, got {other:?}")),
        }
    }

    /// One shard round trip: send the assignment, ride out heartbeats,
    /// return the report (or an error frame's detail).
    fn check(&mut self, shard: usize, nodes: &[&str]) -> Result<ShardReport, String> {
        let _wire = timepiece_trace::span(Phase::Wire, format!("{}#s{shard}", self.addr));
        self.send(&frame(
            "check",
            [
                ("shard", Json::from(shard)),
                ("nodes", Json::arr(nodes.iter().map(|&n| Json::str(n)))),
            ],
        ))?;
        loop {
            let value = self.recv()?;
            match frame_type(&value) {
                "progress" => continue,
                "report" => {
                    let body = value.get("report").ok_or("report frame without a report")?;
                    let report = ShardReport::from_json(body).map_err(|e| e.to_string())?;
                    if report.shard != shard {
                        return Err(format!(
                            "answered shard {} when asked for shard {shard}",
                            report.shard
                        ));
                    }
                    return Ok(report);
                }
                "error" => {
                    return Err(value
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified worker error")
                        .to_owned())
                }
                other => return Err(format!("unexpected {other:?} frame mid-check")),
            }
        }
    }
}

/// Runs one sweep row across remote workers.
///
/// Connects to every address in `workers`, hands out the shards of the
/// plan chosen by `choice`, rebalances by batched stealing, survives
/// worker deaths by reassigning their shards, and merges the reports into
/// a [`Row`] through the same coverage-proving [`merge_reports`] the
/// forked path uses. Unreachable workers are warnings (printed to stderr)
/// as long as at least one connects.
///
/// # Errors
///
/// [`DistError`] — no reachable workers, a fatal worker `error` frame, or
/// a merge failure (including shards left unrun because every worker
/// died).
pub fn run_row_distributed(
    kind: BenchKind,
    k: usize,
    options: &SweepOptions,
    shards: usize,
    workers: &[String],
    choice: &PlanChoice,
    dist: &DistOptions,
) -> Result<Row, DistError> {
    assert!(shards >= 1, "need at least one shard");
    assert!(!workers.is_empty(), "need at least one worker address");
    let arena_before = timepiece_expr::arena::stats();
    let inst = fattree_instance(kind, k);
    let topology = inst.network.topology();
    let (plan, spec, _predicted) = plan_row(topology, shards, choice);

    let mut peers: Vec<Peer> = Vec::new();
    let mut connect_errors: Vec<String> = Vec::new();
    for addr in workers {
        match Peer::connect(addr, dist.liveness) {
            Ok(peer) => peers.push(peer),
            Err(e) => {
                eprintln!("warning: worker {addr} unreachable ({e}); continuing without it");
                connect_errors.push(format!("{addr}: {e}"));
            }
        }
    }
    if peers.is_empty() {
        return Err(DistError::NoWorkers { detail: connect_errors.join("; ") });
    }

    let queues = Mutex::new(Queues::seed(peers.len(), shards));
    let reports: Mutex<Vec<(String, ShardReport)>> = Mutex::new(Vec::new());
    let fatal: Mutex<Option<DistError>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (me, mut peer) in peers.into_iter().enumerate() {
            let queues = &queues;
            let reports = &reports;
            let fatal = &fatal;
            let spec = &spec;
            let plan = &plan;
            scope.spawn(move || {
                if let Err(e) = peer.hello(kind, k, shards, spec, options, dist) {
                    // a worker that cannot even handshake never takes a
                    // shard; its seeded queue becomes orphans
                    let mut q = queues.lock().unwrap();
                    q.alive[me] = false;
                    let returned: Vec<usize> = q.pending[me].drain(..).collect();
                    q.reassigned += returned.len();
                    q.orphans.extend(returned);
                    drop(q);
                    eprintln!("warning: worker {} failed handshake: {e}", peer.addr);
                    *fatal.lock().unwrap() = Some(DistError::Worker {
                        worker: peer.addr.clone(),
                        detail: format!("handshake: {e}"),
                    });
                    return;
                }
                loop {
                    let job = queues.lock().unwrap().next(me);
                    let shard = match job {
                        NextJob::Run(shard) => shard,
                        NextJob::Wait => {
                            std::thread::sleep(IDLE_POLL);
                            continue;
                        }
                        NextJob::Exhausted => break,
                    };
                    let nodes: Vec<&str> =
                        plan.nodes_of(shard).iter().map(|&v| topology.name(v)).collect();
                    match peer.check(shard, &nodes) {
                        Ok(mut report) => {
                            if let Some(trace) = report.trace.take() {
                                timepiece_trace::ingest(format!("{}#s{shard}", peer.addr), trace);
                            }
                            reports.lock().unwrap().push((peer.addr.clone(), report));
                            queues.lock().unwrap().finished();
                        }
                        Err(e) => {
                            eprintln!(
                                "warning: worker {} died on shard {shard} ({e}); reassigning",
                                peer.addr
                            );
                            queues.lock().unwrap().died(me, shard);
                            return;
                        }
                    }
                }
                let _ = peer.send(&frame("done", []));
            });
        }
    });
    let wall = start.elapsed();
    if let Some(error) = fatal.into_inner().unwrap() {
        return Err(error);
    }

    let reports = reports.into_inner().unwrap();
    let queues = queues.into_inner().unwrap();
    let merged = merge_reports(kind, k, shards, &spec.kind, topology, &reports)?;
    let durations: Vec<Duration> =
        merged.durations.iter().map(|&(_, secs)| Duration::from_secs_f64(secs)).collect();
    let stats = TimingStats::from_durations(&durations);
    let tp = EngineResult::classify(merged.verified, merged.timed_out, wall);
    let ms = monolithic_result(&inst, options);
    Ok(Row {
        k,
        nodes: topology.node_count(),
        tp,
        tp_median: stats.median,
        tp_p99: stats.p99,
        ms,
        // coordinator-side traffic only; remote arenas live on remote hosts
        arena: timepiece_expr::arena::stats().delta_since(&arena_before),
        terms: None,
        classes: class_samples(topology, &merged.durations),
        balance: Some(RowBalance {
            plan: spec.kind.clone(),
            shard_secs: merged.shard_secs,
            steal_batches: queues.steal_batches,
            stolen_shards: queues.stolen_shards,
            reassigned: queues.reassigned,
        }),
        failing: merged.failing,
    })
}

/// Asks every reachable worker to exit (`halt` frame). Unreachable
/// addresses are returned as warnings — a worker that is already gone is
/// exactly what halting wants.
pub fn halt_workers(workers: &[String]) -> Vec<String> {
    let mut warnings = Vec::new();
    for addr in workers {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                if let Err(e) = write_line_value(&mut stream, &frame("halt", [])) {
                    warnings.push(format!("{addr}: {e}"));
                }
            }
            Err(e) => warnings.push(format!("{addr}: {e}")),
        }
    }
    warnings
}

enum SessionEnd {
    Done,
    Halted,
    Died,
}

/// Serves coordinator connections on `listener` until halted (or a
/// [`WorkerOptions`] limit fires). Each connection is one sweep row: the
/// worker rebuilds the instance named in the `hello`, checks every shard
/// the coordinator sends through a persistent [`CheckerPool`] — so solver
/// sessions stay warm across the shards of a row — and heartbeats while
/// checking. A failed session is logged and the worker re-accepts; a
/// broken coordinator must not strand the fleet.
///
/// # Errors
///
/// Only listener-level I/O errors (`accept` failing); per-session errors
/// are handled by dropping the session.
pub fn run_worker(listener: TcpListener, options: &WorkerOptions) -> std::io::Result<WorkerExit> {
    let mut sessions = 0usize;
    let mut checks_served = 0usize;
    loop {
        if let Some(max) = options.max_sessions {
            if sessions >= max {
                return Ok(WorkerExit::SessionLimit);
            }
        }
        let (stream, peer) = listener.accept()?;
        sessions += 1;
        match serve_session(stream, options, &mut checks_served) {
            Ok(SessionEnd::Done) => {}
            Ok(SessionEnd::Halted) => return Ok(WorkerExit::Halted),
            Ok(SessionEnd::Died) => return Ok(WorkerExit::Died),
            Err(e) => eprintln!("worker: session with {peer} failed: {e}"),
        }
    }
}

fn session_err(detail: String) -> std::io::Error {
    std::io::Error::other(detail)
}

/// Tells the coordinator why the session is over, then fails it.
fn reject(writer: &mut TcpStream, detail: String) -> std::io::Error {
    let _ = write_line_value(writer, &frame("error", [("detail", Json::str(&detail))]));
    session_err(detail)
}

fn serve_session(
    stream: TcpStream,
    options: &WorkerOptions,
    checks_served: &mut usize,
) -> std::io::Result<SessionEnd> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let recv = |reader: &mut BufReader<TcpStream>| {
        read_line_value(reader, MAX_LINE_BYTES)
            .map_err(|e| session_err(format!("bad frame: {e}")))?
            .ok_or_else(|| session_err("connection closed".to_owned()))
    };

    let hello = recv(&mut reader)?;
    match frame_type(&hello) {
        "halt" => return Ok(SessionEnd::Halted),
        "hello" => {}
        other => {
            let _ = write_line_value(
                &mut writer,
                &frame("error", [("detail", Json::str(format!("expected hello, got {other:?}")))]),
            );
            return Err(session_err(format!("expected hello frame, got {other:?}")));
        }
    }
    let version = hello.get("version").and_then(Json::as_usize).unwrap_or(0);
    if version != PROTOCOL_VERSION {
        return Err(reject(
            &mut writer,
            format!(
                "coordinator speaks protocol version {version}, worker speaks {PROTOCOL_VERSION}"
            ),
        ));
    }
    let bench = hello.get("bench").and_then(Json::as_str).unwrap_or("");
    let Some(kind) = BenchKind::parse(bench) else {
        return Err(reject(&mut writer, format!("unknown benchmark {bench:?}")));
    };
    let (Some(k), Some(shards)) =
        (hello.get("k").and_then(Json::as_usize), hello.get("shards").and_then(Json::as_usize))
    else {
        return Err(reject(&mut writer, "hello frame missing k/shards".to_owned()));
    };
    let spec = match hello.get("plan") {
        None => PlanSpec::striped(),
        Some(v) => match PlanSpec::from_json(v) {
            Ok(spec) => spec,
            Err(e) => return Err(reject(&mut writer, e.to_string())),
        },
    };
    let timeout = hello
        .get("timeout_millis")
        .and_then(Json::as_usize)
        .map(|ms| Duration::from_millis(ms as u64));
    let threads = match hello.get("threads").and_then(Json::as_usize) {
        Some(0) | None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        Some(n) => n,
    };
    if hello.get("trace").and_then(Json::as_bool).unwrap_or(false) {
        timepiece_trace::enable();
        let _ = timepiece_trace::take();
    }

    let inst = fattree_instance(kind, k);
    let topology = inst.network.topology();
    let mut interface = inst.interface.clone();
    if let Some(sabotage) = hello.get("sabotage").and_then(Json::as_arr) {
        for name in sabotage {
            let Some(v) = name.as_str().and_then(|n| topology.node_by_name(n)) else {
                return Err(reject(&mut writer, format!("sabotage names unknown node {name}")));
            };
            interface.set(v, Temporal::globally(|r| r.clone().is_some().not()));
        }
    }
    let mut pool = CheckerPool::new(
        threads,
        CheckOptions { timeout, threads: Some(threads), ..CheckOptions::default() },
    );

    write_line_value(&mut writer, &frame("ready", [("version", Json::from(PROTOCOL_VERSION))]))?;

    loop {
        let value = recv(&mut reader)?;
        match frame_type(&value) {
            "done" => return Ok(SessionEnd::Done),
            "halt" => return Ok(SessionEnd::Halted),
            "check" => {
                if let Some(limit) = options.die_after {
                    if *checks_served >= limit {
                        // drop the connection without a word — the
                        // coordinator sees exactly what a crashed host
                        // looks like
                        return Ok(SessionEnd::Died);
                    }
                }
                *checks_served += 1;
                let Some(shard) = value.get("shard").and_then(Json::as_usize) else {
                    return Err(reject(&mut writer, "check frame missing shard".to_owned()));
                };
                let names = value.get("nodes").and_then(Json::as_arr).map(|nodes| {
                    nodes.iter().map(|n| n.as_str().unwrap_or("")).collect::<Vec<_>>()
                });
                let Some(names) = names else {
                    return Err(reject(&mut writer, "check frame missing nodes".to_owned()));
                };
                let mut nodes = Vec::with_capacity(names.len());
                for name in names {
                    let Some(v) = topology.node_by_name(name) else {
                        return Err(reject(
                            &mut writer,
                            format!("check frame names unknown node {name:?}"),
                        ));
                    };
                    nodes.push(v);
                }

                // check on a side thread; this thread keeps the heartbeat
                // going so the coordinator can tell "slow solve" from
                // "dead worker"
                let (tx, rx) = mpsc::channel();
                let report = std::thread::scope(|scope| {
                    let pool = &mut pool;
                    let inst = &inst;
                    let interface = &interface;
                    let nodes = &nodes;
                    scope.spawn(move || {
                        let report = pool.check_nodes(
                            &inst.network,
                            interface,
                            &inst.property,
                            nodes,
                            &CancelToken::new(),
                        );
                        let _ = tx.send(report);
                    });
                    loop {
                        match rx.recv_timeout(HEARTBEAT) {
                            Ok(report) => break report,
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                if write_line_value(
                                    &mut writer,
                                    &frame("progress", [("shard", Json::from(shard))]),
                                )
                                .is_err()
                                {
                                    // coordinator is gone; the checker
                                    // thread still joins at scope end
                                    continue;
                                }
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                break Err(timepiece_core::CoreError::WorkerDied);
                            }
                        }
                    }
                });
                let report = match report {
                    Ok(report) => report,
                    Err(e) => return Err(reject(&mut writer, format!("check failed: {e}"))),
                };
                let mut shard_report = ShardReport::from_check(
                    kind,
                    k,
                    shard,
                    shards,
                    spec.clone(),
                    topology,
                    &nodes,
                    &report,
                );
                if timepiece_trace::enabled() {
                    shard_report.trace = Some(timepiece_trace::take());
                }
                write_line_value(
                    &mut writer,
                    &frame("report", [("report", shard_report.to_json())]),
                )?;
            }
            other => return Err(reject(&mut writer, format!("unexpected {other:?} frame"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_worker(options: WorkerOptions) -> (String, std::thread::JoinHandle<WorkerExit>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        let handle =
            std::thread::spawn(move || run_worker(listener, &options).expect("worker runs"));
        (addr, handle)
    }

    fn sweep_options() -> SweepOptions {
        SweepOptions { run_monolithic: false, threads: Some(1), ..SweepOptions::default() }
    }

    #[test]
    fn loopback_row_verifies_and_reports_balance() {
        let (addr, handle) = spawn_worker(WorkerOptions::default());
        let workers = vec![addr];
        let kind = BenchKind::parse("SpReach").unwrap();
        let row = run_row_distributed(
            kind,
            4,
            &sweep_options(),
            3,
            &workers,
            &PlanChoice::Striped,
            &DistOptions::default(),
        )
        .expect("distributed row");
        assert!(matches!(row.tp, EngineResult::Verified(_)), "{row:?}");
        assert_eq!(row.nodes, 20);
        let balance = row.balance.expect("distributed rows carry balance");
        assert_eq!(balance.plan, "striped");
        assert_eq!(balance.shard_secs.len(), 3);
        assert!(balance.shard_secs.iter().all(|&s| s > 0.0), "{balance:?}");
        assert_eq!(balance.reassigned, 0);
        assert!(!row.classes.is_empty());
        assert!(halt_workers(&workers).is_empty());
        assert_eq!(handle.join().unwrap(), WorkerExit::Halted);
    }

    #[test]
    fn dead_worker_shards_are_reassigned_and_the_row_completes() {
        // worker A dies after one check; worker B finishes the row
        let (dying, dying_handle) =
            spawn_worker(WorkerOptions { die_after: Some(1), ..WorkerOptions::default() });
        let (survivor, survivor_handle) = spawn_worker(WorkerOptions::default());
        let workers = vec![dying.clone(), survivor.clone()];
        let kind = BenchKind::parse("SpReach").unwrap();
        let row = run_row_distributed(
            kind,
            4,
            &sweep_options(),
            4,
            &workers,
            &PlanChoice::Striped,
            &DistOptions { liveness: Duration::from_secs(2), ..DistOptions::default() },
        )
        .expect("row completes despite the death");
        assert!(matches!(row.tp, EngineResult::Verified(_)), "{row:?}");
        let balance = row.balance.expect("distributed rows carry balance");
        assert!(balance.reassigned >= 1, "{balance:?}");
        assert_eq!(balance.shard_secs.len(), 4);
        assert!(balance.shard_secs.iter().all(|&s| s > 0.0), "{balance:?}");
        assert_eq!(dying_handle.join().unwrap(), WorkerExit::Died);
        assert!(halt_workers(&[survivor]).is_empty());
        assert_eq!(survivor_handle.join().unwrap(), WorkerExit::Halted);
    }

    #[test]
    fn no_reachable_workers_is_a_typed_error() {
        // a bound-then-dropped listener gives a port nothing listens on
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let err = run_row_distributed(
            BenchKind::parse("SpReach").unwrap(),
            4,
            &sweep_options(),
            2,
            &[format!("127.0.0.1:{port}")],
            &PlanChoice::Striped,
            &DistOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DistError::NoWorkers { .. }), "{err}");
    }

    #[test]
    fn steal_counters_move_work_between_queues() {
        let mut q = Queues::seed(2, 6);
        assert_eq!(q.pending[0].len(), 3);
        // worker 1 drains its own queue…
        for _ in 0..3 {
            assert!(matches!(q.next(1), NextJob::Run(_)));
            q.finished();
        }
        // …then steals half of worker 0's three pending shards (two, from
        // the back) in one batch
        let NextJob::Run(stolen) = q.next(1) else { panic!("steal produced no job") };
        assert_eq!(stolen, 4, "back of worker 0's deque");
        assert_eq!(q.steal_batches, 1);
        assert_eq!(q.stolen_shards, 2);
        assert_eq!(q.pending[0].len(), 1);
        assert_eq!(q.pending[1].len(), 1);
        q.finished();
    }

    #[test]
    fn death_orphans_pending_work_and_exhaustion_waits_for_in_flight() {
        let mut q = Queues::seed(2, 5);
        let NextJob::Run(shard) = q.next(0) else { panic!("no job") };
        q.died(0, shard);
        assert_eq!(q.reassigned, 3, "in-flight shard plus two pending");
        assert_eq!(q.orphans.len(), 3);
        // worker 1 must drain its own queue and every orphan
        let mut drained = 0;
        while let NextJob::Run(_) = q.next(1) {
            drained += 1;
            q.finished();
        }
        assert_eq!(drained, 5);
        assert!(matches!(q.next(1), NextJob::Exhausted));
    }
}
