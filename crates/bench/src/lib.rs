//! Benchmark harness for regenerating the paper's tables and figures.
//!
//! The `repro` binary (`cargo run --release -p timepiece-bench --bin repro`)
//! drives sweeps over fattree sizes and prints the same rows/series the
//! paper reports: total modular time (`Tp`), median and 99th-percentile
//! node-check times, and the monolithic baseline (`Ms`) with its timeouts.
//! See `EXPERIMENTS.md` at the workspace root for the recorded comparison.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod loc;
pub mod runner;
pub mod shard;
pub mod soak;
pub mod trend;

pub use runner::{
    fattree_instance, run_row, run_row_pooled, BenchKind, EngineResult, InferSetup, Row, Scenario,
    SweepOptions,
};
pub use shard::{run_row_sharded, run_shard, ShardReport};
pub use soak::{run_soak, SoakOptions, SoakResult};
