//! Benchmark harness for regenerating the paper's tables and figures.
//!
//! The `repro` binary (`cargo run --release -p timepiece-bench --bin repro`)
//! drives sweeps over fattree sizes and prints the same rows/series the
//! paper reports: total modular time (`Tp`), median and 99th-percentile
//! node-check times, and the monolithic baseline (`Ms`) with its timeouts.
//! See `EXPERIMENTS.md` at the workspace root for the recorded comparison.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod loc;
pub mod runner;
pub mod shard;
pub mod soak;
pub mod trend;

pub use dist::{
    halt_workers, run_row_distributed, run_worker, DistError, DistOptions, WorkerExit,
    WorkerOptions,
};
pub use runner::{
    class_samples, fattree_instance, register_scenario, register_scenario_file, run_row,
    run_row_pooled, BenchKind, ClassSample, EngineResult, InferSetup, InstanceSource, Row,
    RowBalance, Scenario, ScenarioSpec, ScenarioSpecBuilder, SweepOptions,
};
pub use shard::{
    merge_reports, plan_row, run_row_sharded, run_shard, run_shard_nodes, MergeError, PlanChoice,
    PlanSpec, ShardReport,
};
pub use soak::{run_soak, SoakOptions, SoakResult};
