//! Table 2 reproduction: lines of code to define each benchmark's network,
//! interface and property.
//!
//! The paper counts C# lines; we count the bodies of the corresponding Rust
//! functions (`network`, `interface`/dedicated interface constructors, and
//! `property`) in the `timepiece-nets` sources, which are compiled into this
//! crate with `include_str!` so the numbers can never go stale.

/// The embedded benchmark sources.
const SOURCES: [(&str, &str); 5] = [
    ("Reach", include_str!("../../nets/src/reach.rs")),
    ("Len", include_str!("../../nets/src/len.rs")),
    ("Vf", include_str!("../../nets/src/vf.rs")),
    ("Hijack", include_str!("../../nets/src/hijack.rs")),
    ("BlockToExternal", include_str!("../../nets/src/wan.rs")),
];

/// Line counts for one benchmark definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocRow {
    /// Benchmark name as in Table 2.
    pub benchmark: &'static str,
    /// Lines defining the network (topology wiring, policies, symbolics).
    pub network: usize,
    /// Lines defining the interfaces.
    pub interface: usize,
    /// Lines defining the property.
    pub property: usize,
}

/// Counts the non-blank, non-comment lines of the body of `fn <name>` in
/// `source`, by brace matching from the function's opening brace.
fn fn_body_loc(source: &str, name: &str) -> usize {
    let needle = format!("pub fn {name}(");
    let Some(start) = source.find(&needle) else { return 0 };
    let rest = &source[start..];
    let Some(open) = rest.find('{') else { return 0 };
    let mut depth = 0usize;
    let mut loc = 0usize;
    for line in rest[open..].lines() {
        let trimmed = line.trim();
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        if !trimmed.is_empty() && !trimmed.starts_with("//") {
            loc += 1;
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if depth == 0 {
            break;
        }
    }
    loc
}

/// Computes Table 2's rows from the embedded sources.
pub fn table2() -> Vec<LocRow> {
    SOURCES
        .iter()
        .map(|(benchmark, src)| {
            let network = fn_body_loc(src, "network");
            let interface = match *benchmark {
                "BlockToExternal" => fn_body_loc(src, "block_to_external"),
                _ => fn_body_loc(src, "interface"),
            };
            let property = match *benchmark {
                // BlockToExternal's property IS its interface (A = P)
                "BlockToExternal" => fn_body_loc(src, "block_to_external"),
                _ => fn_body_loc(src, "property"),
            };
            LocRow { benchmark, network, interface, property }
        })
        .collect()
}

/// The paper's Table 2 values, for side-by-side display.
pub const PAPER_TABLE2: [(&str, usize, usize, usize); 5] = [
    ("Reach", 79, 3, 2),
    ("Len", 83, 7, 5),
    ("Vf", 87, 12, 2),
    ("Hijack", 142, 21, 4),
    ("BlockToExternal", 83, 5, 5),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_counts_nonzero() {
        for row in table2() {
            assert!(row.network > 0, "{row:?}");
            assert!(row.interface > 0, "{row:?}");
            assert!(row.property > 0, "{row:?}");
        }
    }

    #[test]
    fn interfaces_are_low_effort_relative_to_networks() {
        // the paper's point stands, amplified: since the policy-IR refactor
        // the network definitions are a handful of declarative clauses, so
        // neither side of a benchmark definition may blow up
        for row in table2() {
            assert!(row.network <= 40, "declarative networks stay small: {row:?}");
            assert!(
                row.interface <= row.network + 10,
                "interface should not dwarf the network definition: {row:?}"
            );
            assert!(row.property <= row.interface, "property is the smallest piece: {row:?}");
        }
    }

    #[test]
    fn body_loc_of_missing_fn_is_zero() {
        assert_eq!(fn_body_loc("fn nope() {}", "network"), 0);
    }
}
