//! Sweep runner: one row per (benchmark, k), with both engines.
//!
//! Benchmarks live in a data-driven [`ScenarioSpec`] *registry*: one entry
//! wires an instance source (a Rust builder keyed by fattree size, or a
//! compiled scenario file) to a name, and the scenario then appears
//! everywhere at once — `repro fig14` sweeps, `--json` row dumps,
//! multi-process sharding (workers rebuild instances by registry-name
//! lookup, or by recompiling the same scenario file) and `repro infer`.
//! Adding a scenario is one [`register_scenario`] call (or, for the
//! built-ins, one [`Scenario`] literal in the seed table); nothing else
//! matches on benchmark kinds.

use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::monolithic::{check_monolithic, MonolithicOutcome};
use timepiece_core::sweep::CheckerPool;
use timepiece_expr::{arena, ArenaStats};
use timepiece_nets::{
    ad::AdBench, fail::FailBench, hijack::HijackBench, len::LenBench, med::MedBench,
    reach::ReachBench, vf::VfBench, BenchInstance, PropertySpec,
};
use timepiece_scenario::CompiledScenario;
use timepiece_smt::TermCacheStats;
use timepiece_topology::{FatTree, NodeId, Topology};

/// Everything `repro infer` needs to run interface inference on a scenario
/// and compare against its hand-written interfaces.
#[derive(Debug)]
pub struct InferSetup {
    /// The property-only form inference consumes.
    pub spec: PropertySpec,
    /// The annotated instance (for the hand-written comparison).
    pub instance: BenchInstance,
    /// The underlying fattree (for role generalization).
    pub fattree: FatTree,
    /// The fixed destination node.
    pub dest: NodeId,
}

/// Where a registered scenario's instances come from.
#[derive(Debug, Clone)]
pub enum InstanceSource {
    /// A Rust builder, parameterized by fattree size `k`.
    Builder(fn(usize) -> BenchInstance),
    /// A compiled scenario file: one fixed topology, so sweeps run it at
    /// exactly its native size.
    Compiled(Arc<CompiledScenario>),
}

/// One registered benchmark scenario (the data-driven registry entry).
///
/// Built-ins are seeded from [`Scenario`] literals; scenario files are
/// registered at runtime through [`register_scenario_file`]. Construct
/// custom entries with [`ScenarioSpec::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    name: String,
    figure: String,
    source: InstanceSource,
    infer: Option<fn(usize) -> InferSetup>,
    scenario_file: Option<String>,
}

impl ScenarioSpec {
    /// Starts building a spec with the two mandatory fields.
    pub fn builder(name: impl Into<String>, figure: impl Into<String>) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            name: name.into(),
            figure: figure.into(),
            source: None,
            infer: None,
            scenario_file: None,
        }
    }

    /// The scenario's display name (`SpReach`, `ApMed`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which paper figure panel it reproduces (or a tag: `med`, `fail`,
    /// `file`, …).
    pub fn figure(&self) -> &str {
        &self.figure
    }

    /// Where instances come from.
    pub fn source(&self) -> &InstanceSource {
        &self.source
    }

    /// The scenario file this spec was compiled from, when it was.
    pub fn scenario_file(&self) -> Option<&str> {
        self.scenario_file.as_deref()
    }
}

/// Builder for [`ScenarioSpec`].
#[derive(Debug)]
pub struct ScenarioSpecBuilder {
    name: String,
    figure: String,
    source: Option<InstanceSource>,
    infer: Option<fn(usize) -> InferSetup>,
    scenario_file: Option<String>,
}

impl ScenarioSpecBuilder {
    /// Instances come from a Rust builder keyed by fattree size.
    pub fn instance_fn(mut self, f: fn(usize) -> BenchInstance) -> Self {
        self.source = Some(InstanceSource::Builder(f));
        self
    }

    /// Instances come from a compiled scenario.
    pub fn compiled(mut self, c: CompiledScenario) -> Self {
        self.source = Some(InstanceSource::Compiled(Arc::new(c)));
        self
    }

    /// Records the source file (lets sharded subprocess workers recompile
    /// the same scenario).
    pub fn scenario_file(mut self, path: impl Into<String>) -> Self {
        self.scenario_file = Some(path.into());
        self
    }

    /// Declares `repro infer` support.
    pub fn infer_fn(mut self, f: fn(usize) -> InferSetup) -> Self {
        self.infer = Some(f);
        self
    }

    /// Finishes the spec.
    ///
    /// # Panics
    ///
    /// Panics if no instance source was declared — a spec without one is a
    /// programming error, not a runtime condition.
    pub fn build(self) -> ScenarioSpec {
        ScenarioSpec {
            source: self.source.expect("a ScenarioSpec needs an instance source"),
            name: self.name,
            figure: self.figure,
            infer: self.infer,
            scenario_file: self.scenario_file,
        }
    }
}

/// A built-in registry entry: the compact literal form the seed table uses.
/// Converts losslessly into a [`ScenarioSpec`].
#[derive(Debug)]
pub struct Scenario {
    /// The scenario's display name (`SpReach`, `ApMed`, …).
    pub name: &'static str,
    /// Which paper figure panel it reproduces (or a tag for post-paper
    /// scenarios: `med`, `ad`, `fail`).
    pub figure: &'static str,
    /// Builds the annotated instance at fattree size `k`.
    pub build: fn(usize) -> BenchInstance,
    /// Builds the inference setup, for scenarios `repro infer` supports.
    pub infer: Option<fn(usize) -> InferSetup>,
}

impl From<&Scenario> for ScenarioSpec {
    fn from(s: &Scenario) -> ScenarioSpec {
        ScenarioSpec {
            name: s.name.to_owned(),
            figure: s.figure.to_owned(),
            source: InstanceSource::Builder(s.build),
            infer: s.infer,
            scenario_file: None,
        }
    }
}

/// The inference setup of a fixed-destination fattree bench — one
/// expression per builder type, since every such bench exposes the same
/// `spec`/`build`/`fattree`/`dest_node` surface.
macro_rules! fixed_dest_infer {
    ($bench:ty) => {
        |k: usize| {
            let bench = <$bench>::single_dest(k, 0);
            InferSetup {
                spec: bench.spec(),
                instance: bench.build(),
                fattree: bench.fattree().clone(),
                dest: bench.dest_node().expect("fixed destination"),
            }
        }
    };
}

/// The seed registry: the paper's eight Fig. 14 benchmarks followed by
/// the post-paper scenarios (MED planes, IGP/EGP distance, link failures).
static SEED: &[Scenario] = &[
    Scenario {
        name: "SpReach",
        figure: "14a",
        build: |k| ReachBench::single_dest(k, 0).build(),
        infer: Some(fixed_dest_infer!(ReachBench)),
    },
    Scenario {
        name: "SpLen",
        figure: "14b",
        build: |k| LenBench::single_dest(k, 0).build(),
        infer: Some(fixed_dest_infer!(LenBench)),
    },
    Scenario {
        name: "SpVf",
        figure: "14c",
        build: |k| VfBench::single_dest(k, 0).build(),
        infer: None,
    },
    Scenario {
        name: "SpHijack",
        figure: "14d",
        build: |k| HijackBench::single_dest(k, 0).build(),
        infer: None,
    },
    Scenario {
        name: "ApReach",
        figure: "14e",
        build: |k| ReachBench::all_pairs(k).build(),
        infer: None,
    },
    Scenario {
        name: "ApLen",
        figure: "14f",
        build: |k| LenBench::all_pairs(k).build(),
        infer: None,
    },
    Scenario { name: "ApVf", figure: "14g", build: |k| VfBench::all_pairs(k).build(), infer: None },
    Scenario {
        name: "ApHijack",
        figure: "14h",
        build: |k| HijackBench::all_pairs(k).build(),
        infer: None,
    },
    Scenario {
        name: "SpMed",
        figure: "med",
        build: |k| MedBench::single_dest(k, 0).build(),
        infer: None,
    },
    Scenario {
        name: "ApMed",
        figure: "med",
        build: |k| MedBench::all_pairs(k).build(),
        infer: None,
    },
    Scenario {
        name: "SpAd",
        figure: "ad",
        build: |k| AdBench::single_dest(k, 0).build(),
        infer: None,
    },
    Scenario { name: "ApAd", figure: "ad", build: |k| AdBench::all_pairs(k).build(), infer: None },
    Scenario {
        name: "SpFail",
        figure: "fail",
        build: |k| FailBench::single_dest(k, 0).build(),
        infer: None,
    },
];

/// The live registry: seed entries plus anything registered at runtime.
///
/// Entries are leaked to `&'static` so [`BenchKind`] stays `Copy` and its
/// accessors keep returning `&'static str` — registration is rare (a few
/// scenario files per process at most), so the leak is bounded and
/// deliberate.
fn registry() -> &'static RwLock<Vec<&'static ScenarioSpec>> {
    static REGISTRY: OnceLock<RwLock<Vec<&'static ScenarioSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(SEED.iter().map(|s| &*Box::leak(Box::new(ScenarioSpec::from(s)))).collect())
    })
}

/// Registers a scenario, returning its handle. A spec whose name matches an
/// existing entry (case-insensitively) replaces it; otherwise it is
/// appended after the built-ins.
pub fn register_scenario(spec: ScenarioSpec) -> BenchKind {
    let leaked: &'static ScenarioSpec = Box::leak(Box::new(spec));
    let mut reg = registry().write().expect("registry lock");
    match reg.iter_mut().find(|s| s.name().eq_ignore_ascii_case(leaked.name())) {
        Some(slot) => *slot = leaked,
        None => reg.push(leaked),
    }
    BenchKind(leaked)
}

/// Compiles a scenario file and registers it under its declared name.
///
/// # Errors
///
/// Propagates the compiler's span-carrying diagnostics, rendered to text.
pub fn register_scenario_file(path: &str) -> Result<BenchKind, String> {
    let compiled = timepiece_scenario::compile_file(path).map_err(|e| e.to_string())?;
    let spec = ScenarioSpec::builder(compiled.name.clone(), compiled.figure.clone())
        .compiled(compiled)
        .scenario_file(path)
        .build();
    Ok(register_scenario(spec))
}

/// A handle to one registered scenario.
#[derive(Debug, Clone, Copy)]
pub struct BenchKind(&'static ScenarioSpec);

impl PartialEq for BenchKind {
    fn eq(&self, other: &BenchKind) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for BenchKind {}

impl BenchKind {
    /// Every registered scenario, in registry order (the paper's figure
    /// order first, then runtime registrations).
    pub fn all() -> impl Iterator<Item = BenchKind> {
        registry()
            .read()
            .expect("registry lock")
            .iter()
            .map(|s| BenchKind(s))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The registered scenario names, in order.
    pub fn names() -> Vec<&'static str> {
        registry().read().expect("registry lock").iter().map(|s| s.name.as_str()).collect()
    }

    /// The scenario's display name.
    pub fn name(&self) -> &'static str {
        self.0.name.as_str()
    }

    /// Which Fig. 14 panel (or post-paper tag) this scenario reproduces.
    pub fn figure(&self) -> &'static str {
        self.0.figure.as_str()
    }

    /// The underlying registry entry.
    pub fn spec(&self) -> &'static ScenarioSpec {
        self.0
    }

    /// Looks a scenario up by name, case-insensitively.
    pub fn parse(s: &str) -> Option<BenchKind> {
        BenchKind::all().find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Does `repro infer` support this scenario?
    pub fn supports_inference(&self) -> bool {
        self.0.infer.is_some()
    }

    /// The inference setup at size `k`, for scenarios that support it.
    pub fn infer_setup(&self, k: usize) -> Option<InferSetup> {
        self.0.infer.map(|f| f(k))
    }

    /// The fixed size of a compiled (file) scenario: sweeps run it at
    /// exactly this `k` instead of the requested range. `None` for
    /// builder-backed scenarios, which scale with `k`.
    pub fn native_k(&self) -> Option<usize> {
        match &self.0.source {
            InstanceSource::Builder(_) => None,
            InstanceSource::Compiled(c) => Some(c.k),
        }
    }

    /// The scenario file backing this entry, when there is one (lets
    /// subprocess shard workers recompile it).
    pub fn scenario_file(&self) -> Option<&'static str> {
        self.0.scenario_file.as_deref()
    }
}

/// Builds the benchmark instance for a scenario at fattree size `k`.
///
/// Compiled (file) scenarios have one fixed topology; they ignore the
/// requested `k` and return their native instance.
pub fn fattree_instance(kind: BenchKind, k: usize) -> BenchInstance {
    match &kind.0.source {
        InstanceSource::Builder(f) => f(k),
        InstanceSource::Compiled(c) => c.instance(),
    }
}

/// The outcome of one engine on one instance.
#[derive(Debug, Clone, Copy)]
pub enum EngineResult {
    /// Verified within budget.
    Verified(Duration),
    /// Property/interface rejected (should not happen on these benchmarks).
    Failed(Duration),
    /// The solver hit the time budget.
    TimedOut(Duration),
}

impl EngineResult {
    /// Wall time spent (budget time for timeouts).
    pub fn wall(&self) -> Duration {
        match self {
            EngineResult::Verified(d) | EngineResult::Failed(d) | EngineResult::TimedOut(d) => *d,
        }
    }

    /// The one place a modular run's outcome is classified, shared by the
    /// in-process and sharded row paths so they can never diverge:
    /// verified wins, then timeout (any solver give-up), then failed.
    pub fn classify(verified: bool, timed_out: bool, wall: Duration) -> EngineResult {
        if verified {
            EngineResult::Verified(wall)
        } else if timed_out {
            EngineResult::TimedOut(wall)
        } else {
            EngineResult::Failed(wall)
        }
    }

    /// Machine-readable outcome tag (`verified` / `failed` / `timeout`).
    pub fn outcome(&self) -> &'static str {
        match self {
            EngineResult::Verified(_) => "verified",
            EngineResult::Failed(_) => "failed",
            EngineResult::TimedOut(_) => "timeout",
        }
    }

    /// Render like the paper's plots: seconds or "timeout".
    pub fn display(&self) -> String {
        match self {
            EngineResult::Verified(d) => format!("{:.2}s", d.as_secs_f64()),
            EngineResult::Failed(d) => format!("FAILED({:.2}s)", d.as_secs_f64()),
            EngineResult::TimedOut(_) => "timeout".to_owned(),
        }
    }
}

/// One sweep row: a benchmark at one topology size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Fattree parameter.
    pub k: usize,
    /// Node count (1.25k², +1 for the hijack benchmarks).
    pub nodes: usize,
    /// Timepiece total wall time.
    pub tp: EngineResult,
    /// Median single-node check time.
    pub tp_median: Duration,
    /// 99th-percentile single-node check time.
    pub tp_p99: Duration,
    /// Monolithic baseline result (None if skipped).
    pub ms: Option<EngineResult>,
    /// Term-arena traffic attributable to this row (instance build plus
    /// check): new terms interned, constructions served by existing
    /// canonical nodes. Sharded rows only see the coordinator's share —
    /// worker-process arenas are separate.
    pub arena: ArenaStats,
    /// The modular engine's compiled-term cache traffic for this row
    /// (None for sharded rows, whose encoders live in worker processes).
    pub terms: Option<TermCacheStats>,
    /// Measured per-class check cost for this row — the samples future
    /// sweeps' adaptive shard plans are fit from (via `repro trend`).
    pub classes: Vec<ClassSample>,
    /// Shard balance accounting, for rows that ran sharded or distributed
    /// (None for in-process rows: there are no shards to balance).
    pub balance: Option<RowBalance>,
    /// Names of nodes with at least one failed condition, sorted and
    /// deduplicated (empty when the row verified) — the verdict detail the
    /// scheduler-equivalence tests compare across execution strategies.
    pub failing: Vec<String>,
}

/// Aggregate check cost of one symmetry class within a row.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSample {
    /// The class stem (`core` / `agg` / `edge` / …).
    pub class: String,
    /// How many nodes of the class the row checked.
    pub nodes: usize,
    /// Their summed check seconds.
    pub total_secs: f64,
}

impl ClassSample {
    /// Mean seconds per node of this class.
    pub fn mean_secs(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_secs / self.nodes as f64
        }
    }
}

/// Groups per-node check durations (by node *name*) into per-class cost
/// samples, in class order. Names not present in the topology are skipped —
/// a foreign name is a coverage problem, caught by the shard merge, not a
/// costing problem.
pub fn class_samples(topology: &Topology, durations: &[(String, f64)]) -> Vec<ClassSample> {
    let mut by_class: std::collections::BTreeMap<&str, (usize, f64)> =
        std::collections::BTreeMap::new();
    for (name, secs) in durations {
        if let Some(v) = topology.node_by_name(name) {
            let slot = by_class.entry(topology.node_class(v)).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += secs;
        }
    }
    by_class
        .into_iter()
        .map(|(class, (nodes, total_secs))| ClassSample {
            class: class.to_owned(),
            nodes,
            total_secs,
        })
        .collect()
}

/// How evenly a sharded row's work actually spread, plus how much the
/// scheduler had to move it around.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBalance {
    /// Which planner produced the shard plan (`striped` / `adaptive`).
    pub plan: String,
    /// Measured wall seconds per shard index.
    pub shard_secs: Vec<f64>,
    /// Cross-worker steal batches the coordinator executed (0 for forked
    /// rows: every fork owns exactly one shard).
    pub steal_batches: usize,
    /// Whole shards migrated by those batches.
    pub stolen_shards: usize,
    /// Shards reassigned after a worker died.
    pub reassigned: usize,
}

impl RowBalance {
    /// `max / mean` over the measured shard wall seconds (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        timepiece_sched::cost::imbalance(&self.shard_secs)
    }
}

/// Sweep options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Per-engine time budget (the paper used 2 hours; default 60 s).
    pub timeout: Duration,
    /// Run the monolithic baseline too.
    pub run_monolithic: bool,
    /// Worker threads for the modular engine (None: all cores).
    pub threads: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { timeout: Duration::from_secs(60), run_monolithic: true, threads: None }
    }
}

impl SweepOptions {
    fn check_options(&self) -> CheckOptions {
        CheckOptions {
            timeout: Some(self.timeout),
            threads: self.threads,
            ..CheckOptions::default()
        }
    }
}

/// Assembles a row from an instance's modular report plus the baseline.
/// `arena_before` is the arena snapshot taken before the instance was built.
fn assemble_row(
    k: usize,
    inst: &BenchInstance,
    report: &timepiece_core::CheckReport,
    options: &SweepOptions,
    arena_before: &ArenaStats,
) -> Row {
    let stats = report.stats();
    let timed_out = report
        .failures()
        .iter()
        .any(|f| matches!(f.reason, timepiece_core::check::FailureReason::Unknown(_)));
    let tp = EngineResult::classify(report.is_verified(), timed_out, report.wall());
    let ms = monolithic_result(inst, options);
    let topology = inst.network.topology();
    let durations: Vec<(String, f64)> = report
        .node_durations()
        .iter()
        .map(|&(v, d)| (topology.name(v).to_owned(), d.as_secs_f64()))
        .collect();
    Row {
        k,
        nodes: topology.node_count(),
        tp,
        tp_median: stats.median,
        tp_p99: stats.p99,
        ms,
        arena: arena::stats().delta_since(arena_before),
        terms: report.term_cache(),
        classes: class_samples(topology, &durations),
        balance: None,
        failing: {
            let mut failing: Vec<String> =
                report.failures().iter().map(|f| f.node_name.clone()).collect();
            failing.sort_unstable();
            failing.dedup();
            failing
        },
    }
}

/// Runs both engines on one instance and assembles a row, with fresh solver
/// state per call.
pub fn run_row(kind: BenchKind, k: usize, options: &SweepOptions) -> Row {
    let arena_before = arena::stats();
    let inst = fattree_instance(kind, k);
    let report = ModularChecker::new(options.check_options())
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("benchmark instances encode");
    assemble_row(k, &inst, &report, options, &arena_before)
}

/// As [`run_row`], but discharging the modular conditions through a
/// persistent [`CheckerPool`], so solver sessions (keyed by the network's
/// structural IR signature) are reused across every row checked on the same
/// pool — the cross-row session cache of multi-`k` sweeps. The row's term
/// stats then include cross-row hits: a row structurally identical to an
/// earlier one starts with its compiled terms already cached.
pub fn run_row_pooled(
    kind: BenchKind,
    k: usize,
    options: &SweepOptions,
    pool: &mut CheckerPool,
) -> Row {
    let arena_before = arena::stats();
    let inst = fattree_instance(kind, k);
    let report = pool
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("benchmark instances encode");
    assemble_row(k, &inst, &report, options, &arena_before)
}

/// The monolithic baseline on one instance, when the options ask for it.
pub(crate) fn monolithic_result(
    inst: &timepiece_nets::BenchInstance,
    options: &SweepOptions,
) -> Option<EngineResult> {
    options.run_monolithic.then(|| {
        let mono = check_monolithic(&inst.network, &inst.property, Some(options.timeout))
            .expect("benchmark instances encode");
        match mono.outcome {
            MonolithicOutcome::Verified => EngineResult::Verified(mono.wall),
            MonolithicOutcome::Failed(_) => EngineResult::Failed(mono.wall),
            MonolithicOutcome::Unknown(_) => EngineResult::TimedOut(mono.wall),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_names() {
        for kind in BenchKind::all() {
            assert_eq!(BenchKind::parse(kind.name()), Some(kind));
            assert!(!kind.figure().is_empty());
        }
        assert_eq!(BenchKind::parse("spreach").map(|k| k.name()), Some("SpReach"));
        assert_eq!(BenchKind::parse("SPFAIL").map(|k| k.name()), Some("SpFail"));
        assert_eq!(BenchKind::parse("nope"), None);
    }

    #[test]
    fn registry_covers_paper_and_post_paper_scenarios() {
        let names = BenchKind::names();
        for expected in [
            "SpReach", "SpLen", "SpVf", "SpHijack", "ApReach", "ApLen", "ApVf", "ApHijack",
            "SpMed", "ApMed", "SpAd", "ApAd", "SpFail",
        ] {
            assert!(names.contains(&expected), "{expected} missing from registry");
        }
        // the paper's eight keep their figure panels, in order
        let figures: Vec<&str> = BenchKind::all().take(8).map(|k| k.figure()).collect();
        assert_eq!(figures, ["14a", "14b", "14c", "14d", "14e", "14f", "14g", "14h"]);
    }

    #[test]
    fn inference_support_is_declared_in_the_registry() {
        let support: Vec<&str> =
            BenchKind::all().filter(BenchKind::supports_inference).map(|k| k.name()).collect();
        assert_eq!(support, ["SpReach", "SpLen"]);
        let setup = BenchKind::parse("SpReach").unwrap().infer_setup(4).unwrap();
        assert_eq!(setup.fattree.k(), 4);
        assert_eq!(setup.instance.network.topology().node_count(), 20);
    }

    #[test]
    fn run_row_produces_verified_row_at_k4() {
        let options =
            SweepOptions { timeout: Duration::from_secs(120), run_monolithic: true, threads: None };
        let row = run_row(BenchKind::parse("SpReach").unwrap(), 4, &options);
        assert_eq!(row.k, 4);
        assert_eq!(row.nodes, 20);
        assert!(matches!(row.tp, EngineResult::Verified(_)), "{row:?}");
        assert!(matches!(row.ms, Some(EngineResult::Verified(_))), "{row:?}");
        assert!(row.tp_median <= row.tp_p99);
        // building and checking the instance exercises the arena, and the
        // repeated per-node structure makes some constructions hits
        assert!(row.arena.constructed() > 0, "{row:?}");
        assert!(row.arena.hits > 0, "{row:?}");
        assert!(row.terms.expect("in-process rows carry term stats").lookups() > 0);
    }

    #[test]
    fn pooled_rows_agree_with_fresh_rows() {
        let options = SweepOptions {
            timeout: Duration::from_secs(120),
            run_monolithic: false,
            threads: None,
        };
        let mut pool = CheckerPool::new(2, options.check_options());
        let kind = BenchKind::parse("SpMed").unwrap();
        // the same row twice through one pool (the second reuses sessions),
        // each compared field-for-field against a fresh scoped run
        let mut term_rows = Vec::new();
        for k in [4usize, 4] {
            let pooled = run_row_pooled(kind, k, &options, &mut pool);
            let fresh = run_row(kind, k, &options);
            assert!(matches!(pooled.tp, EngineResult::Verified(_)), "{pooled:?}");
            assert!(matches!(fresh.tp, EngineResult::Verified(_)), "{fresh:?}");
            assert_eq!((pooled.k, pooled.nodes), (fresh.k, fresh.nodes));
            assert!(pooled.ms.is_none() && fresh.ms.is_none());
            // both row paths carried real per-node timing stats
            assert!(pooled.tp_median <= pooled.tp_p99);
            assert!(pooled.tp_p99 > Duration::ZERO, "{pooled:?}");
            term_rows.push(pooled.terms.expect("pooled rows carry term stats"));
        }
        // the second identical row starts warm: the pool's encoders already
        // hold row one's compiled terms, so hits rise and misses collapse
        assert!(term_rows[1].hits > 0, "{term_rows:?}");
        assert!(term_rows[1].misses < term_rows[0].misses, "{term_rows:?}");
        assert!(term_rows[1].hit_rate() > term_rows[0].hit_rate(), "{term_rows:?}");
    }

    #[test]
    fn engine_result_displays() {
        assert!(EngineResult::Verified(Duration::from_millis(1500)).display().ends_with('s'));
        assert_eq!(EngineResult::TimedOut(Duration::from_secs(1)).display(), "timeout");
        assert!(EngineResult::Failed(Duration::from_secs(1)).display().starts_with("FAILED"));
    }
}
