//! Sweep runner: one row per (benchmark, k), with both engines.

use std::time::Duration;

use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::monolithic::{check_monolithic, MonolithicOutcome};
use timepiece_nets::{
    hijack::HijackBench, len::LenBench, reach::ReachBench, vf::VfBench, BenchInstance,
};

/// The eight fattree benchmarks of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// Fig. 14a — reachability, fixed destination.
    SpReach,
    /// Fig. 14b — bounded path length, fixed destination.
    SpLen,
    /// Fig. 14c — valley freedom, fixed destination.
    SpVf,
    /// Fig. 14d — hijack filtering, fixed destination.
    SpHijack,
    /// Fig. 14e — reachability, symbolic destination.
    ApReach,
    /// Fig. 14f — bounded path length, symbolic destination.
    ApLen,
    /// Fig. 14g — valley freedom, symbolic destination.
    ApVf,
    /// Fig. 14h — hijack filtering, symbolic destination.
    ApHijack,
}

impl BenchKind {
    /// All kinds, in the paper's figure order.
    pub const ALL: [BenchKind; 8] = [
        BenchKind::SpReach,
        BenchKind::SpLen,
        BenchKind::SpVf,
        BenchKind::SpHijack,
        BenchKind::ApReach,
        BenchKind::ApLen,
        BenchKind::ApVf,
        BenchKind::ApHijack,
    ];

    /// The benchmark's display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchKind::SpReach => "SpReach",
            BenchKind::SpLen => "SpLen",
            BenchKind::SpVf => "SpVf",
            BenchKind::SpHijack => "SpHijack",
            BenchKind::ApReach => "ApReach",
            BenchKind::ApLen => "ApLen",
            BenchKind::ApVf => "ApVf",
            BenchKind::ApHijack => "ApHijack",
        }
    }

    /// Which Fig. 14 panel this kind reproduces.
    pub fn figure(&self) -> &'static str {
        match self {
            BenchKind::SpReach => "14a",
            BenchKind::SpLen => "14b",
            BenchKind::SpVf => "14c",
            BenchKind::SpHijack => "14d",
            BenchKind::ApReach => "14e",
            BenchKind::ApLen => "14f",
            BenchKind::ApVf => "14g",
            BenchKind::ApHijack => "14h",
        }
    }

    /// Parses a benchmark name (case-insensitive).
    pub fn parse(s: &str) -> Option<BenchKind> {
        BenchKind::ALL.iter().copied().find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

/// Builds the benchmark instance for a kind at fattree size `k`.
pub fn fattree_instance(kind: BenchKind, k: usize) -> BenchInstance {
    match kind {
        BenchKind::SpReach => ReachBench::single_dest(k, 0).build(),
        BenchKind::SpLen => LenBench::single_dest(k, 0).build(),
        BenchKind::SpVf => VfBench::single_dest(k, 0).build(),
        BenchKind::SpHijack => HijackBench::single_dest(k, 0).build(),
        BenchKind::ApReach => ReachBench::all_pairs(k).build(),
        BenchKind::ApLen => LenBench::all_pairs(k).build(),
        BenchKind::ApVf => VfBench::all_pairs(k).build(),
        BenchKind::ApHijack => HijackBench::all_pairs(k).build(),
    }
}

/// The outcome of one engine on one instance.
#[derive(Debug, Clone, Copy)]
pub enum EngineResult {
    /// Verified within budget.
    Verified(Duration),
    /// Property/interface rejected (should not happen on these benchmarks).
    Failed(Duration),
    /// The solver hit the time budget.
    TimedOut(Duration),
}

impl EngineResult {
    /// Wall time spent (budget time for timeouts).
    pub fn wall(&self) -> Duration {
        match self {
            EngineResult::Verified(d) | EngineResult::Failed(d) | EngineResult::TimedOut(d) => *d,
        }
    }

    /// The one place a modular run's outcome is classified, shared by the
    /// in-process and sharded row paths so they can never diverge:
    /// verified wins, then timeout (any solver give-up), then failed.
    pub fn classify(verified: bool, timed_out: bool, wall: Duration) -> EngineResult {
        if verified {
            EngineResult::Verified(wall)
        } else if timed_out {
            EngineResult::TimedOut(wall)
        } else {
            EngineResult::Failed(wall)
        }
    }

    /// Machine-readable outcome tag (`verified` / `failed` / `timeout`).
    pub fn outcome(&self) -> &'static str {
        match self {
            EngineResult::Verified(_) => "verified",
            EngineResult::Failed(_) => "failed",
            EngineResult::TimedOut(_) => "timeout",
        }
    }

    /// Render like the paper's plots: seconds or "timeout".
    pub fn display(&self) -> String {
        match self {
            EngineResult::Verified(d) => format!("{:.2}s", d.as_secs_f64()),
            EngineResult::Failed(d) => format!("FAILED({:.2}s)", d.as_secs_f64()),
            EngineResult::TimedOut(_) => "timeout".to_owned(),
        }
    }
}

/// One sweep row: a benchmark at one topology size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Fattree parameter.
    pub k: usize,
    /// Node count (1.25k², +1 for the hijack benchmarks).
    pub nodes: usize,
    /// Timepiece total wall time.
    pub tp: EngineResult,
    /// Median single-node check time.
    pub tp_median: Duration,
    /// 99th-percentile single-node check time.
    pub tp_p99: Duration,
    /// Monolithic baseline result (None if skipped).
    pub ms: Option<EngineResult>,
}

/// Sweep options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Per-engine time budget (the paper used 2 hours; default 60 s).
    pub timeout: Duration,
    /// Run the monolithic baseline too.
    pub run_monolithic: bool,
    /// Worker threads for the modular engine (None: all cores).
    pub threads: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { timeout: Duration::from_secs(60), run_monolithic: true, threads: None }
    }
}

/// Runs both engines on one instance and assembles a row.
pub fn run_row(kind: BenchKind, k: usize, options: &SweepOptions) -> Row {
    let inst = fattree_instance(kind, k);
    let nodes = inst.network.topology().node_count();

    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(options.timeout),
        threads: options.threads,
        ..CheckOptions::default()
    });
    let report = checker
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("benchmark instances encode");
    let stats = report.stats();
    let timed_out = report
        .failures()
        .iter()
        .any(|f| matches!(f.reason, timepiece_core::check::FailureReason::Unknown(_)));
    let tp = EngineResult::classify(report.is_verified(), timed_out, report.wall());

    let ms = monolithic_result(&inst, options);
    Row { k, nodes, tp, tp_median: stats.median, tp_p99: stats.p99, ms }
}

/// The monolithic baseline on one instance, when the options ask for it.
pub(crate) fn monolithic_result(
    inst: &timepiece_nets::BenchInstance,
    options: &SweepOptions,
) -> Option<EngineResult> {
    options.run_monolithic.then(|| {
        let mono = check_monolithic(&inst.network, &inst.property, Some(options.timeout))
            .expect("benchmark instances encode");
        match mono.outcome {
            MonolithicOutcome::Verified => EngineResult::Verified(mono.wall),
            MonolithicOutcome::Failed(_) => EngineResult::Failed(mono.wall),
            MonolithicOutcome::Unknown(_) => EngineResult::TimedOut(mono.wall),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_names() {
        for kind in BenchKind::ALL {
            assert_eq!(BenchKind::parse(kind.name()), Some(kind));
            assert!(kind.figure().starts_with("14"));
        }
        assert_eq!(BenchKind::parse("spreach"), Some(BenchKind::SpReach));
        assert_eq!(BenchKind::parse("nope"), None);
    }

    #[test]
    fn run_row_produces_verified_row_at_k4() {
        let options =
            SweepOptions { timeout: Duration::from_secs(120), run_monolithic: true, threads: None };
        let row = run_row(BenchKind::SpReach, 4, &options);
        assert_eq!(row.k, 4);
        assert_eq!(row.nodes, 20);
        assert!(matches!(row.tp, EngineResult::Verified(_)), "{row:?}");
        assert!(matches!(row.ms, Some(EngineResult::Verified(_))), "{row:?}");
        assert!(row.tp_median <= row.tp_p99);
    }

    #[test]
    fn engine_result_displays() {
        assert!(EngineResult::Verified(Duration::from_millis(1500)).display().ends_with('s'));
        assert_eq!(EngineResult::TimedOut(Duration::from_secs(1)).display(), "timeout");
        assert!(EngineResult::Failed(Duration::from_secs(1)).display().starts_with("FAILED"));
    }
}
