//! Multi-process sharding of the fattree benchmarks.
//!
//! The `Ap*` (symbolic-destination) sweeps are the expensive rows of
//! Fig. 14, and their per-node conditions are independent — so beyond the
//! in-process work-stealing pool, whole *shards* of the node set can move to
//! separate worker processes (each with its own Z3 heap and cache locality)
//! or, via [`crate::dist`], to worker processes on other hosts.
//!
//! The protocol:
//!
//! 1. the coordinator picks `(bench, k, shards)`, computes a [`ShardPlan`]
//!    — striped by class, or cost-adaptive when a fitted
//!    [`timepiece_sched::CostModel`] is available — and spawns one
//!    `repro shard-worker` subprocess per shard with its *explicit* node
//!    list and a [`PlanSpec`] describing how the plan was made;
//! 2. each worker rebuilds the *same* instance by registry name, checks
//!    exactly the nodes it was handed via `ModularChecker::check_nodes`,
//!    and prints one JSON [`ShardReport`] on stdout — the report records
//!    the plan and the assigned node list, so any shard of any run can be
//!    replayed deterministically from its report alone;
//! 3. the coordinator ingests the reports through [`merge_reports`], which
//!    *proves coverage* — the assigned sets must partition the full node
//!    set, every assigned node must carry a check duration, and duplicate
//!    or mismatched reports produce a typed [`MergeError`] naming the
//!    offending worker — and merges them into one sweep [`Row`].
//!
//! A mismatched plan therefore shows up as a hard, attributed ingestion
//! error, never as a silently skipped node.

use std::fmt;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use timepiece_core::check::{CheckOptions, CheckReport, FailureReason, ModularChecker};
use timepiece_core::stats::TimingStats;
use timepiece_sched::cost::{cost_striped, imbalance, plan_adaptive, CostModel};
use timepiece_sched::{Json, ShardPlan};
use timepiece_topology::{NodeId, Topology};

use crate::runner::{
    class_samples, fattree_instance, monolithic_result, BenchKind, EngineResult, Row, RowBalance,
    SweepOptions,
};

/// The version of the shard-report / distributed-worker protocol. Bumped on
/// any incompatible change to the report shape or the wire frames; peers
/// reject mismatches with a typed error instead of misparsing.
pub const PROTOCOL_VERSION: usize = 1;

/// How a coordinator turned the node set into shards. Travels inside every
/// [`ShardReport`] so a merged row records which planner produced it and a
/// replay can attribute imbalance to the plan that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// `striped` (class round-robin) or `adaptive` (cost-model LPT).
    pub kind: String,
    /// The per-class costs the adaptive planner used (empty for striped
    /// plans and for the uniform no-history fallback).
    pub class_costs: Vec<(String, f64)>,
    /// Labels of the trend dumps the cost model was fit on.
    pub sources: Vec<String>,
}

impl PlanSpec {
    /// The spec of a class-striped plan.
    pub fn striped() -> PlanSpec {
        PlanSpec { kind: "striped".to_owned(), class_costs: Vec::new(), sources: Vec::new() }
    }

    /// The spec of a cost-adaptive plan driven by `model`.
    pub fn adaptive(model: &CostModel) -> PlanSpec {
        PlanSpec {
            kind: "adaptive".to_owned(),
            class_costs: model.classes().map(|(c, s)| (c.to_owned(), s)).collect(),
            sources: model.sources().to_vec(),
        }
    }

    /// The spec as a JSON document (also the `--plan-spec` argument form).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(&self.kind)),
            (
                "class_costs",
                Json::arr(
                    self.class_costs
                        .iter()
                        .map(|(class, secs)| Json::arr([Json::str(class), Json::Num(*secs)])),
                ),
            ),
            ("sources", Json::arr(self.sources.iter().map(Json::str))),
        ])
    }

    /// Parses a spec back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`ShardProtocolError`] naming the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<PlanSpec, ShardProtocolError> {
        let err = |what: &str| ShardProtocolError(format!("plan {what}"));
        let kind = value.get("kind").and_then(Json::as_str).ok_or_else(|| err("kind"))?.to_owned();
        let class_costs = value
            .get("class_costs")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("class_costs"))?
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([class, secs]) => Ok((
                    class.as_str().ok_or_else(|| err("class name"))?.to_owned(),
                    secs.as_f64().ok_or_else(|| err("class cost"))?,
                )),
                _ => Err(err("class_costs entry")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let sources = value
            .get("sources")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("sources"))?
            .iter()
            .map(|s| s.as_str().map(str::to_owned).ok_or_else(|| err("sources entry")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PlanSpec { kind, class_costs, sources })
    }
}

/// Which planner a sharded row should use.
#[derive(Debug, Clone)]
pub enum PlanChoice {
    /// Class round-robin striping — the static baseline.
    Striped,
    /// Cost-model LPT bin packing (a uniform model balances sizes).
    Adaptive(CostModel),
}

/// Computes the row's shard plan under `choice`, together with the spec
/// recorded in every report and the planner's predicted per-shard seconds
/// (uniform-cost predictions for striped plans).
pub fn plan_row(
    topology: &Topology,
    shards: usize,
    choice: &PlanChoice,
) -> (ShardPlan, PlanSpec, Vec<f64>) {
    let class = |v: NodeId| topology.node_class(v).to_owned();
    match choice {
        PlanChoice::Striped => {
            let costed = cost_striped(topology.nodes(), shards, class, &CostModel::uniform());
            (costed.plan, PlanSpec::striped(), costed.predicted)
        }
        PlanChoice::Adaptive(model) => {
            let costed = plan_adaptive(topology.nodes(), shards, class, model);
            (costed.plan, PlanSpec::adaptive(model), costed.predicted)
        }
    }
}

/// The deterministic striped plan every participant can recompute: nodes
/// grouped by their stable class stem and striped round-robin across
/// shards. This is the legacy (pre-adaptive) plan, still used by workers
/// invoked without an explicit node list.
pub fn plan(topology: &Topology, shards: usize) -> ShardPlan {
    ShardPlan::by_class(topology.nodes(), shards, |v| topology.node_class(v).to_owned())
}

/// One failure, reduced to what travels between processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The failing node's name.
    pub node: String,
    /// The failing condition (`initial` / `inductive` / `safety`).
    pub vc: String,
    /// `counterexample` or `unknown` (timeout / solver give-up).
    pub kind: String,
}

/// What one shard worker verified, as reported over the process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Protocol version the worker spoke ([`PROTOCOL_VERSION`]).
    pub version: usize,
    /// Benchmark name (e.g. `ApReach`).
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count of the plan.
    pub shards: usize,
    /// How the plan that produced this shard was made.
    pub plan: PlanSpec,
    /// Names of the nodes the plan assigned to this shard.
    pub assigned: Vec<String>,
    /// Per-node check durations in seconds, one per assigned node.
    pub durations: Vec<(String, f64)>,
    /// Failures found in this shard (empty when verified).
    pub failures: Vec<ShardFailure>,
    /// The worker's wall-clock time for its shard.
    pub wall_secs: f64,
    /// The worker's span trace, when the coordinator asked for one
    /// (`--trace-spans`); the coordinator ingests it as its own
    /// pid-tagged process track.
    pub trace: Option<timepiece_trace::Trace>,
}

/// A shard report that did not parse or did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProtocolError(pub String);

impl fmt::Display for ShardProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed shard report: {}", self.0)
    }
}

impl std::error::Error for ShardProtocolError {}

impl ShardReport {
    /// Assembles a report from a completed shard check; `wall_secs` is the
    /// check's own wall time.
    #[allow(clippy::too_many_arguments)] // mirrors the wire frame field-for-field
    pub fn from_check(
        kind: BenchKind,
        k: usize,
        shard: usize,
        shards: usize,
        plan: PlanSpec,
        topology: &Topology,
        assigned: &[NodeId],
        report: &CheckReport,
    ) -> ShardReport {
        ShardReport {
            version: PROTOCOL_VERSION,
            bench: kind.name().to_owned(),
            k,
            shard,
            shards,
            plan,
            assigned: assigned.iter().map(|&v| topology.name(v).to_owned()).collect(),
            durations: report
                .node_durations()
                .iter()
                .map(|&(v, d)| (topology.name(v).to_owned(), d.as_secs_f64()))
                .collect(),
            failures: report
                .failures()
                .iter()
                .map(|f| ShardFailure {
                    node: f.node_name.clone(),
                    vc: f.vc.to_string(),
                    kind: match f.reason {
                        FailureReason::CounterExample(_) => "counterexample".to_owned(),
                        FailureReason::Unknown(_) => "unknown".to_owned(),
                    },
                })
                .collect(),
            wall_secs: report.wall().as_secs_f64(),
            trace: None,
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(self.version)),
            ("bench", Json::str(&self.bench)),
            ("k", Json::from(self.k)),
            ("shard", Json::from(self.shard)),
            ("shards", Json::from(self.shards)),
            ("plan", self.plan.to_json()),
            ("assigned", Json::arr(self.assigned.iter().map(Json::str))),
            (
                "durations",
                Json::arr(
                    self.durations
                        .iter()
                        .map(|(name, secs)| Json::arr([Json::str(name), Json::Num(*secs)])),
                ),
            ),
            (
                "failures",
                Json::arr(self.failures.iter().map(|f| {
                    Json::obj([
                        ("node", Json::str(&f.node)),
                        ("vc", Json::str(&f.vc)),
                        ("kind", Json::str(&f.kind)),
                    ])
                })),
            ),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("trace", self.trace.as_ref().map_or(Json::Null, timepiece_trace::trace_to_json)),
        ])
    }

    /// Parses a report back from its JSON form. Reports from peers predating
    /// the versioned protocol (no `version` / `plan` fields) parse as
    /// version 0 with a striped plan, so the coordinator's version check can
    /// name the mismatch instead of a field error masking it.
    ///
    /// # Errors
    ///
    /// [`ShardProtocolError`] naming the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<ShardReport, ShardProtocolError> {
        let err = |what: &str| ShardProtocolError(what.to_owned());
        let str_field = |key: &str| {
            value.get(key).and_then(Json::as_str).map(str::to_owned).ok_or_else(|| err(key))
        };
        let usize_field =
            |key: &str| value.get(key).and_then(Json::as_usize).ok_or_else(|| err(key));
        let assigned = value
            .get("assigned")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("assigned"))?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| err("assigned entry")))
            .collect::<Result<Vec<_>, _>>()?;
        let durations = value
            .get("durations")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("durations"))?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or_else(|| err("duration entry"))?;
                match pair {
                    [name, secs] => Ok((
                        name.as_str().ok_or_else(|| err("duration name"))?.to_owned(),
                        secs.as_f64().ok_or_else(|| err("duration secs"))?,
                    )),
                    _ => Err(err("duration entry arity")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let failures = value
            .get("failures")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("failures"))?
            .iter()
            .map(|f| {
                Ok(ShardFailure {
                    node: f
                        .get("node")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure node"))?
                        .to_owned(),
                    vc: f
                        .get("vc")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure vc"))?
                        .to_owned(),
                    kind: f
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure kind"))?
                        .to_owned(),
                })
            })
            .collect::<Result<Vec<_>, ShardProtocolError>>()?;
        Ok(ShardReport {
            version: match value.get("version") {
                None => 0,
                Some(v) => v.as_usize().ok_or_else(|| err("version"))?,
            },
            bench: str_field("bench")?,
            k: usize_field("k")?,
            shard: usize_field("shard")?,
            shards: usize_field("shards")?,
            plan: match value.get("plan") {
                None | Some(Json::Null) => PlanSpec::striped(),
                Some(v) => PlanSpec::from_json(v)?,
            },
            assigned,
            durations,
            failures,
            wall_secs: value
                .get("wall_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| err("wall_secs"))?,
            // absent and null both mean "worker did not trace" — older
            // reports simply lack the field
            trace: match value.get("trace") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    timepiece_trace::trace_from_json(v).map_err(|e| err(&format!("trace: {e}")))?,
                ),
            },
        })
    }
}

/// Why a set of shard reports could not be merged into a row. Every variant
/// names the worker that produced the offending report, so a broken peer in
/// a multi-host sweep is attributable from the error alone.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// A report frame did not parse (malformed or truncated JSON).
    Protocol {
        /// The worker whose output failed to parse.
        worker: String,
        /// The parse failure.
        detail: String,
    },
    /// A report spoke a different protocol version.
    VersionMismatch {
        /// The worker that sent the report.
        worker: String,
        /// The coordinator's version.
        expected: usize,
        /// The report's version.
        got: usize,
    },
    /// A report was for the wrong `(bench, k)` or total shard count.
    WrongInstance {
        /// The worker that sent the report.
        worker: String,
        /// `bench k=K shards=N` the coordinator expected.
        expected: String,
        /// What the report claimed.
        got: String,
    },
    /// A report's plan kind differs from the plan the coordinator computed.
    PlanMismatch {
        /// The worker that sent the report.
        worker: String,
        /// The coordinator's plan kind.
        expected: String,
        /// The report's plan kind.
        got: String,
    },
    /// Two reports claimed the same shard index.
    DuplicateShard {
        /// The worker whose report collided.
        worker: String,
        /// The worker that already reported this shard.
        earlier: String,
        /// The contested shard index.
        shard: usize,
    },
    /// A report's shard index exceeds the plan.
    ShardOutOfRange {
        /// The worker that sent the report.
        worker: String,
        /// The offending index.
        shard: usize,
        /// The plan's shard count.
        shards: usize,
    },
    /// A shard is missing entirely (its worker died and nobody re-ran it).
    MissingShards {
        /// The unreported shard indices.
        shards: Vec<usize>,
    },
    /// The union of assigned sets does not partition the node set.
    Coverage {
        /// What went wrong (doubly assigned / missing / foreign nodes).
        detail: String,
    },
    /// A worker reported assigned nodes it never checked.
    SkippedNodes {
        /// The worker that skipped work.
        worker: String,
        /// Its shard index.
        shard: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Protocol { worker, detail } => {
                write!(f, "worker {worker}: unreadable shard report: {detail}")
            }
            MergeError::VersionMismatch { worker, expected, got } => {
                write!(f, "worker {worker}: protocol version {got}, coordinator speaks {expected}")
            }
            MergeError::WrongInstance { worker, expected, got } => {
                write!(
                    f,
                    "worker {worker}: checked the wrong instance: expected {expected}, got {got}"
                )
            }
            MergeError::PlanMismatch { worker, expected, got } => {
                write!(f, "worker {worker}: plan kind {got:?} does not match the coordinator's {expected:?}")
            }
            MergeError::DuplicateShard { worker, earlier, shard } => {
                write!(f, "worker {worker}: shard {shard} already reported by worker {earlier}")
            }
            MergeError::ShardOutOfRange { worker, shard, shards } => {
                write!(f, "worker {worker}: shard index {shard} out of range ({shards} shards)")
            }
            MergeError::MissingShards { shards } => {
                write!(f, "no worker reported shard(s) {shards:?}")
            }
            MergeError::Coverage { detail } => write!(f, "coverage violation: {detail}"),
            MergeError::SkippedNodes { worker, shard } => {
                write!(f, "worker {worker}: shard {shard} skipped assigned nodes")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// The verified union of a row's shard reports, ready to become a [`Row`].
#[derive(Debug, Clone)]
pub struct MergedShards {
    /// Every node's check duration, across all shards.
    pub durations: Vec<(String, f64)>,
    /// Worker wall seconds per shard index.
    pub shard_secs: Vec<f64>,
    /// Did any shard report an `unknown` (timeout) failure?
    pub timed_out: bool,
    /// Did every shard verify?
    pub verified: bool,
    /// Names of nodes with at least one failed condition, sorted and
    /// deduplicated across shards (empty when `verified`).
    pub failing: Vec<String>,
}

/// Validates and merges labelled shard reports — `(worker label, report)`
/// pairs — against the coordinator's expectations.
///
/// # Errors
///
/// A [`MergeError`] naming the offending worker when a report is for the
/// wrong instance/version/plan, a shard is duplicated, missing or out of
/// range, the assigned sets fail to partition `topology`'s node set, or a
/// worker skipped assigned nodes.
pub fn merge_reports(
    kind: BenchKind,
    k: usize,
    shards: usize,
    plan_kind: &str,
    topology: &Topology,
    reports: &[(String, ShardReport)],
) -> Result<MergedShards, MergeError> {
    let mut seen: Vec<Option<&str>> = vec![None; shards];
    for (worker, report) in reports {
        if report.version != PROTOCOL_VERSION {
            return Err(MergeError::VersionMismatch {
                worker: worker.clone(),
                expected: PROTOCOL_VERSION,
                got: report.version,
            });
        }
        if (report.bench.as_str(), report.k, report.shards) != (kind.name(), k, shards) {
            return Err(MergeError::WrongInstance {
                worker: worker.clone(),
                expected: format!("{} k={k} shards={shards}", kind.name()),
                got: format!("{} k={} shards={}", report.bench, report.k, report.shards),
            });
        }
        if report.plan.kind != plan_kind {
            return Err(MergeError::PlanMismatch {
                worker: worker.clone(),
                expected: plan_kind.to_owned(),
                got: report.plan.kind.clone(),
            });
        }
        if report.shard >= shards {
            return Err(MergeError::ShardOutOfRange {
                worker: worker.clone(),
                shard: report.shard,
                shards,
            });
        }
        if let Some(earlier) = seen[report.shard] {
            return Err(MergeError::DuplicateShard {
                worker: worker.clone(),
                earlier: earlier.to_owned(),
                shard: report.shard,
            });
        }
        seen[report.shard] = Some(worker);
    }
    let missing: Vec<usize> =
        seen.iter().enumerate().filter(|(_, w)| w.is_none()).map(|(s, _)| s).collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards { shards: missing });
    }

    // coverage: the assigned sets partition the node set…
    let mut assigned: Vec<&str> =
        reports.iter().flat_map(|(_, r)| r.assigned.iter().map(String::as_str)).collect();
    let total_assigned = assigned.len();
    assigned.sort_unstable();
    assigned.dedup();
    let mut all: Vec<&str> = topology.nodes().map(|v| topology.name(v)).collect();
    all.sort_unstable();
    if total_assigned != assigned.len() {
        return Err(MergeError::Coverage {
            detail: "a node was assigned to two shards".to_owned(),
        });
    }
    if assigned != all {
        return Err(MergeError::Coverage {
            detail: "the shards' assigned sets do not cover every node exactly once".to_owned(),
        });
    }
    // …and every assigned node was actually checked: the checked multiset
    // must equal the assignment, so a worker reporting a duplicate duration
    // alongside a skipped node cannot pass on cardinality alone
    for (worker, report) in reports {
        let mut checked: Vec<&str> =
            report.durations.iter().map(|(name, _)| name.as_str()).collect();
        checked.sort_unstable();
        let mut expected: Vec<&str> = report.assigned.iter().map(String::as_str).collect();
        expected.sort_unstable();
        if checked != expected {
            return Err(MergeError::SkippedNodes { worker: worker.clone(), shard: report.shard });
        }
    }

    let mut shard_secs = vec![0.0; shards];
    for (_, report) in reports {
        shard_secs[report.shard] = report.wall_secs;
    }
    let mut failing: Vec<String> =
        reports.iter().flat_map(|(_, r)| r.failures.iter().map(|f| f.node.clone())).collect();
    failing.sort_unstable();
    failing.dedup();
    Ok(MergedShards {
        durations: reports.iter().flat_map(|(_, r)| r.durations.iter().cloned()).collect(),
        shard_secs,
        timed_out: reports.iter().flat_map(|(_, r)| &r.failures).any(|f| f.kind == "unknown"),
        verified: reports.iter().all(|(_, r)| r.failures.is_empty()),
        failing,
    })
}

/// The worker side for an explicit node set: rebuild the instance, check
/// exactly `nodes`, and report. This is both the forked worker's path (the
/// coordinator hands it the plan's node list) and the deterministic replay
/// path (`repro shard-worker --nodes ...` with the `assigned` list of any
/// recorded [`ShardReport`]).
pub fn run_shard_nodes(
    kind: BenchKind,
    k: usize,
    shard: usize,
    shards: usize,
    plan_spec: PlanSpec,
    nodes: &[NodeId],
    options: &SweepOptions,
) -> ShardReport {
    let inst = fattree_instance(kind, k);
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(options.timeout),
        threads: options.threads,
        ..CheckOptions::default()
    });
    let report = checker
        .check_nodes(&inst.network, &inst.interface, &inst.property, nodes)
        .expect("benchmark instances encode");
    let mut report = ShardReport::from_check(
        kind,
        k,
        shard,
        shards,
        plan_spec,
        inst.network.topology(),
        nodes,
        &report,
    );
    if timepiece_trace::enabled() {
        report.trace = Some(timepiece_trace::take());
    }
    report
}

/// The legacy worker side: recompute the deterministic *striped* plan and
/// check this shard of it. Kept for workers invoked without an explicit
/// node list (`repro shard-worker` without `--nodes`).
pub fn run_shard(
    kind: BenchKind,
    k: usize,
    shard: usize,
    shards: usize,
    options: &SweepOptions,
) -> ShardReport {
    let inst = fattree_instance(kind, k);
    let plan = plan(inst.network.topology(), shards);
    assert!(shard < plan.shard_count(), "shard index {shard} out of range ({shards} shards)");
    let nodes = plan.nodes_of(shard).to_vec();
    run_shard_nodes(kind, k, shard, shards, PlanSpec::striped(), &nodes, options)
}

/// The coordinator side: fork one `shard-worker` subprocess per shard of
/// the chosen plan, merge their reports into one sweep [`Row`], and *verify
/// full coverage* through [`merge_reports`].
///
/// `worker_exe` is the binary to spawn (the `repro` binary spawns itself).
/// The monolithic baseline, when enabled, runs in-process: it cannot shard.
///
/// Thread budget: with `options.threads = None` the machine's parallelism
/// is divided across shards. An *explicit* thread count is forwarded to
/// every worker unchanged — it means "threads per shard", so `--shards 4
/// --threads 4` deliberately runs 16 solver threads; divide it yourself
/// when benchmarking all shards on one host.
///
/// # Panics
///
/// Panics when a worker exits nonzero or the merged reports fail
/// validation — the [`MergeError`] (naming the offending worker) is the
/// panic message; a sharding bug must never pass silently as a smaller
/// verification.
pub fn run_row_sharded(
    kind: BenchKind,
    k: usize,
    options: &SweepOptions,
    shards: usize,
    worker_exe: &Path,
    choice: &PlanChoice,
) -> Row {
    assert!(shards >= 1, "need at least one shard");
    let arena_before = timepiece_expr::arena::stats();
    let inst = fattree_instance(kind, k);
    let topology = inst.network.topology();
    let (plan, spec, _predicted) = plan_row(topology, shards, choice);
    let spec_arg = spec.to_json().to_string();

    // a coordinator panic (worker failure, bad report, coverage violation)
    // must not orphan the sibling workers mid-solve: guards kill any child
    // not yet reaped when the stack unwinds
    struct KillOnDrop(Option<std::process::Child>);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            if let Some(child) = &mut self.0 {
                let _ = child.kill();
            }
        }
    }

    // each worker gets an explicit thread budget: the caller's choice when
    // given, otherwise the machine's parallelism *divided across shards* —
    // N workers each defaulting to all cores would oversubscribe the CPU
    // N-fold and measure contention instead of sharding
    let worker_threads = options.threads.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (cores / shards).max(1)
    });
    let start = Instant::now();
    let mut children: Vec<KillOnDrop> = (0..shards)
        .map(|shard| {
            let nodes: Vec<&str> = plan.nodes_of(shard).iter().map(|&v| topology.name(v)).collect();
            let mut cmd = Command::new(worker_exe);
            cmd.arg("shard-worker")
                .args(["--bench", kind.name()])
                .args(["--k", &k.to_string()])
                .args(["--shard", &shard.to_string()])
                .args(["--shards", &shards.to_string()])
                .args(["--nodes", &nodes.join(",")])
                .args(["--plan-spec", &spec_arg])
                // millisecond precision: whole seconds would truncate a
                // sub-second budget to an effectively zero solver timeout
                .args(["--timeout-millis", &options.timeout.as_millis().to_string()])
                .args(["--threads", &worker_threads.to_string()]);
            if let Some(path) = kind.scenario_file() {
                // file scenarios are not in the worker's seed registry; it
                // recompiles the same file before resolving --bench
                cmd.args(["--scenario-file", path]);
            }
            if timepiece_trace::enabled() {
                // the worker collects its own spans and ships them back in
                // the report; the coordinator merges them as its track
                cmd.arg("--trace-spans");
            }
            cmd.stdout(Stdio::piped());
            KillOnDrop(Some(
                cmd.spawn().unwrap_or_else(|e| panic!("spawning shard worker {shard}: {e}")),
            ))
        })
        .collect();
    let reports: Vec<(String, ShardReport)> = children
        .iter_mut()
        .enumerate()
        .map(|(shard, guard)| {
            let worker = format!("fork{shard}");
            let child = guard.0.take().expect("child not yet reaped");
            let out = child.wait_with_output().expect("waiting for shard worker");
            assert!(out.status.success(), "shard worker {shard} failed: {}", out.status);
            let text = String::from_utf8(out.stdout).expect("shard report is UTF-8");
            let json = Json::parse(&text).unwrap_or_else(|e| {
                panic!("{}", MergeError::Protocol { worker: worker.clone(), detail: e.to_string() })
            });
            let mut report = ShardReport::from_json(&json).unwrap_or_else(|e| {
                panic!("{}", MergeError::Protocol { worker: worker.clone(), detail: e.to_string() })
            });
            if let Some(trace) = report.trace.take() {
                timepiece_trace::ingest(format!("shard{shard}"), trace);
            }
            (worker, report)
        })
        .collect();
    let wall = start.elapsed();

    let merged = merge_reports(kind, k, shards, &spec.kind, topology, &reports)
        .unwrap_or_else(|e| panic!("{e}"));

    let durations: Vec<Duration> =
        merged.durations.iter().map(|&(_, secs)| Duration::from_secs_f64(secs)).collect();
    let stats = TimingStats::from_durations(&durations);
    let tp = EngineResult::classify(merged.verified, merged.timed_out, wall);
    let ms = monolithic_result(&inst, options);
    Row {
        k,
        nodes: topology.node_count(),
        tp,
        tp_median: stats.median,
        tp_p99: stats.p99,
        ms,
        // coordinator-side traffic only: each worker process has its own
        // arena and encoder caches, and those die with the worker
        arena: timepiece_expr::arena::stats().delta_since(&arena_before),
        terms: None,
        classes: class_samples(topology, &merged.durations),
        balance: Some(RowBalance {
            plan: spec.kind.clone(),
            shard_secs: merged.shard_secs,
            steal_batches: 0,
            stolen_shards: 0,
            reassigned: 0,
        }),
        failing: merged.failing,
    }
}

/// `max / mean` over measured shard wall seconds — re-exported view of
/// [`timepiece_sched::cost::imbalance`] for report consumers.
pub fn shard_imbalance(shard_secs: &[f64]) -> f64 {
    imbalance(shard_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(shard: usize, shards: usize) -> ShardReport {
        ShardReport {
            version: PROTOCOL_VERSION,
            bench: "ApReach".to_owned(),
            k: 4,
            shard,
            shards,
            plan: PlanSpec::striped(),
            assigned: vec!["core-0".to_owned(), "edge-1-0".to_owned()],
            durations: vec![("core-0".to_owned(), 0.25), ("edge-1-0".to_owned(), 0.125)],
            failures: vec![ShardFailure {
                node: "edge-1-0".to_owned(),
                vc: "inductive".to_owned(),
                kind: "counterexample".to_owned(),
            }],
            wall_secs: 0.5,
            trace: None,
        }
    }

    #[test]
    fn plans_are_deterministic_and_cover_the_fattree() {
        let inst = fattree_instance(BenchKind::parse("ApReach").unwrap(), 4);
        let g = inst.network.topology();
        let a = plan(g, 3);
        let b = plan(g, 3);
        assert_eq!(a, b);
        assert!(a.covers(g.nodes()));
        // class striping balances shard sizes within one node
        let sizes: Vec<usize> = (0..3).map(|s| a.nodes_of(s).len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn plan_row_adaptive_covers_and_records_the_model() {
        let inst = fattree_instance(BenchKind::parse("SpReach").unwrap(), 4);
        let g = inst.network.topology();
        let model = CostModel::fit(
            [("core".to_owned(), 2.0), ("agg".to_owned(), 1.0), ("edge".to_owned(), 0.5)],
            ["h1".to_owned()],
        );
        let (plan, spec, predicted) = plan_row(g, 3, &PlanChoice::Adaptive(model));
        assert!(plan.covers(g.nodes()));
        assert_eq!(spec.kind, "adaptive");
        assert_eq!(spec.sources, ["h1".to_owned()]);
        assert_eq!(spec.class_costs.len(), 3);
        assert_eq!(predicted.len(), 3);
        // round-trip the spec as it travels to workers
        let parsed = PlanSpec::from_json(&Json::parse(&spec.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), spec);
    }

    #[test]
    fn shard_report_roundtrips_through_json() {
        let report = sample_report(1, 3);
        let parsed = ShardReport::from_json(&Json::parse(&report.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), report);
    }

    #[test]
    fn shard_report_carries_its_trace_through_json() {
        use timepiece_trace::{Phase, SpanKind, SpanRecord, ThreadInfo, Trace};
        let report = ShardReport {
            version: PROTOCOL_VERSION,
            bench: "SpReach".to_owned(),
            k: 4,
            shard: 0,
            shards: 2,
            plan: PlanSpec::striped(),
            assigned: vec!["core-0".to_owned()],
            durations: vec![("core-0".to_owned(), 0.25)],
            failures: vec![],
            wall_secs: 0.25,
            trace: Some(Trace {
                spans: vec![SpanRecord {
                    id: 1,
                    parent: 0,
                    kind: SpanKind::Complete,
                    phase: Phase::Node,
                    name: "core-0".to_owned(),
                    start_ns: 10,
                    dur_ns: 250,
                    pid: 0,
                    tid: 3,
                    args: vec![("class".to_owned(), "core".to_owned())],
                }],
                threads: vec![ThreadInfo { pid: 0, tid: 3, label: "worker0".to_owned() }],
                processes: vec![],
            }),
        };
        let parsed = ShardReport::from_json(&Json::parse(&report.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), report);
    }

    #[test]
    fn malformed_reports_are_rejected_with_the_field_name() {
        let json = Json::parse(r#"{"bench":"ApReach","k":4}"#).unwrap();
        let err = ShardReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn preversion_reports_parse_as_version_zero() {
        let mut report = sample_report(0, 1);
        report.trace = None;
        let Json::Obj(pairs) = report.to_json() else { panic!("report is an object") };
        let stripped =
            Json::Obj(pairs.into_iter().filter(|(k, _)| k != "version" && k != "plan").collect());
        let parsed = ShardReport::from_json(&stripped).unwrap();
        assert_eq!(parsed.version, 0);
        assert_eq!(parsed.plan, PlanSpec::striped());
    }

    #[test]
    fn worker_checks_exactly_its_shard() {
        let report = run_shard(
            BenchKind::parse("SpReach").unwrap(),
            4,
            0,
            2,
            &SweepOptions { run_monolithic: false, ..SweepOptions::default() },
        );
        let inst = fattree_instance(BenchKind::parse("SpReach").unwrap(), 4);
        let expected = plan(inst.network.topology(), 2);
        assert_eq!(report.assigned.len(), expected.nodes_of(0).len());
        assert_eq!(report.durations.len(), report.assigned.len());
        assert!(report.failures.is_empty(), "SpReach k=4 verifies");
        assert_eq!(report.version, PROTOCOL_VERSION);
        assert_eq!(report.plan, PlanSpec::striped());
        // the two shards of a 20-node fattree split 10/10
        assert_eq!(report.assigned.len(), 10);
    }

    /// The ingestion-hardening suite: every broken report shape must produce
    /// a typed [`MergeError`] naming the offending worker — never a panic.
    mod ingestion {
        use super::*;

        fn kind() -> BenchKind {
            BenchKind::parse("SpReach").unwrap()
        }

        fn topology() -> Topology {
            fattree_instance(kind(), 4).network.topology().clone()
        }

        /// Two honest striped-shard reports covering SpReach k=4.
        fn good_pair() -> Vec<(String, ShardReport)> {
            let options = SweepOptions { run_monolithic: false, ..SweepOptions::default() };
            (0..2).map(|s| (format!("w{s}"), run_shard(kind(), 4, s, 2, &options))).collect()
        }

        #[test]
        fn honest_reports_merge() {
            let reports = good_pair();
            let merged = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap();
            assert!(merged.verified && !merged.timed_out);
            assert_eq!(merged.durations.len(), 20);
            assert_eq!(merged.shard_secs.len(), 2);
            assert!(merged.shard_secs.iter().all(|&s| s > 0.0));
        }

        #[test]
        fn truncated_frames_are_typed_protocol_errors() {
            // a report cut off mid-stream parses to a JSON error; ingestion
            // wraps it as a Protocol error naming the worker
            let full = sample_report(0, 1).to_json().to_string();
            let truncated = &full[..full.len() / 2];
            let parse_err = Json::parse(truncated).unwrap_err();
            let err = MergeError::Protocol {
                worker: "tcp:9001".to_owned(),
                detail: parse_err.to_string(),
            };
            assert!(err.to_string().contains("tcp:9001"), "{err}");
            assert!(err.to_string().contains("unreadable"), "{err}");
        }

        #[test]
        fn wrong_shard_count_names_the_worker() {
            let mut reports = good_pair();
            reports[1].1.shards = 3;
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(
                matches!(&err, MergeError::WrongInstance { worker, .. } if worker == "w1"),
                "{err}"
            );
            assert!(err.to_string().contains("w1"), "{err}");
        }

        #[test]
        fn duplicate_shard_index_names_both_workers() {
            let mut reports = good_pair();
            reports[1].1.shard = 0;
            reports[1].1.assigned = reports[0].1.assigned.clone();
            reports[1].1.durations = reports[0].1.durations.clone();
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert_eq!(
                err,
                MergeError::DuplicateShard {
                    worker: "w1".to_owned(),
                    earlier: "w0".to_owned(),
                    shard: 0
                },
                "{err}"
            );
        }

        #[test]
        fn version_and_plan_mismatches_are_typed() {
            let mut reports = good_pair();
            reports[0].1.version = PROTOCOL_VERSION + 1;
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(
                matches!(&err, MergeError::VersionMismatch { worker, .. } if worker == "w0"),
                "{err}"
            );

            let mut reports = good_pair();
            reports[1].1.plan.kind = "adaptive".to_owned();
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(
                matches!(&err, MergeError::PlanMismatch { worker, .. } if worker == "w1"),
                "{err}"
            );
        }

        #[test]
        fn missing_out_of_range_and_skipped_shards_are_typed() {
            let reports = good_pair();
            let err =
                merge_reports(kind(), 4, 2, "striped", &topology(), &reports[..1]).unwrap_err();
            assert_eq!(err, MergeError::MissingShards { shards: vec![1] }, "{err}");

            let mut reports = good_pair();
            reports[1].1.shard = 7;
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(
                matches!(&err, MergeError::ShardOutOfRange { worker, shard: 7, .. } if worker == "w1"),
                "{err}"
            );

            let mut reports = good_pair();
            reports[0].1.durations.pop();
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(
                matches!(&err, MergeError::SkippedNodes { worker, shard: 0 } if worker == "w0"),
                "{err}"
            );
        }

        #[test]
        fn coverage_violations_are_typed() {
            let mut reports = good_pair();
            // a node assigned (and "checked") by both shards
            let stolen = reports[0].1.assigned[0].clone();
            reports[1].1.assigned.push(stolen.clone());
            reports[1].1.durations.push((stolen, 0.01));
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(matches!(&err, MergeError::Coverage { .. }), "{err}");

            let mut reports = good_pair();
            // a node silently dropped from the plan
            reports[1].1.assigned.pop();
            reports[1].1.durations.pop();
            let err = merge_reports(kind(), 4, 2, "striped", &topology(), &reports).unwrap_err();
            assert!(matches!(&err, MergeError::Coverage { .. }), "{err}");
        }
    }
}
