//! Multi-process sharding of the fattree benchmarks.
//!
//! The `Ap*` (symbolic-destination) sweeps are the expensive rows of
//! Fig. 14, and their per-node conditions are independent — so beyond the
//! in-process work-stealing pool, whole *shards* of the node set can move to
//! separate worker processes (each with its own Z3 heap and cache locality).
//!
//! The protocol is deliberately stateless:
//!
//! 1. the coordinator picks `(bench, k, shards)` and spawns one
//!    `repro shard-worker` subprocess per shard index;
//! 2. each worker rebuilds the *same* instance and the same deterministic
//!    [`ShardPlan`] (nodes grouped by `Topology::node_class`, striped across
//!    shards), checks its shard via `ModularChecker::check_nodes`, and
//!    prints one JSON [`ShardReport`] on stdout;
//! 3. the coordinator parses the reports, *proves coverage* — the assigned
//!    sets must partition the full node set, and every assigned node must
//!    carry a check duration — and merges them into one sweep [`Row`].
//!
//! Nothing but the shard index crosses the process boundary on the way in,
//! so a mismatched plan shows up as a hard coverage failure, not a silently
//! skipped node.

use std::fmt;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use timepiece_core::check::{CheckOptions, CheckReport, FailureReason, ModularChecker};
use timepiece_core::stats::TimingStats;
use timepiece_sched::{Json, ShardPlan};
use timepiece_topology::Topology;

use crate::runner::{
    fattree_instance, monolithic_result, BenchKind, EngineResult, Row, SweepOptions,
};

/// The deterministic shard plan every participant recomputes: nodes grouped
/// by their stable class stem and striped round-robin across shards, so each
/// shard receives the same mix of cheap (edge) and expensive (aggregation)
/// nodes.
pub fn plan(topology: &Topology, shards: usize) -> ShardPlan {
    ShardPlan::by_class(topology.nodes(), shards, |v| topology.node_class(v).to_owned())
}

/// One failure, reduced to what travels between processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The failing node's name.
    pub node: String,
    /// The failing condition (`initial` / `inductive` / `safety`).
    pub vc: String,
    /// `counterexample` or `unknown` (timeout / solver give-up).
    pub kind: String,
}

/// What one shard worker verified, as reported over the process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Benchmark name (e.g. `ApReach`).
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count of the plan.
    pub shards: usize,
    /// Names of the nodes the plan assigned to this shard.
    pub assigned: Vec<String>,
    /// Per-node check durations in seconds, one per assigned node.
    pub durations: Vec<(String, f64)>,
    /// Failures found in this shard (empty when verified).
    pub failures: Vec<ShardFailure>,
    /// The worker's wall-clock time for its shard.
    pub wall_secs: f64,
    /// The worker's span trace, when the coordinator asked for one
    /// (`--trace-spans`); the coordinator ingests it as its own
    /// pid-tagged process track.
    pub trace: Option<timepiece_trace::Trace>,
}

/// A shard report that did not parse or did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProtocolError(pub String);

impl fmt::Display for ShardProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed shard report: {}", self.0)
    }
}

impl std::error::Error for ShardProtocolError {}

impl ShardReport {
    /// Assembles a report from a completed shard check; `wall_secs` is the
    /// check's own wall time.
    pub fn from_check(
        kind: BenchKind,
        k: usize,
        shard: usize,
        shards: usize,
        topology: &Topology,
        assigned: &[timepiece_topology::NodeId],
        report: &CheckReport,
    ) -> ShardReport {
        ShardReport {
            bench: kind.name().to_owned(),
            k,
            shard,
            shards,
            assigned: assigned.iter().map(|&v| topology.name(v).to_owned()).collect(),
            durations: report
                .node_durations()
                .iter()
                .map(|&(v, d)| (topology.name(v).to_owned(), d.as_secs_f64()))
                .collect(),
            failures: report
                .failures()
                .iter()
                .map(|f| ShardFailure {
                    node: f.node_name.clone(),
                    vc: f.vc.to_string(),
                    kind: match f.reason {
                        FailureReason::CounterExample(_) => "counterexample".to_owned(),
                        FailureReason::Unknown(_) => "unknown".to_owned(),
                    },
                })
                .collect(),
            wall_secs: report.wall().as_secs_f64(),
            trace: None,
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(&self.bench)),
            ("k", Json::from(self.k)),
            ("shard", Json::from(self.shard)),
            ("shards", Json::from(self.shards)),
            ("assigned", Json::arr(self.assigned.iter().map(Json::str))),
            (
                "durations",
                Json::arr(
                    self.durations
                        .iter()
                        .map(|(name, secs)| Json::arr([Json::str(name), Json::Num(*secs)])),
                ),
            ),
            (
                "failures",
                Json::arr(self.failures.iter().map(|f| {
                    Json::obj([
                        ("node", Json::str(&f.node)),
                        ("vc", Json::str(&f.vc)),
                        ("kind", Json::str(&f.kind)),
                    ])
                })),
            ),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("trace", self.trace.as_ref().map_or(Json::Null, timepiece_trace::trace_to_json)),
        ])
    }

    /// Parses a report back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`ShardProtocolError`] naming the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<ShardReport, ShardProtocolError> {
        let err = |what: &str| ShardProtocolError(what.to_owned());
        let str_field = |key: &str| {
            value.get(key).and_then(Json::as_str).map(str::to_owned).ok_or_else(|| err(key))
        };
        let usize_field =
            |key: &str| value.get(key).and_then(Json::as_usize).ok_or_else(|| err(key));
        let assigned = value
            .get("assigned")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("assigned"))?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| err("assigned entry")))
            .collect::<Result<Vec<_>, _>>()?;
        let durations = value
            .get("durations")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("durations"))?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or_else(|| err("duration entry"))?;
                match pair {
                    [name, secs] => Ok((
                        name.as_str().ok_or_else(|| err("duration name"))?.to_owned(),
                        secs.as_f64().ok_or_else(|| err("duration secs"))?,
                    )),
                    _ => Err(err("duration entry arity")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let failures = value
            .get("failures")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("failures"))?
            .iter()
            .map(|f| {
                Ok(ShardFailure {
                    node: f
                        .get("node")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure node"))?
                        .to_owned(),
                    vc: f
                        .get("vc")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure vc"))?
                        .to_owned(),
                    kind: f
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("failure kind"))?
                        .to_owned(),
                })
            })
            .collect::<Result<Vec<_>, ShardProtocolError>>()?;
        Ok(ShardReport {
            bench: str_field("bench")?,
            k: usize_field("k")?,
            shard: usize_field("shard")?,
            shards: usize_field("shards")?,
            assigned,
            durations,
            failures,
            wall_secs: value
                .get("wall_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| err("wall_secs"))?,
            // absent and null both mean "worker did not trace" — older
            // reports simply lack the field
            trace: match value.get("trace") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    timepiece_trace::trace_from_json(v).map_err(|e| err(&format!("trace: {e}")))?,
                ),
            },
        })
    }
}

/// The worker side: rebuild the instance, recompute the plan, check exactly
/// this shard's nodes, and report.
pub fn run_shard(
    kind: BenchKind,
    k: usize,
    shard: usize,
    shards: usize,
    options: &SweepOptions,
) -> ShardReport {
    let inst = fattree_instance(kind, k);
    let plan = plan(inst.network.topology(), shards);
    assert!(shard < plan.shard_count(), "shard index {shard} out of range ({shards} shards)");
    let nodes = plan.nodes_of(shard);
    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(options.timeout),
        threads: options.threads,
        ..CheckOptions::default()
    });
    let report = checker
        .check_nodes(&inst.network, &inst.interface, &inst.property, nodes)
        .expect("benchmark instances encode");
    let mut report =
        ShardReport::from_check(kind, k, shard, shards, inst.network.topology(), nodes, &report);
    if timepiece_trace::enabled() {
        report.trace = Some(timepiece_trace::take());
    }
    report
}

/// The coordinator side: fork one `shard-worker` subprocess per shard, merge
/// their reports into one sweep [`Row`], and *verify full coverage* — the
/// shards' assigned sets must partition the node set and every assigned node
/// must have been checked.
///
/// `worker_exe` is the binary to spawn (the `repro` binary spawns itself).
/// The monolithic baseline, when enabled, runs in-process: it cannot shard.
///
/// Thread budget: with `options.threads = None` the machine's parallelism
/// is divided across shards. An *explicit* thread count is forwarded to
/// every worker unchanged — it means "threads per shard", so `--shards 4
/// --threads 4` deliberately runs 16 solver threads; divide it yourself
/// when benchmarking all shards on one host.
///
/// # Panics
///
/// Panics when a worker exits nonzero, emits an unparsable report, or the
/// merged reports fail the coverage check — a sharding bug must never pass
/// silently as a smaller verification.
pub fn run_row_sharded(
    kind: BenchKind,
    k: usize,
    options: &SweepOptions,
    shards: usize,
    worker_exe: &Path,
) -> Row {
    assert!(shards >= 1, "need at least one shard");
    let arena_before = timepiece_expr::arena::stats();
    let inst = fattree_instance(kind, k);
    let topology = inst.network.topology();

    // a coordinator panic (worker failure, bad report, coverage violation)
    // must not orphan the sibling workers mid-solve: guards kill any child
    // not yet reaped when the stack unwinds
    struct KillOnDrop(Option<std::process::Child>);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            if let Some(child) = &mut self.0 {
                let _ = child.kill();
            }
        }
    }

    // each worker gets an explicit thread budget: the caller's choice when
    // given, otherwise the machine's parallelism *divided across shards* —
    // N workers each defaulting to all cores would oversubscribe the CPU
    // N-fold and measure contention instead of sharding
    let worker_threads = options.threads.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (cores / shards).max(1)
    });
    let start = Instant::now();
    let mut children: Vec<KillOnDrop> = (0..shards)
        .map(|shard| {
            let mut cmd = Command::new(worker_exe);
            cmd.arg("shard-worker")
                .args(["--bench", kind.name()])
                .args(["--k", &k.to_string()])
                .args(["--shard", &shard.to_string()])
                .args(["--shards", &shards.to_string()])
                // millisecond precision: whole seconds would truncate a
                // sub-second budget to an effectively zero solver timeout
                .args(["--timeout-millis", &options.timeout.as_millis().to_string()])
                .args(["--threads", &worker_threads.to_string()]);
            if timepiece_trace::enabled() {
                // the worker collects its own spans and ships them back in
                // the report; the coordinator merges them as its track
                cmd.arg("--trace-spans");
            }
            cmd.stdout(Stdio::piped());
            KillOnDrop(Some(
                cmd.spawn().unwrap_or_else(|e| panic!("spawning shard worker {shard}: {e}")),
            ))
        })
        .collect();
    let reports: Vec<ShardReport> = children
        .iter_mut()
        .enumerate()
        .map(|(shard, guard)| {
            let child = guard.0.take().expect("child not yet reaped");
            let out = child.wait_with_output().expect("waiting for shard worker");
            assert!(out.status.success(), "shard worker {shard} failed: {}", out.status);
            let text = String::from_utf8(out.stdout).expect("shard report is UTF-8");
            let json = Json::parse(&text)
                .unwrap_or_else(|e| panic!("shard worker {shard} emitted bad JSON: {e}"));
            let mut report = ShardReport::from_json(&json)
                .unwrap_or_else(|e| panic!("shard worker {shard}: {e}"));
            assert_eq!(report.shard, shard, "shard worker reported the wrong index");
            assert_eq!(
                (report.bench.as_str(), report.k, report.shards),
                (kind.name(), k, shards),
                "shard worker checked the wrong instance"
            );
            if let Some(trace) = report.trace.take() {
                timepiece_trace::ingest(format!("shard{shard}"), trace);
            }
            report
        })
        .collect();
    let wall = start.elapsed();

    // coverage: the assigned sets partition the node set…
    let mut assigned: Vec<&str> =
        reports.iter().flat_map(|r| r.assigned.iter().map(String::as_str)).collect();
    let total_assigned = assigned.len();
    assigned.sort_unstable();
    assigned.dedup();
    let mut all: Vec<&str> = topology.nodes().map(|v| topology.name(v)).collect();
    all.sort_unstable();
    assert_eq!(total_assigned, assigned.len(), "a node was assigned to two shards");
    assert_eq!(assigned, all, "shards must cover every node exactly once");
    // …and every assigned node was actually checked: the checked multiset
    // must equal the assignment, so a worker reporting a duplicate duration
    // alongside a skipped node cannot pass on cardinality alone
    for report in &reports {
        let mut checked: Vec<&str> =
            report.durations.iter().map(|(name, _)| name.as_str()).collect();
        checked.sort_unstable();
        let mut expected: Vec<&str> = report.assigned.iter().map(String::as_str).collect();
        expected.sort_unstable();
        assert_eq!(checked, expected, "shard {} skipped assigned nodes", report.shard);
    }

    let durations: Vec<Duration> = reports
        .iter()
        .flat_map(|r| r.durations.iter().map(|&(_, secs)| Duration::from_secs_f64(secs)))
        .collect();
    let stats = TimingStats::from_durations(&durations);
    let timed_out = reports.iter().flat_map(|r| &r.failures).any(|f| f.kind == "unknown");
    let verified = reports.iter().all(|r| r.failures.is_empty());
    let tp = EngineResult::classify(verified, timed_out, wall);
    let ms = monolithic_result(&inst, options);
    Row {
        k,
        nodes: topology.node_count(),
        tp,
        tp_median: stats.median,
        tp_p99: stats.p99,
        ms,
        // coordinator-side traffic only: each worker process has its own
        // arena and encoder caches, and those die with the worker
        arena: timepiece_expr::arena::stats().delta_since(&arena_before),
        terms: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_the_fattree() {
        let inst = fattree_instance(BenchKind::parse("ApReach").unwrap(), 4);
        let g = inst.network.topology();
        let a = plan(g, 3);
        let b = plan(g, 3);
        assert_eq!(a, b);
        assert!(a.covers(g.nodes()));
        // class striping balances shard sizes within one node
        let sizes: Vec<usize> = (0..3).map(|s| a.nodes_of(s).len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn shard_report_roundtrips_through_json() {
        let report = ShardReport {
            bench: "ApReach".to_owned(),
            k: 4,
            shard: 1,
            shards: 3,
            assigned: vec!["core-0".to_owned(), "edge-1-0".to_owned()],
            durations: vec![("core-0".to_owned(), 0.25), ("edge-1-0".to_owned(), 0.125)],
            failures: vec![ShardFailure {
                node: "edge-1-0".to_owned(),
                vc: "inductive".to_owned(),
                kind: "counterexample".to_owned(),
            }],
            wall_secs: 0.5,
            trace: None,
        };
        let parsed = ShardReport::from_json(&Json::parse(&report.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), report);
    }

    #[test]
    fn shard_report_carries_its_trace_through_json() {
        use timepiece_trace::{Phase, SpanKind, SpanRecord, ThreadInfo, Trace};
        let report = ShardReport {
            bench: "SpReach".to_owned(),
            k: 4,
            shard: 0,
            shards: 2,
            assigned: vec!["core-0".to_owned()],
            durations: vec![("core-0".to_owned(), 0.25)],
            failures: vec![],
            wall_secs: 0.25,
            trace: Some(Trace {
                spans: vec![SpanRecord {
                    id: 1,
                    parent: 0,
                    kind: SpanKind::Complete,
                    phase: Phase::Node,
                    name: "core-0".to_owned(),
                    start_ns: 10,
                    dur_ns: 250,
                    pid: 0,
                    tid: 3,
                    args: vec![("class".to_owned(), "core".to_owned())],
                }],
                threads: vec![ThreadInfo { pid: 0, tid: 3, label: "worker0".to_owned() }],
                processes: vec![],
            }),
        };
        let parsed = ShardReport::from_json(&Json::parse(&report.to_json().to_string()).unwrap());
        assert_eq!(parsed.unwrap(), report);
    }

    #[test]
    fn malformed_reports_are_rejected_with_the_field_name() {
        let json = Json::parse(r#"{"bench":"ApReach","k":4}"#).unwrap();
        let err = ShardReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn worker_checks_exactly_its_shard() {
        let report = run_shard(
            BenchKind::parse("SpReach").unwrap(),
            4,
            0,
            2,
            &SweepOptions { run_monolithic: false, ..SweepOptions::default() },
        );
        let inst = fattree_instance(BenchKind::parse("SpReach").unwrap(), 4);
        let expected = plan(inst.network.topology(), 2);
        assert_eq!(report.assigned.len(), expected.nodes_of(0).len());
        assert_eq!(report.durations.len(), report.assigned.len());
        assert!(report.failures.is_empty(), "SpReach k=4 verifies");
        // the two shards of a 20-node fattree split 10/10
        assert_eq!(report.assigned.len(), 10);
    }
}
