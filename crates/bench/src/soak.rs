//! The `repro soak` harness: concurrent delta streams against one warm
//! `timepieced` daemon.
//!
//! A soak run answers the serving question the sweep tables cannot: with
//! the network compiled once and solver sessions warm, how fast does the
//! daemon absorb a stream of edits? The harness starts an in-process daemon
//! on a loopback socket, then:
//!
//! 1. measures a **cold baseline** — a fresh [`CheckerPool`] running one
//!    full check, the cost every delta would pay without incrementality;
//! 2. runs a deterministic **probe** — one single-edge `link_down` followed
//!    by the restoring `link_up` — recording the dirty-cone size and
//!    latency (the acceptance numbers: the cone must be a small fraction of
//!    the nodes, the latency a small fraction of the baseline);
//! 3. unleashes the **storm** — `clients` threads, each streaming
//!    `deltas_per_client` randomized link toggles and witness-time edits
//!    from a seeded xorshift generator — and reports p50/p95 client-side
//!    latency, mean cone size, and the error count.
//!
//! Everything runs over the real TCP protocol, so queueing behind the
//! single state thread is part of the measurement.

use std::time::{Duration, Instant};

use timepiece_core::check::CheckOptions;
use timepiece_core::sweep::CheckerPool;
use timepiece_daemon::{Client, DaemonState, Delta, Request};
use timepiece_trace::Json;

use crate::runner::{fattree_instance, BenchKind};

/// Options of one soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Concurrent client threads in the storm phase.
    pub clients: usize,
    /// Deltas each client streams.
    pub deltas_per_client: usize,
    /// Seed of the delta generators (client `i` uses `seed + i`).
    pub seed: u64,
    /// Per-condition solver budget.
    pub timeout: Duration,
    /// Checker worker threads (`None`: all cores).
    pub threads: Option<usize>,
}

impl Default for SoakOptions {
    fn default() -> SoakOptions {
        SoakOptions {
            clients: 4,
            deltas_per_client: 8,
            seed: 0x5043_0001,
            timeout: Duration::from_secs(60),
            threads: None,
        }
    }
}

/// What one soak run measured.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Scenario name.
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// Node count.
    pub nodes: usize,
    /// Cold full-check wall milliseconds (fresh pool, no warm sessions).
    pub baseline_full_ms: f64,
    /// Dirty-cone size of the probe's single-edge `link_down`.
    pub probe_cone: usize,
    /// Probe `link_down` round-trip milliseconds on the warm daemon.
    pub probe_ms: f64,
    /// Did the probe succeed and the restoring `link_up` re-verify?
    pub probe_ok: bool,
    /// Storm deltas attempted (clients × deltas-per-client).
    pub storm_deltas: usize,
    /// Storm replies with `ok: false` (e.g. conflicting link toggles).
    pub storm_errors: usize,
    /// Median storm delta latency, milliseconds (client-side).
    pub p50_ms: f64,
    /// 95th-percentile storm delta latency, milliseconds.
    pub p95_ms: f64,
    /// Mean dirty-cone size over successful storm deltas.
    pub mean_cone: f64,
}

impl SoakResult {
    /// Probe cone as a fraction of the nodes.
    pub fn probe_cone_frac(&self) -> f64 {
        self.probe_cone as f64 / self.nodes.max(1) as f64
    }

    /// Cold-baseline wall over probe latency (> 1: incrementality pays).
    pub fn probe_speedup(&self) -> f64 {
        if self.probe_ms > 0.0 {
            self.baseline_full_ms / self.probe_ms
        } else {
            f64::INFINITY
        }
    }

    /// The machine-readable row `repro soak --json` dumps.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(self.bench.clone())),
            ("k", Json::from(self.k)),
            ("nodes", Json::from(self.nodes)),
            ("baseline_full_ms", Json::Num(self.baseline_full_ms)),
            ("probe_cone", Json::from(self.probe_cone)),
            ("probe_cone_frac", Json::Num(self.probe_cone_frac())),
            ("probe_ms", Json::Num(self.probe_ms)),
            ("probe_speedup", Json::Num(self.probe_speedup())),
            ("ok", Json::Bool(self.probe_ok)),
            ("storm_deltas", Json::from(self.storm_deltas)),
            ("storm_errors", Json::from(self.storm_errors)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p95_ms", Json::Num(self.p95_ms)),
            ("mean_cone", Json::Num(self.mean_cone)),
        ])
    }
}

/// The xorshift generator the storm uses: fast, seedable, deterministic,
/// and no `rand` dependency in this path.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One storm client's stream: link toggles on random edges (remembering
/// which links *it* downed so roughly half its toggles restore), with an
/// occasional witness-time edit thrown in.
fn storm_client(
    addr: std::net::SocketAddr,
    edges: &[(String, String)],
    node_names: &[String],
    deltas: usize,
    seed: u64,
) -> std::io::Result<Vec<(bool, f64)>> {
    let mut client = Client::connect(addr)?;
    let mut rng = XorShift::new(seed);
    let mut downed: Vec<(String, String)> = Vec::new();
    let mut out = Vec::with_capacity(deltas);
    for _ in 0..deltas {
        let roll = rng.next();
        let delta = if !downed.is_empty() && roll.is_multiple_of(4) {
            let (u, v) = downed.swap_remove((rng.next() as usize) % downed.len());
            Delta::LinkUp { u, v }
        } else if roll % 8 == 1 {
            Delta::WitnessTime {
                node: node_names[(rng.next() as usize) % node_names.len()].clone(),
                tau: 4 + (rng.next() % 4) as i64,
            }
        } else {
            let (u, v) = edges[(rng.next() as usize) % edges.len()].clone();
            Delta::LinkDown { u, v }
        };
        let start = Instant::now();
        let reply = client.send(&Request::Delta(delta.clone()))?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let ok = reply.get("ok").and_then(Json::as_bool).unwrap_or(false);
        // remember only downs the daemon accepted; a rejected link_down
        // (another client got there first) changed nothing, and a rejected
        // link_up means the link is already back up — no bookkeeping either
        if ok {
            if let Delta::LinkDown { u, v } = delta {
                downed.push((u, v));
            }
        }
        out.push((ok, ms));
    }
    // leave no links down so later runs start clean
    for (u, v) in downed {
        let _ = client.send(&Request::Delta(Delta::LinkUp { u, v }));
    }
    Ok(out)
}

/// Runs one soak row. See the module docs for the three phases.
///
/// # Panics
///
/// Panics when the daemon cannot start (bind/build failures) — soak is a
/// measurement tool, not a service.
pub fn run_soak(kind: BenchKind, k: usize, options: &SoakOptions) -> SoakResult {
    let check_options = CheckOptions {
        timeout: Some(options.timeout),
        threads: options.threads,
        session_cap: Some(64),
        ..CheckOptions::default()
    };
    let label = format!("{} k={k}", kind.name());

    // phase 1: the cold baseline — fresh sessions, full check
    let instance = fattree_instance(kind, k);
    let nodes = instance.network.topology().node_count();
    let baseline_start = Instant::now();
    let baseline = CheckerPool::with_default_parallelism(check_options.clone())
        .check(&instance.network, &instance.interface, &instance.property)
        .expect("baseline check");
    let baseline_full_ms = baseline_start.elapsed().as_secs_f64() * 1e3;
    drop(baseline);

    // the edge/node name pools the probe and the storm draw from
    let g = instance.network.topology();
    let mut edges: Vec<(String, String)> = g
        .edges()
        .map(|(u, v)| (g.name(u).to_owned(), g.name(v).to_owned()))
        .filter(|(u, v)| u < v) // one entry per undirected link
        .collect();
    edges.sort();
    let node_names: Vec<String> = g.nodes().map(|v| g.name(v).to_owned()).collect();

    // phase 2: the warm daemon and the deterministic probe
    let state = DaemonState::new(label, instance, check_options).expect("daemon warm-up check");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || timepiece_daemon::serve(listener, state));

    let mut probe = Client::connect(addr).expect("connect probe client");
    let (u, v) = edges[edges.len() / 2].clone();
    let probe_start = Instant::now();
    let down = probe
        .send(&Request::Delta(Delta::LinkDown { u: u.clone(), v: v.clone() }))
        .expect("probe link_down");
    let probe_ms = probe_start.elapsed().as_secs_f64() * 1e3;
    let probe_cone = down.get("cone_size").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    let up = probe.send(&Request::Delta(Delta::LinkUp { u, v })).expect("probe link_up");
    let probe_ok = down.get("ok").and_then(Json::as_bool) == Some(true)
        && up.get("verified").and_then(Json::as_bool) == Some(true);

    // phase 3: the storm
    let storm: Vec<(bool, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|i| {
                let edges = &edges;
                let node_names = &node_names;
                let seed = options.seed.wrapping_add(i as u64);
                let deltas = options.deltas_per_client;
                scope.spawn(move || {
                    storm_client(addr, edges, node_names, deltas, seed)
                        .expect("storm client stream")
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("storm client thread")).collect()
    });

    // the daemon's own histogram has the cone sizes; read them via profile
    let profile = probe.send(&Request::Profile).expect("profile request");
    let cone_hist = profile.get("metrics").and_then(|m| m.get("daemon.cone_nodes"));
    let hist_f64 =
        |key: &str| cone_hist.and_then(|h| h.get(key)).and_then(Json::as_f64).unwrap_or(0.0);
    let mean_cone = if hist_f64("count") > 0.0 { hist_f64("sum") / hist_f64("count") } else { 0.0 };
    let shutdown = probe.send(&Request::Shutdown).expect("shutdown request");
    assert_eq!(shutdown.get("ok").and_then(Json::as_bool), Some(true));
    server.join().expect("server thread").expect("serve exits cleanly");

    let mut latencies: Vec<f64> = storm.iter().filter(|(ok, _)| *ok).map(|(_, ms)| *ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    SoakResult {
        bench: kind.name().to_owned(),
        k,
        nodes,
        baseline_full_ms,
        probe_cone,
        probe_ms,
        probe_ok,
        storm_deltas: storm.len(),
        storm_errors: storm.iter().filter(|(ok, _)| !ok).count(),
        p50_ms: quantile(0.5),
        p95_ms: quantile(0.95),
        mean_cone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_soak_run_probes_and_storms() {
        let options = SoakOptions {
            clients: 2,
            deltas_per_client: 3,
            threads: Some(2),
            ..SoakOptions::default()
        };
        let kind = BenchKind::parse("SpReach").unwrap();
        let result = run_soak(kind, 4, &options);
        assert_eq!(result.nodes, 20);
        assert!(result.probe_ok, "probe must restore to verified");
        assert!(
            result.probe_cone > 0 && result.probe_cone < result.nodes / 4,
            "a single-edge cone must stay below a quarter of the nodes, got {} of {}",
            result.probe_cone,
            result.nodes
        );
        assert_eq!(result.storm_deltas, 6);
        let json = result.to_json();
        assert_eq!(json.get("bench").and_then(Json::as_str), Some("SpReach"));
        assert!(json.get("probe_speedup").and_then(Json::as_f64).unwrap() > 0.0);
    }
}
