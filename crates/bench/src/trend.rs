//! Bench-trajectory tracking over accumulated `--json` row dumps.
//!
//! `repro fig14 --json PATH` writes one machine-readable document per run;
//! collecting those documents over time gives a performance history. This
//! module ingests any number of them (in the order given, oldest first) and
//! prints per-`(benchmark, k)` wall-time trajectories — the first run, every
//! subsequent run, and the end-to-end speedup — so regressions and wins are
//! visible without spreadsheet archaeology.
//!
//! `repro soak --json PATH` dumps (marked `"soak": true`) ingest too: each
//! soak row becomes a `BENCH+delta` series whose wall time is the median
//! storm-delta latency, so daemon serving latency trends alongside the
//! from-scratch sweep times.

use std::collections::BTreeMap;
use std::fmt;

use timepiece_sched::{CostModel, Json};

use crate::runner::ClassSample;

/// One benchmark's measurement extracted from a dump.
///
/// Only `bench`, `k` and the `tp` outcome are required of a dump row — the
/// schema has grown since the first dumps were written (arena stats, term
/// cache, per-class costs, shard balance), and history files from older
/// releases must keep ingesting, so every later field is optional and
/// defaults to "absent".
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Benchmark name.
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// Modular-engine outcome tag (`verified` / `failed` / `timeout`).
    pub outcome: String,
    /// Modular-engine wall seconds.
    pub wall_secs: f64,
    /// Per-class cost samples, for rows new enough to record them — the
    /// data [`fit_cost_model`] turns into adaptive shard plans.
    pub classes: Vec<ClassSample>,
    /// Which shard planner the row ran under, when it ran sharded.
    pub plan: Option<String>,
    /// Measured max/mean shard wall-time ratio, when the row ran sharded.
    pub imbalance: Option<f64>,
}

/// A parse problem in a dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendError(pub String);

impl fmt::Display for TrendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed row dump: {}", self.0)
    }
}

impl std::error::Error for TrendError {}

/// Extracts the trend points of one `--json` document.
///
/// # Errors
///
/// [`TrendError`] naming the first missing or mistyped field.
pub fn parse_dump(text: &str) -> Result<Vec<TrendPoint>, TrendError> {
    let doc = Json::parse(text).map_err(|e| TrendError(e.to_string()))?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| TrendError("missing rows array".to_owned()))?;
    if doc.get("soak").and_then(Json::as_bool) == Some(true) {
        return rows.iter().map(parse_soak_row).collect();
    }
    rows.iter()
        .map(|row| {
            let field = |key: &str| row.get(key).ok_or_else(|| TrendError(format!("row.{key}")));
            let tp = field("tp")?;
            Ok(TrendPoint {
                bench: field("bench")?
                    .as_str()
                    .ok_or_else(|| TrendError("row.bench type".to_owned()))?
                    .to_owned(),
                k: field("k")?.as_usize().ok_or_else(|| TrendError("row.k type".to_owned()))?,
                outcome: tp
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| TrendError("row.tp.outcome".to_owned()))?
                    .to_owned(),
                wall_secs: tp
                    .get("wall_secs")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| TrendError("row.tp.wall_secs".to_owned()))?,
                classes: parse_classes(row),
                plan: row
                    .get("balance")
                    .and_then(|b| b.get("plan"))
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                imbalance: row
                    .get("balance")
                    .and_then(|b| b.get("imbalance"))
                    .and_then(Json::as_f64),
            })
        })
        .collect()
}

/// The row's per-class cost samples, when the dump is new enough to carry
/// them. A malformed entry is dropped rather than failing the whole dump:
/// class stats only *steer* future plans, they never gate ingestion.
fn parse_classes(row: &Json) -> Vec<ClassSample> {
    let Some(classes) = row.get("classes").and_then(Json::as_arr) else {
        return Vec::new();
    };
    classes
        .iter()
        .filter_map(|entry| {
            Some(ClassSample {
                class: entry.get("class").and_then(Json::as_str)?.to_owned(),
                nodes: entry.get("nodes").and_then(Json::as_usize)?,
                total_secs: entry.get("total_secs").and_then(Json::as_f64)?,
            })
        })
        .collect()
}

/// Fits a per-class [`CostModel`] for `bench` from labelled dumps (oldest
/// first): every row of the same benchmark contributes one sample per class
/// (its measured mean seconds per node of that class). When no dump has
/// class data for `bench`, rows of *other* benchmarks are used instead —
/// relative core/agg/edge ratios transfer across properties far better
/// than absolute times — and with no class data anywhere the model is
/// [uniform](CostModel::uniform).
pub fn fit_cost_model(dumps: &[(String, Vec<TrendPoint>)], bench: &str) -> CostModel {
    let gather = |same_bench_only: bool| {
        let mut samples: Vec<(String, f64)> = Vec::new();
        let mut sources: Vec<String> = Vec::new();
        for (label, points) in dumps {
            let mut contributed = false;
            for point in points {
                if same_bench_only && !point.bench.eq_ignore_ascii_case(bench) {
                    continue;
                }
                for class in &point.classes {
                    if class.nodes > 0 {
                        samples.push((class.class.clone(), class.mean_secs()));
                        contributed = true;
                    }
                }
            }
            if contributed {
                sources.push(label.clone());
            }
        }
        (samples, sources)
    };
    let (samples, sources) = gather(true);
    if !samples.is_empty() {
        return CostModel::fit(samples, sources);
    }
    let (samples, sources) = gather(false);
    CostModel::fit(samples, sources)
}

/// One `repro soak` row as a trend point: the series is `BENCH+delta`, the
/// wall time the median storm-delta latency, and the outcome `verified`
/// exactly when the probe restored a verified network (`ok`).
fn parse_soak_row(row: &Json) -> Result<TrendPoint, TrendError> {
    let field = |key: &str| row.get(key).ok_or_else(|| TrendError(format!("soak row.{key}")));
    let bench =
        field("bench")?.as_str().ok_or_else(|| TrendError("soak row.bench type".to_owned()))?;
    let p50_ms =
        field("p50_ms")?.as_f64().ok_or_else(|| TrendError("soak row.p50_ms type".to_owned()))?;
    let ok = field("ok")?.as_bool().ok_or_else(|| TrendError("soak row.ok type".to_owned()))?;
    Ok(TrendPoint {
        bench: format!("{bench}+delta"),
        k: field("k")?.as_usize().ok_or_else(|| TrendError("soak row.k type".to_owned()))?,
        outcome: if ok { "verified".to_owned() } else { "failed".to_owned() },
        wall_secs: p50_ms / 1e3,
        classes: Vec::new(),
        plan: None,
        imbalance: None,
    })
}

/// The trajectory of one `(bench, k)` series across dumps: `None` where a
/// dump lacks the series.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Benchmark name.
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// One entry per ingested dump, in ingestion order.
    pub points: Vec<Option<TrendPoint>>,
}

impl Trajectory {
    /// First and last measured wall seconds, when at least one dump has the
    /// series.
    pub fn endpoints(&self) -> Option<(f64, f64)> {
        let measured: Vec<&TrendPoint> = self.points.iter().flatten().collect();
        let (first, last) = (measured.first()?, measured.last()?);
        Some((first.wall_secs, last.wall_secs))
    }

    /// `first / last` wall-time ratio (> 1: got faster), when measurable.
    pub fn speedup(&self) -> Option<f64> {
        let (first, last) = self.endpoints()?;
        (last > 0.0).then(|| first / last)
    }
}

/// Groups dumps (oldest first) into per-`(bench, k)` trajectories, ordered
/// by benchmark name then `k`.
pub fn trajectories(dumps: &[Vec<TrendPoint>]) -> Vec<Trajectory> {
    let mut series: BTreeMap<(String, usize), Vec<Option<TrendPoint>>> = BTreeMap::new();
    for point in dumps.iter().flatten() {
        series.entry((point.bench.clone(), point.k)).or_insert_with(|| vec![None; dumps.len()]);
    }
    for (i, dump) in dumps.iter().enumerate() {
        for point in dump {
            if let Some(slots) = series.get_mut(&(point.bench.clone(), point.k)) {
                slots[i] = Some(point.clone());
            }
        }
    }
    series.into_iter().map(|((bench, k), points)| Trajectory { bench, k, points }).collect()
}

/// Renders the trajectory table: one per-dump column per label (sized to
/// the longest label so headers and cells stay aligned), one row per
/// `(bench, k)`, with the end-to-end speedup.
pub fn render(labels: &[String], dumps: &[Vec<TrendPoint>]) -> String {
    use std::fmt::Write as _;
    let width = labels.iter().map(String::len).max().unwrap_or(0).max(10);
    let rows = trajectories(dumps);
    let bench_width = rows.iter().map(|t| t.bench.len()).max().unwrap_or(0).max(10);
    let mut out = String::new();
    let _ = write!(out, "{:<bench_width$} {:>3}", "bench", "k");
    for label in labels {
        let _ = write!(out, " {label:>width$}");
    }
    let _ = writeln!(out, " {:>9}", "speedup");
    for trajectory in rows {
        let _ = write!(out, "{:<bench_width$} {:>3}", trajectory.bench, trajectory.k);
        for point in &trajectory.points {
            let cell = match point {
                Some(p) if p.outcome == "verified" => format!("{:.2}s", p.wall_secs),
                Some(p) => p.outcome.clone(),
                None => "-".to_owned(),
            };
            let _ = write!(out, " {cell:>width$}");
        }
        let speedup = trajectory.speedup().map_or("-".to_owned(), |s| format!("{s:.2}x"));
        let _ = writeln!(out, " {speedup:>9}");
    }
    out
}

/// Renders the shard-balance table — one row per `(bench, k)` series with
/// any measured imbalance, cells `plan:ratio` (e.g. `adaptive:1.08`) —
/// or `None` when no ingested dump ran sharded, so callers can skip the
/// section entirely for pre-sharding histories.
pub fn render_balance(labels: &[String], dumps: &[Vec<TrendPoint>]) -> Option<String> {
    use std::fmt::Write as _;
    let rows: Vec<Trajectory> = trajectories(dumps)
        .into_iter()
        .filter(|t| t.points.iter().flatten().any(|p| p.imbalance.is_some()))
        .collect();
    if rows.is_empty() {
        return None;
    }
    let cell = |point: &Option<TrendPoint>| match point {
        Some(TrendPoint { imbalance: Some(ratio), plan, .. }) => {
            format!("{}:{ratio:.2}", plan.as_deref().unwrap_or("?"))
        }
        _ => "-".to_owned(),
    };
    let width = labels
        .iter()
        .map(String::len)
        .chain(rows.iter().flat_map(|t| t.points.iter().map(|p| cell(p).len())))
        .max()
        .unwrap_or(0)
        .max(10);
    let bench_width = rows.iter().map(|t| t.bench.len()).max().unwrap_or(0).max(10);
    let mut out = String::new();
    let _ = writeln!(out, "shard balance (max/mean wall, 1.00 is perfect):");
    let _ = write!(out, "{:<bench_width$} {:>3}", "bench", "k");
    for label in labels {
        let _ = write!(out, " {label:>width$}");
    }
    let _ = writeln!(out);
    for trajectory in rows {
        let _ = write!(out, "{:<bench_width$} {:>3}", trajectory.bench, trajectory.k);
        for point in &trajectory.points {
            let _ = write!(out, " {:>width$}", cell(point));
        }
        let _ = writeln!(out);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(rows: &[(&str, usize, &str, f64)]) -> String {
        let rows: Vec<String> = rows
            .iter()
            .map(|(bench, k, outcome, wall)| {
                format!(
                    r#"{{"bench":"{bench}","figure":"x","k":{k},"nodes":20,
                        "tp":{{"outcome":"{outcome}","wall_secs":{wall}}},"ms":null}}"#
                )
            })
            .collect();
        format!(r#"{{"timeout_secs":60,"shards":1,"rows":[{}]}}"#, rows.join(","))
    }

    #[test]
    fn parses_rows_and_rejects_garbage() {
        let points = parse_dump(&dump(&[("SpReach", 4, "verified", 0.5)])).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].bench, "SpReach");
        assert_eq!(points[0].wall_secs, 0.5);
        assert!(parse_dump("{}").is_err());
        assert!(parse_dump("not json").is_err());
        assert!(parse_dump(r#"{"rows":[{"bench":"X"}]}"#).is_err());
    }

    #[test]
    fn trajectories_align_series_across_dumps() {
        let a =
            parse_dump(&dump(&[("SpReach", 4, "verified", 2.0), ("SpLen", 4, "verified", 8.0)]))
                .unwrap();
        let b =
            parse_dump(&dump(&[("SpReach", 4, "verified", 1.0), ("SpMed", 4, "verified", 3.0)]))
                .unwrap();
        let ts = trajectories(&[a, b]);
        assert_eq!(ts.len(), 3);
        let reach = ts.iter().find(|t| t.bench == "SpReach").unwrap();
        assert_eq!(reach.speedup(), Some(2.0));
        let len = ts.iter().find(|t| t.bench == "SpLen").unwrap();
        assert_eq!(len.points[1], None, "absent from the second dump");
        assert_eq!(len.endpoints(), Some((8.0, 8.0)));
    }

    #[test]
    fn soak_dumps_become_delta_series() {
        let soak = r#"{"soak":true,"clients":4,"deltas_per_client":8,"rows":[
            {"bench":"SpReach","k":8,"nodes":80,"p50_ms":250.0,"ok":true},
            {"bench":"SpReach","k":4,"nodes":20,"p50_ms":40.0,"ok":false}]}"#;
        let points = parse_dump(soak).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].bench, "SpReach+delta");
        assert_eq!(points[0].outcome, "verified");
        assert_eq!(points[0].wall_secs, 0.25);
        assert_eq!(points[1].outcome, "failed");
        // soak and fig14 dumps align in one trajectory table
        let fig14 = parse_dump(&dump(&[("SpReach", 8, "verified", 2.0)])).unwrap();
        let table = render(&["sweep".to_owned(), "soak".to_owned()], &[fig14, points]);
        assert!(table.contains("SpReach+delta"));
        assert!(table.contains("0.25s"));
        assert!(parse_dump(r#"{"soak":true,"rows":[{"bench":"X","k":4}]}"#).is_err());
    }

    #[test]
    fn render_produces_a_labelled_table() {
        let a = parse_dump(&dump(&[("SpReach", 4, "verified", 2.0)])).unwrap();
        let b = parse_dump(&dump(&[("SpReach", 4, "timeout", 60.0)])).unwrap();
        let table = render(&["base".to_owned(), "now".to_owned()], &[a, b]);
        assert!(table.contains("SpReach"));
        assert!(table.contains("2.00s"));
        assert!(table.contains("timeout"));
        assert!(table.contains("base") && table.contains("now"));
    }

    /// A verbatim `--json` dump from the PR-4-era schema: rows carry only
    /// `bench`/`figure`/`k`/`nodes`/`tp`/`ms` — no `arena`, no
    /// `term_cache`, no `classes`, no `balance`. History files like this
    /// exist on disk and must keep ingesting unchanged.
    const PR4_DUMP: &str = r#"{"timeout_secs":60,"max_k":8,"rows":[
        {"bench":"SpReach","figure":"14a","k":4,"nodes":20,
         "tp":{"outcome":"verified","wall_secs":1.25,"median_secs":0.05,"p99_secs":0.11},
         "ms":{"outcome":"verified","wall_secs":3.5}},
        {"bench":"ApReach","figure":"14e","k":8,"nodes":80,
         "tp":{"outcome":"verified","wall_secs":40.0,"median_secs":0.4,"p99_secs":1.2},
         "ms":{"outcome":"timeout","wall_secs":60.0}}]}"#;

    #[test]
    fn pr4_era_dumps_still_ingest() {
        let points = parse_dump(PR4_DUMP).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].bench, "SpReach");
        assert_eq!(points[0].wall_secs, 1.25);
        // the fields that postdate the schema parse as absent, not errors
        assert!(points[0].classes.is_empty());
        assert_eq!(points[0].plan, None);
        assert_eq!(points[0].imbalance, None);
        // and they still align in a trajectory table next to modern dumps
        let modern = parse_dump(&dump(&[("SpReach", 4, "verified", 0.9)])).unwrap();
        let table = render(&["pr4".to_owned(), "now".to_owned()], &[points.clone(), modern]);
        assert!(table.contains("1.25s"));
        // a history with no class data fits only the uniform model
        assert!(fit_cost_model(&[("pr4".to_owned(), points)], "SpReach").is_uniform());
    }

    fn classed_dump(bench: &str, k: usize, classes: &str) -> Vec<TrendPoint> {
        let text = format!(
            r#"{{"timeout_secs":60,"rows":[{{"bench":"{bench}","figure":"x","k":{k},"nodes":20,
                "tp":{{"outcome":"verified","wall_secs":2.0}},"ms":null,
                "classes":[{classes}],
                "balance":{{"plan":"striped","shard_secs":[1.5,0.5],"imbalance":1.5,
                            "steal_batches":0,"stolen_shards":0,"reassigned":0}}}}]}}"#
        );
        parse_dump(&text).unwrap()
    }

    #[test]
    fn cost_models_fit_from_class_samples_and_prefer_the_same_bench() {
        let reach = classed_dump(
            "SpReach",
            4,
            r#"{"class":"core","nodes":4,"total_secs":8.0},
               {"class":"edge","nodes":8,"total_secs":8.0}"#,
        );
        let med = classed_dump("SpMed", 4, r#"{"class":"core","nodes":4,"total_secs":40.0}"#);
        let dumps = vec![("a".to_owned(), reach), ("b".to_owned(), med)];
        // SpReach samples exist: core 2.0 s/node, edge 1.0 s/node, and only
        // dump "a" contributes
        let model = fit_cost_model(&dumps, "SpReach");
        assert_eq!(model.cost_of("core"), 2.0);
        assert_eq!(model.cost_of("edge"), 1.0);
        assert_eq!(model.sources(), ["a".to_owned()]);
        // an unseen bench borrows every dump's samples (relative ratios
        // transfer): core averages (2.0 + 10.0) / 2
        let model = fit_cost_model(&dumps, "ApHijack");
        assert_eq!(model.cost_of("core"), 6.0);
        assert_eq!(model.sources(), ["a".to_owned(), "b".to_owned()]);
        // malformed class entries drop without failing the dump
        let sloppy = classed_dump(
            "SpAd",
            4,
            r#"{"class":"core"},{"class":"edge","nodes":2,"total_secs":1.0}"#,
        );
        assert_eq!(sloppy[0].classes.len(), 1);
    }

    #[test]
    fn balance_table_appears_only_for_sharded_history() {
        let unsharded = parse_dump(&dump(&[("SpReach", 4, "verified", 2.0)])).unwrap();
        assert_eq!(render_balance(&["a".to_owned()], std::slice::from_ref(&unsharded)), None);
        let sharded = classed_dump("SpReach", 4, "");
        assert_eq!(sharded[0].imbalance, Some(1.5));
        let table = render_balance(&["a".to_owned(), "b".to_owned()], &[unsharded, sharded])
            .expect("sharded history renders");
        assert!(table.contains("striped:1.50"), "{table}");
        assert!(table.contains("shard balance"), "{table}");
    }
}
