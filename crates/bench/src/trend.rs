//! Bench-trajectory tracking over accumulated `--json` row dumps.
//!
//! `repro fig14 --json PATH` writes one machine-readable document per run;
//! collecting those documents over time gives a performance history. This
//! module ingests any number of them (in the order given, oldest first) and
//! prints per-`(benchmark, k)` wall-time trajectories — the first run, every
//! subsequent run, and the end-to-end speedup — so regressions and wins are
//! visible without spreadsheet archaeology.
//!
//! `repro soak --json PATH` dumps (marked `"soak": true`) ingest too: each
//! soak row becomes a `BENCH+delta` series whose wall time is the median
//! storm-delta latency, so daemon serving latency trends alongside the
//! from-scratch sweep times.

use std::collections::BTreeMap;
use std::fmt;

use timepiece_sched::Json;

/// One benchmark's measurement extracted from a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Benchmark name.
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// Modular-engine outcome tag (`verified` / `failed` / `timeout`).
    pub outcome: String,
    /// Modular-engine wall seconds.
    pub wall_secs: f64,
}

/// A parse problem in a dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendError(pub String);

impl fmt::Display for TrendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed row dump: {}", self.0)
    }
}

impl std::error::Error for TrendError {}

/// Extracts the trend points of one `--json` document.
///
/// # Errors
///
/// [`TrendError`] naming the first missing or mistyped field.
pub fn parse_dump(text: &str) -> Result<Vec<TrendPoint>, TrendError> {
    let doc = Json::parse(text).map_err(|e| TrendError(e.to_string()))?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| TrendError("missing rows array".to_owned()))?;
    if doc.get("soak").and_then(Json::as_bool) == Some(true) {
        return rows.iter().map(parse_soak_row).collect();
    }
    rows.iter()
        .map(|row| {
            let field = |key: &str| row.get(key).ok_or_else(|| TrendError(format!("row.{key}")));
            let tp = field("tp")?;
            Ok(TrendPoint {
                bench: field("bench")?
                    .as_str()
                    .ok_or_else(|| TrendError("row.bench type".to_owned()))?
                    .to_owned(),
                k: field("k")?.as_usize().ok_or_else(|| TrendError("row.k type".to_owned()))?,
                outcome: tp
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| TrendError("row.tp.outcome".to_owned()))?
                    .to_owned(),
                wall_secs: tp
                    .get("wall_secs")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| TrendError("row.tp.wall_secs".to_owned()))?,
            })
        })
        .collect()
}

/// One `repro soak` row as a trend point: the series is `BENCH+delta`, the
/// wall time the median storm-delta latency, and the outcome `verified`
/// exactly when the probe restored a verified network (`ok`).
fn parse_soak_row(row: &Json) -> Result<TrendPoint, TrendError> {
    let field = |key: &str| row.get(key).ok_or_else(|| TrendError(format!("soak row.{key}")));
    let bench =
        field("bench")?.as_str().ok_or_else(|| TrendError("soak row.bench type".to_owned()))?;
    let p50_ms =
        field("p50_ms")?.as_f64().ok_or_else(|| TrendError("soak row.p50_ms type".to_owned()))?;
    let ok = field("ok")?.as_bool().ok_or_else(|| TrendError("soak row.ok type".to_owned()))?;
    Ok(TrendPoint {
        bench: format!("{bench}+delta"),
        k: field("k")?.as_usize().ok_or_else(|| TrendError("soak row.k type".to_owned()))?,
        outcome: if ok { "verified".to_owned() } else { "failed".to_owned() },
        wall_secs: p50_ms / 1e3,
    })
}

/// The trajectory of one `(bench, k)` series across dumps: `None` where a
/// dump lacks the series.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Benchmark name.
    pub bench: String,
    /// Fattree parameter.
    pub k: usize,
    /// One entry per ingested dump, in ingestion order.
    pub points: Vec<Option<TrendPoint>>,
}

impl Trajectory {
    /// First and last measured wall seconds, when at least one dump has the
    /// series.
    pub fn endpoints(&self) -> Option<(f64, f64)> {
        let measured: Vec<&TrendPoint> = self.points.iter().flatten().collect();
        let (first, last) = (measured.first()?, measured.last()?);
        Some((first.wall_secs, last.wall_secs))
    }

    /// `first / last` wall-time ratio (> 1: got faster), when measurable.
    pub fn speedup(&self) -> Option<f64> {
        let (first, last) = self.endpoints()?;
        (last > 0.0).then(|| first / last)
    }
}

/// Groups dumps (oldest first) into per-`(bench, k)` trajectories, ordered
/// by benchmark name then `k`.
pub fn trajectories(dumps: &[Vec<TrendPoint>]) -> Vec<Trajectory> {
    let mut series: BTreeMap<(String, usize), Vec<Option<TrendPoint>>> = BTreeMap::new();
    for point in dumps.iter().flatten() {
        series.entry((point.bench.clone(), point.k)).or_insert_with(|| vec![None; dumps.len()]);
    }
    for (i, dump) in dumps.iter().enumerate() {
        for point in dump {
            if let Some(slots) = series.get_mut(&(point.bench.clone(), point.k)) {
                slots[i] = Some(point.clone());
            }
        }
    }
    series.into_iter().map(|((bench, k), points)| Trajectory { bench, k, points }).collect()
}

/// Renders the trajectory table: one per-dump column per label (sized to
/// the longest label so headers and cells stay aligned), one row per
/// `(bench, k)`, with the end-to-end speedup.
pub fn render(labels: &[String], dumps: &[Vec<TrendPoint>]) -> String {
    use std::fmt::Write as _;
    let width = labels.iter().map(String::len).max().unwrap_or(0).max(10);
    let rows = trajectories(dumps);
    let bench_width = rows.iter().map(|t| t.bench.len()).max().unwrap_or(0).max(10);
    let mut out = String::new();
    let _ = write!(out, "{:<bench_width$} {:>3}", "bench", "k");
    for label in labels {
        let _ = write!(out, " {label:>width$}");
    }
    let _ = writeln!(out, " {:>9}", "speedup");
    for trajectory in rows {
        let _ = write!(out, "{:<bench_width$} {:>3}", trajectory.bench, trajectory.k);
        for point in &trajectory.points {
            let cell = match point {
                Some(p) if p.outcome == "verified" => format!("{:.2}s", p.wall_secs),
                Some(p) => p.outcome.clone(),
                None => "-".to_owned(),
            };
            let _ = write!(out, " {cell:>width$}");
        }
        let speedup = trajectory.speedup().map_or("-".to_owned(), |s| format!("{s:.2}x"));
        let _ = writeln!(out, " {speedup:>9}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(rows: &[(&str, usize, &str, f64)]) -> String {
        let rows: Vec<String> = rows
            .iter()
            .map(|(bench, k, outcome, wall)| {
                format!(
                    r#"{{"bench":"{bench}","figure":"x","k":{k},"nodes":20,
                        "tp":{{"outcome":"{outcome}","wall_secs":{wall}}},"ms":null}}"#
                )
            })
            .collect();
        format!(r#"{{"timeout_secs":60,"shards":1,"rows":[{}]}}"#, rows.join(","))
    }

    #[test]
    fn parses_rows_and_rejects_garbage() {
        let points = parse_dump(&dump(&[("SpReach", 4, "verified", 0.5)])).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].bench, "SpReach");
        assert_eq!(points[0].wall_secs, 0.5);
        assert!(parse_dump("{}").is_err());
        assert!(parse_dump("not json").is_err());
        assert!(parse_dump(r#"{"rows":[{"bench":"X"}]}"#).is_err());
    }

    #[test]
    fn trajectories_align_series_across_dumps() {
        let a =
            parse_dump(&dump(&[("SpReach", 4, "verified", 2.0), ("SpLen", 4, "verified", 8.0)]))
                .unwrap();
        let b =
            parse_dump(&dump(&[("SpReach", 4, "verified", 1.0), ("SpMed", 4, "verified", 3.0)]))
                .unwrap();
        let ts = trajectories(&[a, b]);
        assert_eq!(ts.len(), 3);
        let reach = ts.iter().find(|t| t.bench == "SpReach").unwrap();
        assert_eq!(reach.speedup(), Some(2.0));
        let len = ts.iter().find(|t| t.bench == "SpLen").unwrap();
        assert_eq!(len.points[1], None, "absent from the second dump");
        assert_eq!(len.endpoints(), Some((8.0, 8.0)));
    }

    #[test]
    fn soak_dumps_become_delta_series() {
        let soak = r#"{"soak":true,"clients":4,"deltas_per_client":8,"rows":[
            {"bench":"SpReach","k":8,"nodes":80,"p50_ms":250.0,"ok":true},
            {"bench":"SpReach","k":4,"nodes":20,"p50_ms":40.0,"ok":false}]}"#;
        let points = parse_dump(soak).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].bench, "SpReach+delta");
        assert_eq!(points[0].outcome, "verified");
        assert_eq!(points[0].wall_secs, 0.25);
        assert_eq!(points[1].outcome, "failed");
        // soak and fig14 dumps align in one trajectory table
        let fig14 = parse_dump(&dump(&[("SpReach", 8, "verified", 2.0)])).unwrap();
        let table = render(&["sweep".to_owned(), "soak".to_owned()], &[fig14, points]);
        assert!(table.contains("SpReach+delta"));
        assert!(table.contains("0.25s"));
        assert!(parse_dump(r#"{"soak":true,"rows":[{"bench":"X","k":4}]}"#).is_err());
    }

    #[test]
    fn render_produces_a_labelled_table() {
        let a = parse_dump(&dump(&[("SpReach", 4, "verified", 2.0)])).unwrap();
        let b = parse_dump(&dump(&[("SpReach", 4, "timeout", 60.0)])).unwrap();
        let table = render(&["base".to_owned(), "now".to_owned()], &[a, b]);
        assert!(table.contains("SpReach"));
        assert!(table.contains("2.00s"));
        assert!(table.contains("timeout"));
        assert!(table.contains("base") && table.contains("now"));
    }
}
