//! End-to-end tests of the scenario registry's CLI surface: registry-added
//! benchmarks sweep through `fig14`/`--json` like the paper's eight, unknown
//! names print the registered list, and `trend` ingests accumulated dumps.

use std::process::Command;

use timepiece_sched::Json;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn registry_scenarios_sweep_and_dump_json() {
    // one registry-added scenario (SpFail) end-to-end through fig14 + --json
    let json_path =
        std::env::temp_dir().join(format!("timepiece-registry-{}.json", std::process::id()));
    let out = repro()
        .args(["fig14", "--bench", "spfail", "--max-k", "4", "--no-ms"])
        .args(["--json", json_path.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SpFail"), "{text}");
    let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    std::fs::remove_file(&json_path).ok();
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("bench").and_then(Json::as_str), Some("SpFail"));
    assert_eq!(rows[0].get("figure").and_then(Json::as_str), Some("fail"));
    let tp = rows[0].get("tp").unwrap();
    assert_eq!(tp.get("outcome").and_then(Json::as_str), Some("verified"));
}

#[test]
fn unknown_bench_lists_the_registry() {
    let out = repro().args(["fig14", "--bench", "nosuch"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "unknown benchmark is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("registered benchmarks"), "{stderr}");
    for name in ["SpReach", "ApHijack", "SpMed", "SpAd", "SpFail"] {
        assert!(stderr.contains(name), "registry list must name {name}: {stderr}");
    }
}

#[test]
fn bench_names_parse_case_insensitively() {
    // matching is case-insensitive: "MED" sweeps both MED scenarios
    let out = repro()
        .args(["fig14", "--bench", "MED", "--ks", "4", "--no-ms"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SpMed") && text.contains("ApMed"), "{text}");
}

#[test]
fn trend_prints_trajectories_over_dumps() {
    let dir = std::env::temp_dir();
    let old = dir.join(format!("timepiece-trend-old-{}.json", std::process::id()));
    let new = dir.join(format!("timepiece-trend-new-{}.json", std::process::id()));
    std::fs::write(
        &old,
        r#"{"timeout_secs":60,"shards":1,"rows":[
            {"bench":"SpReach","figure":"14a","k":4,"nodes":20,
             "tp":{"outcome":"verified","wall_secs":4.0},"ms":null}]}"#,
    )
    .unwrap();
    std::fs::write(
        &new,
        r#"{"timeout_secs":60,"shards":1,"rows":[
            {"bench":"SpReach","figure":"14a","k":4,"nodes":20,
             "tp":{"outcome":"verified","wall_secs":2.0},"ms":null}]}"#,
    )
    .unwrap();
    let out = repro()
        .args(["trend", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .expect("repro runs");
    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SpReach"), "{text}");
    assert!(text.contains("4.00s") && text.contains("2.00s"), "{text}");
    assert!(text.contains("2.00x"), "end-to-end speedup column: {text}");
}

#[test]
fn trend_rejects_missing_and_malformed_dumps() {
    let out = repro().args(["trend"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "no paths is a usage error");
    let out = repro().args(["trend", "/nonexistent/rows.json"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let bad = std::env::temp_dir().join(format!("timepiece-trend-bad-{}.json", std::process::id()));
    std::fs::write(&bad, "not json").unwrap();
    let out = repro().args(["trend", bad.to_str().unwrap()]).output().expect("repro runs");
    std::fs::remove_file(&bad).ok();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed"));
}
