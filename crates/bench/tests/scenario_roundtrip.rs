//! Every registry scenario must survive export → recompile with an identical
//! verdict map: the scenario text format is only useful if it is a faithful
//! second syntax for the benchmarks, not an approximation of them.

use timepiece_bench::{fattree_instance, BenchKind};
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_core::CheckReport;
use timepiece_nets::BenchInstance;

/// The verdict map: overall result plus the sorted failing node names, which
/// is what `repro fig14` surfaces to users.
fn verdicts(inst: &BenchInstance) -> (bool, Vec<String>) {
    let checker = ModularChecker::new(CheckOptions::default());
    let report: CheckReport = checker
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("encoding should not fail");
    let mut failing: Vec<String> = report.failures().iter().map(|f| f.node_name.clone()).collect();
    failing.sort();
    failing.dedup();
    (report.is_verified(), failing)
}

#[test]
fn every_registry_scenario_round_trips_at_k4() {
    let kinds: Vec<BenchKind> = BenchKind::all().collect();
    assert!(kinds.len() >= 13, "registry lost scenarios: {}", kinds.len());
    for kind in kinds {
        let k = kind.native_k().unwrap_or(4);
        let original = fattree_instance(kind, k);
        let text = timepiece_scenario::export_instance(kind.name(), kind.figure(), &original, k)
            .unwrap_or_else(|e| panic!("{} does not export: {e}", kind.name()));
        let compiled = timepiece_scenario::compile_str(&text)
            .unwrap_or_else(|e| panic!("{} does not recompile: {e}", kind.name()));
        assert_eq!(compiled.name, kind.name(), "scenario name survives the trip");
        let recompiled = compiled.instance();
        assert_eq!(
            original.network.topology().node_count(),
            recompiled.network.topology().node_count(),
            "{}: node count changed across the round trip",
            kind.name()
        );
        let before = verdicts(&original);
        let after = verdicts(&recompiled);
        assert_eq!(before, after, "{}: verdict map changed across export → recompile", kind.name());
    }
}
