//! End-to-end test of the multi-process sharding pipeline: the real `repro`
//! binary, real forked shard workers, real JSON over the process boundary.

use std::process::Command;

use timepiece_bench::ShardReport;
use timepiece_sched::Json;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn shard_worker_emits_a_parsable_report() {
    let out = repro()
        .args(["shard-worker", "--bench", "SpReach", "--k", "4", "--shard", "1", "--shards", "2"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let report = ShardReport::from_json(&Json::parse(&text).expect("valid JSON")).unwrap();
    assert_eq!(report.bench, "SpReach");
    assert_eq!((report.k, report.shard, report.shards), (4, 1, 2));
    assert_eq!(report.assigned.len(), 10, "half of the 20-node fattree");
    assert_eq!(report.durations.len(), report.assigned.len());
    assert!(report.failures.is_empty(), "SpReach k=4 verifies");
}

#[test]
fn sharded_fig14_merges_reports_and_writes_json_rows() {
    let json_path =
        std::env::temp_dir().join(format!("timepiece-rows-{}.json", std::process::id()));
    let out = repro()
        .args(["fig14", "--bench", "spreach", "--max-k", "4", "--shards", "2", "--no-ms"])
        .args(["--json", json_path.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // the plain-text sweep output is unchanged by --json/--shards
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("=== Fig. 14a — SpReach (Tp vs Ms) ==="), "{text}");
    assert!(text.contains("Tp total"), "{text}");

    // the JSON document has the promised row shape
    let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    std::fs::remove_file(&json_path).ok();
    assert_eq!(doc.get("shards").and_then(Json::as_usize), Some(2));
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1, "one benchmark × one k");
    let row = &rows[0];
    assert_eq!(row.get("bench").and_then(Json::as_str), Some("SpReach"));
    assert_eq!(row.get("k").and_then(Json::as_usize), Some(4));
    assert_eq!(row.get("nodes").and_then(Json::as_usize), Some(20));
    let tp = row.get("tp").unwrap();
    assert_eq!(tp.get("outcome").and_then(Json::as_str), Some("verified"));
    assert!(tp.get("wall_secs").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(tp.get("median_secs").and_then(Json::as_f64).is_some());
    assert!(tp.get("p99_secs").and_then(Json::as_f64).is_some());
    assert_eq!(tp.get("shards").and_then(Json::as_usize), Some(2));
    assert_eq!(row.get("ms"), Some(&Json::Null), "--no-ms skips the baseline");
}

#[test]
fn shard_worker_replays_an_explicit_node_list() {
    // the deterministic-replay contract: any shard reruns from its report's
    // recorded plan spec and assigned node list alone
    let spec =
        r#"{"kind":"adaptive","class_costs":[["core",8.0],["edge",1.0]],"sources":["older-dump"]}"#;
    let nodes = "core-0,edge-0-0,edge-1-1";
    let out = repro()
        .args(["shard-worker", "--bench", "SpReach", "--k", "4", "--shard", "0", "--shards", "3"])
        .args(["--nodes", nodes, "--plan-spec", spec])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let report = ShardReport::from_json(&Json::parse(&text).expect("valid JSON")).unwrap();
    assert_eq!(report.assigned, ["core-0", "edge-0-0", "edge-1-1"]);
    assert_eq!(report.durations.len(), 3, "exactly the explicit nodes are checked");
    assert_eq!(report.plan.kind, "adaptive");
    assert_eq!(report.plan.class_costs, [("core".to_owned(), 8.0), ("edge".to_owned(), 1.0)]);
    assert_eq!(report.plan.sources, ["older-dump"]);
    assert!(report.failures.is_empty(), "SpReach k=4 verifies");

    let out = repro()
        .args(["shard-worker", "--bench", "SpReach", "--k", "4", "--shard", "0", "--shards", "3"])
        .args(["--nodes", "core-0,no-such-node"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "unknown node names must be a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-node"), "stderr: {stderr}");
}

#[test]
fn plan_subcommand_prints_both_planners() {
    let out = repro()
        .args(["plan", "--bench", "SpReach", "--k", "4", "--shards", "2"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("20 nodes over 2 shards"), "{text}");
    assert!(text.contains("cost model: uniform"), "{text}");
    assert!(text.contains("--- striped plan"), "{text}");
    assert!(text.contains("--- adaptive plan"), "{text}");
    assert!(text.contains("core-0"), "plans list nodes by name: {text}");
}

#[test]
fn shard_worker_rejects_bad_arguments() {
    let out = repro()
        .args(["shard-worker", "--bench", "SpReach", "--k", "4", "--shard", "5", "--shards", "2"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "out-of-range shard index must fail");
    let out = repro().args(["shard-worker", "--bench", "SpReach"]).output().expect("repro runs");
    assert!(!out.status.success(), "missing --k/--shard must fail");
}

#[test]
fn ks_flag_rejects_invalid_fattree_parameters() {
    for bad in ["3", "0", "4,7"] {
        let out = repro().args(["fig14", "--ks", bad]).output().expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "--ks {bad} must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("even and >= 2"), "stderr for {bad}: {stderr}");
    }
}
