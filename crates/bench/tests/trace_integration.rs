//! End-to-end tracing: a 4-thread modular check of a real benchmark
//! instance must produce a Chrome trace with one complete, labelled track
//! per worker thread, a verdict-carrying node span per network node, and a
//! document that survives the JSON codec round trip.

use std::time::Duration;

use timepiece_bench::{fattree_instance, BenchKind};
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_sched::Json;
use timepiece_trace::{chrome_trace, Phase, SpanKind};

#[test]
fn four_worker_check_yields_one_complete_track_per_worker() {
    timepiece_trace::enable();
    let _ = timepiece_trace::take();
    let inst = fattree_instance(BenchKind::parse("SpReach").expect("registered"), 4);
    let checker = ModularChecker::new(CheckOptions {
        threads: Some(4),
        timeout: Some(Duration::from_secs(60)),
        ..CheckOptions::default()
    });
    let report = checker.check(&inst.network, &inst.interface, &inst.property).expect("encodes");
    assert!(report.is_verified(), "SpReach k=4 verifies");
    timepiece_trace::disable();
    let trace = timepiece_trace::take();

    // one verdict-carrying node span per network node, each with encode and
    // solve work nested inside it
    let nodes: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Complete && s.phase == Phase::Node)
        .collect();
    assert_eq!(nodes.len(), inst.network.topology().node_count());
    assert!(nodes.iter().all(|s| s.arg("verdict") == Some("verified")), "all verified");
    assert!(nodes.iter().all(|s| !s.arg("class").unwrap_or("").is_empty()), "classes tagged");
    for phase in [Phase::Encode, Phase::Solve] {
        let nested = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Complete && s.phase == phase)
            .filter(|s| nodes.iter().any(|n| n.id == s.parent))
            .count();
        assert!(nested >= nodes.len(), "every node span nests {phase} work");
    }

    // exactly the four workers registered labelled tracks, and each track
    // carries at least one complete span
    let workers: Vec<_> = trace.threads.iter().filter(|t| t.label.starts_with("worker")).collect();
    assert_eq!(workers.len(), 4, "threads: {:?}", trace.threads);
    for worker in &workers {
        assert!(
            trace.spans.iter().any(|s| s.tid == worker.tid && s.kind == SpanKind::Complete),
            "worker track {} carries no complete span",
            worker.label
        );
    }

    // the Chrome export survives a print/parse round trip and names every
    // worker track in its thread_name metadata
    let doc = chrome_trace(&trace);
    let parsed = Json::parse(&doc.to_string()).expect("chrome trace is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let labelled: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
        .collect();
    for worker in workers {
        assert!(labelled.contains(&worker.label.as_str()), "no track named {}", worker.label);
    }
    // complete events carry microsecond timestamps and the span linkage
    let complete = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"));
    for event in complete {
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("dur").and_then(Json::as_f64).is_some());
        assert!(event.get("args").and_then(|a| a.get("span_id")).is_some());
    }
}
