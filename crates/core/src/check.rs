//! The modular checking procedure (Algorithm 1).
//!
//! For every node the three verification conditions are encoded and
//! discharged *independently*; nodes are distributed over a pool of worker
//! threads, each owning its own (thread-local) Z3 context. The report records
//! per-node wall times so the paper's total/median/p99 figures can be
//! reproduced.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use timepiece_algebra::Network;
use timepiece_expr::Env;
use timepiece_smt::{SolverSession, Validity};
use timepiece_topology::NodeId;

use crate::error::CoreError;
use crate::interface::NodeAnnotations;
use crate::stats::TimingStats;
use crate::vc::{inductive_vc, initial_vc, safety_vc, VcKind};

/// Options controlling a modular check.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Per-condition solver timeout (`None`: unbounded).
    pub timeout: Option<Duration>,
    /// Worker threads (`None`: all available parallelism).
    pub threads: Option<usize>,
    /// Units of message delay tolerated by the inductive condition (§4).
    pub delay: u64,
    /// Stop scheduling new nodes after the first failure.
    pub fail_fast: bool,
}

/// Why a node failed its check.
#[derive(Debug, Clone)]
pub enum FailureReason {
    /// The solver produced a falsifying assignment.
    CounterExample(Box<timepiece_smt::CounterExample>),
    /// The solver gave up (timeout/incompleteness).
    Unknown(String),
}

/// A failed condition at a node.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The failing node.
    pub node: NodeId,
    /// Its name in the topology.
    pub node_name: String,
    /// Which condition failed.
    pub vc: VcKind,
    /// The counterexample or solver give-up reason.
    pub reason: FailureReason,
}

impl Failure {
    /// The falsifying assignment, when the solver produced one.
    pub fn counterexample(&self) -> Option<&Env> {
        match &self.reason {
            FailureReason::CounterExample(cex) => Some(&cex.assignment),
            FailureReason::Unknown(_) => None,
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.reason {
            FailureReason::CounterExample(cex) => {
                write!(f, "{} condition failed at {}: {}", self.vc, self.node_name, cex)
            }
            FailureReason::Unknown(why) => {
                write!(f, "{} condition unknown at {}: {}", self.vc, self.node_name, why)
            }
        }
    }
}

/// The outcome of a modular check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    failures: Vec<Failure>,
    node_durations: Vec<(NodeId, Duration)>,
    wall: Duration,
}

impl CheckReport {
    /// Did every condition at every node hold?
    pub fn is_verified(&self) -> bool {
        self.failures.is_empty()
    }

    /// All failures found (empty when verified).
    pub fn failures(&self) -> &[Failure] {
        &self.failures
    }

    /// Per-node total check durations (all three conditions).
    pub fn node_durations(&self) -> &[(NodeId, Duration)] {
        &self.node_durations
    }

    /// Statistics over per-node durations (median, p99, …).
    pub fn stats(&self) -> TimingStats {
        let durations: Vec<Duration> = self.node_durations.iter().map(|(_, d)| *d).collect();
        TimingStats::from_durations(&durations)
    }

    /// Wall-clock time of the whole (parallel) check.
    pub fn wall(&self) -> Duration {
        self.wall
    }
}

/// Runs the paper's `CheckMod` procedure over all nodes of a network.
#[derive(Debug, Default)]
pub struct ModularChecker {
    options: CheckOptions,
}

impl ModularChecker {
    /// Creates a checker with the given options.
    pub fn new(options: CheckOptions) -> ModularChecker {
        ModularChecker { options }
    }

    /// Checks the initial, inductive and safety conditions of a single node,
    /// returning its failures and the time spent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Smt`] if a condition cannot be encoded (ill-typed
    /// network or interface).
    pub fn check_node(
        &self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        v: NodeId,
    ) -> Result<(Vec<Failure>, Duration), CoreError> {
        let start = Instant::now();
        let conditions = [
            (VcKind::Initial, initial_vc(net, interface, v)),
            (VcKind::Inductive, inductive_vc(net, interface, v, self.options.delay)),
            (VcKind::Safety, safety_vc(net, interface, property, v)),
        ];
        // one solver discharges all three conditions via push/pop, sharing
        // variable declarations and the compiled-term cache across them
        let mut session = SolverSession::new(self.options.timeout);
        let mut failures = Vec::new();
        for (kind, vc) in conditions {
            match session.check(&vc)? {
                Validity::Valid => {}
                Validity::Invalid(cex) => failures.push(Failure {
                    node: v,
                    node_name: net.topology().name(v).to_owned(),
                    vc: kind,
                    reason: FailureReason::CounterExample(cex),
                }),
                Validity::Unknown(why) => failures.push(Failure {
                    node: v,
                    node_name: net.topology().name(v).to_owned(),
                    vc: kind,
                    reason: FailureReason::Unknown(why),
                }),
            }
        }
        Ok((failures, start.elapsed()))
    }

    /// Checks every node, in parallel, and aggregates a report.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] raised by any worker (encoding
    /// failures); solver counterexamples are *not* errors, they are reported
    /// as [`Failure`]s.
    pub fn check(
        &self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
    ) -> Result<CheckReport, CoreError> {
        let start = Instant::now();
        let nodes: Vec<NodeId> = net.topology().nodes().collect();
        let workers = self
            .options
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, nodes.len().max(1));

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let failures = Mutex::new(Vec::new());
        let durations = Mutex::new(Vec::new());
        let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&v) = nodes.get(i) else { break };
                    match self.check_node(net, interface, property, v) {
                        Ok((node_failures, duration)) => {
                            durations.lock().push((v, duration));
                            if !node_failures.is_empty() {
                                if self.options.fail_fast {
                                    stop.store(true, Ordering::Relaxed);
                                }
                                failures.lock().extend(node_failures);
                            }
                        }
                        Err(e) => {
                            stop.store(true, Ordering::Relaxed);
                            first_error.lock().get_or_insert(e);
                        }
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let mut node_durations = durations.into_inner();
        node_durations.sort_by_key(|(v, _)| *v);
        let mut failures = failures.into_inner();
        failures.sort_by_key(|f| f.node);
        Ok(CheckReport { failures, node_durations, wall: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    /// Boolean-reachability network over an undirected path of length `n`.
    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    /// Exact reachability interface: node `i` has the route from time `i` on.
    fn reach_interface(net: &Network) -> NodeAnnotations {
        NodeAnnotations::from_fn(net.topology(), |v| {
            let t = v.index() as u64;
            if t == 0 {
                Temporal::globally(|r| r.clone())
            } else {
                Temporal::until_at(t, |r| r.clone().not(), Temporal::globally(|r| r.clone()))
            }
        })
    }

    #[test]
    fn verifies_correct_interfaces() {
        let net = reach_net(5);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::from_fn(net.topology(), |v| {
            Temporal::finally_at(v.index() as u64, Temporal::globally(|r| r.clone()))
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
        assert_eq!(report.node_durations().len(), 5);
        assert!(report.stats().count == 5);
        assert!(report.wall() > Duration::ZERO);
    }

    #[test]
    fn localizes_failures_to_the_buggy_node() {
        let net = reach_net(4);
        let mut interface = reach_interface(&net);
        // sabotage node v2's interface: claims the route arrives at t=1
        let v2 = net.topology().node_by_name("v2").unwrap();
        interface
            .set(v2, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(!report.is_verified());
        // failures only at v2 (its own conditions) and v3 (which assumed v2)
        let failing: std::collections::BTreeSet<&str> =
            report.failures().iter().map(|f| f.node_name.as_str()).collect();
        assert!(failing.contains("v2"));
        assert!(!failing.contains("v0"));
        assert!(!failing.contains("v1"));
        // every failure carries a decodable counterexample
        for f in report.failures() {
            assert!(f.counterexample().is_some(), "{f}");
        }
    }

    #[test]
    fn single_thread_and_parallel_agree() {
        let net = reach_net(6);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let seq = ModularChecker::new(CheckOptions { threads: Some(1), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        let par = ModularChecker::new(CheckOptions { threads: Some(4), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        assert_eq!(seq.is_verified(), par.is_verified());
        assert_eq!(seq.node_durations().len(), par.node_durations().len());
    }

    #[test]
    fn fail_fast_stops_early() {
        let net = reach_net(8);
        // interface that fails everywhere: no node ever has a route
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions {
            fail_fast: true,
            threads: Some(1),
            ..Default::default()
        })
        .check(&net, &interface, &property)
        .unwrap();
        assert!(!report.is_verified());
        // with fail-fast and one thread, scheduling stops after the first bad node
        assert!(report.node_durations().len() < 8);
    }

    #[test]
    fn fail_fast_schedules_nothing_after_the_first_failure() {
        let net = reach_net(6);
        // every node's conditions fail
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions {
            fail_fast: true,
            threads: Some(1),
            ..CheckOptions::default()
        })
        .check(&net, &interface, &property)
        .unwrap();
        // with one worker the queue stops immediately: exactly one node ran
        assert_eq!(report.node_durations().len(), 1);
        assert!(!report.is_verified());
    }

    #[test]
    fn without_fail_fast_every_node_is_checked() {
        let net = reach_net(6);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions { threads: Some(1), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        // every node is checked even though v0 fails early in the schedule
        assert_eq!(report.node_durations().len(), 6);
        // and the failure stays localized: only the origin violates the
        // "no route ever" interface (its initial route is the route)
        let failing: std::collections::BTreeSet<&str> =
            report.failures().iter().map(|f| f.node_name.as_str()).collect();
        assert_eq!(failing.into_iter().collect::<Vec<_>>(), ["v0"]);
    }

    #[test]
    fn report_failure_display() {
        let net = reach_net(2);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        let text = report.failures()[0].to_string();
        assert!(text.contains("condition failed at"));
    }
}
