//! The modular checking procedure (Algorithm 1).
//!
//! For every node the three verification conditions are encoded and
//! discharged *independently*; nodes are distributed over a work-stealing
//! pool of worker threads (`timepiece-sched`), each owning its own
//! (thread-local) Z3 context. A worker batches every node it claims through
//! one long-lived solver session per encoder signature, so declarations and
//! compiled terms are shared *across* nodes, not just across one node's
//! three conditions. The report records per-node wall times so the paper's
//! total/median/p99 figures can be reproduced.

use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

use timepiece_algebra::Network;
use timepiece_expr::Env;
use timepiece_sched::{CancelToken, SchedStats};
use timepiece_smt::{SessionPool, SolverSession, TermCacheStats, Validity};
use timepiece_topology::NodeId;

use crate::error::CoreError;
use crate::interface::NodeAnnotations;
use crate::stats::TimingStats;
use crate::vc::{inductive_vc, initial_vc, safety_vc, VcKind};

/// Options controlling a modular check.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Per-condition solver timeout (`None`: unbounded).
    pub timeout: Option<Duration>,
    /// Worker threads (`None`: all available parallelism).
    pub threads: Option<usize>,
    /// Units of message delay tolerated by the inductive condition (§4).
    pub delay: u64,
    /// Stop scheduling new nodes after the first failure.
    pub fail_fast: bool,
    /// Bound each worker's solver-session pool to this many sessions,
    /// evicting least-recently-used ones (`None`: unbounded). Long-running
    /// services set this: every distinct policy edit opens a session under a
    /// fresh encoder signature.
    pub session_cap: Option<usize>,
}

impl CheckOptions {
    /// A session pool honoring [`CheckOptions::timeout`] and
    /// [`CheckOptions::session_cap`].
    pub(crate) fn session_pool(&self) -> SessionPool {
        match self.session_cap {
            Some(cap) => SessionPool::with_capacity(self.timeout, cap),
            None => SessionPool::new(self.timeout),
        }
    }
}

/// Why a node failed its check.
#[derive(Debug, Clone)]
pub enum FailureReason {
    /// The solver produced a falsifying assignment.
    CounterExample(Box<timepiece_smt::CounterExample>),
    /// The solver gave up (timeout/incompleteness).
    Unknown(String),
}

/// A failed condition at a node.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The failing node.
    pub node: NodeId,
    /// Its name in the topology.
    pub node_name: String,
    /// Which condition failed.
    pub vc: VcKind,
    /// The counterexample or solver give-up reason.
    pub reason: FailureReason,
}

impl Failure {
    /// The falsifying assignment, when the solver produced one.
    pub fn counterexample(&self) -> Option<&Env> {
        match &self.reason {
            FailureReason::CounterExample(cex) => Some(&cex.assignment),
            FailureReason::Unknown(_) => None,
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.reason {
            FailureReason::CounterExample(cex) => {
                write!(f, "{} condition failed at {}: {}", self.vc, self.node_name, cex)
            }
            FailureReason::Unknown(why) => {
                write!(f, "{} condition unknown at {}: {}", self.vc, self.node_name, why)
            }
        }
    }
}

/// The outcome of a modular check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    failures: Vec<Failure>,
    node_durations: Vec<(NodeId, Duration)>,
    wall: Duration,
    sched: Option<SchedStats>,
    terms: Option<TermCacheStats>,
}

impl CheckReport {
    /// Did every condition at every node hold?
    pub fn is_verified(&self) -> bool {
        self.failures.is_empty()
    }

    /// All failures found (empty when verified).
    pub fn failures(&self) -> &[Failure] {
        &self.failures
    }

    /// Per-node total check durations (all three conditions).
    pub fn node_durations(&self) -> &[(NodeId, Duration)] {
        &self.node_durations
    }

    /// Statistics over per-node durations (median, p99, …).
    pub fn stats(&self) -> TimingStats {
        let durations: Vec<Duration> = self.node_durations.iter().map(|(_, d)| *d).collect();
        TimingStats::from_durations(&durations)
    }

    /// Wall-clock time of the whole (parallel) check.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Scheduler statistics (worker/steal counts) of the run that produced
    /// this report. `None` on merged reports.
    pub fn scheduler(&self) -> Option<&SchedStats> {
        self.sched.as_ref()
    }

    /// Compiled-term cache traffic attributable to this check, summed over
    /// the workers that ran it. For a scoped check the counters start at
    /// zero (fresh sessions); for a [`crate::sweep::CheckerPool`] check the
    /// hits include terms first compiled by *earlier* rows through the same
    /// persistent sessions — the cross-row hit rate. `None` when the
    /// producer predates the counters (e.g. deserialized shard reports).
    pub fn term_cache(&self) -> Option<TermCacheStats> {
        self.terms
    }

    /// Assembles a report from its parts (used by the cross-row
    /// [`crate::sweep::CheckerPool`], which collects results from persistent
    /// workers rather than a scoped scheduler run).
    pub(crate) fn from_parts(
        mut failures: Vec<Failure>,
        mut node_durations: Vec<(NodeId, Duration)>,
        wall: Duration,
        terms: Option<TermCacheStats>,
    ) -> CheckReport {
        node_durations.sort_by_key(|(v, _)| *v);
        failures.sort_by_key(|f| f.node);
        CheckReport { failures, node_durations, wall, sched: None, terms }
    }

    /// Merges shard reports into one: failures and durations are
    /// concatenated (and re-sorted by node), the wall time is the maximum —
    /// shards run concurrently, so the slowest one bounds the merged run.
    /// Term-cache counters sum over the shards that carry them.
    pub fn merge(reports: impl IntoIterator<Item = CheckReport>) -> CheckReport {
        let mut merged = CheckReport {
            failures: Vec::new(),
            node_durations: Vec::new(),
            wall: Duration::ZERO,
            sched: None,
            terms: None,
        };
        for report in reports {
            merged.failures.extend(report.failures);
            merged.node_durations.extend(report.node_durations);
            merged.wall = merged.wall.max(report.wall);
            if let Some(t) = report.terms {
                *merged.terms.get_or_insert_with(TermCacheStats::default) += t;
            }
        }
        merged.node_durations.sort_by_key(|(v, _)| *v);
        merged.failures.sort_by_key(|f| f.node);
        merged
    }
}

/// Runs the paper's `CheckMod` procedure over all nodes of a network.
#[derive(Debug, Default)]
pub struct ModularChecker {
    options: CheckOptions,
}

impl ModularChecker {
    /// Creates a checker with the given options.
    pub fn new(options: CheckOptions) -> ModularChecker {
        ModularChecker { options }
    }

    /// Checks the initial, inductive and safety conditions of a single node,
    /// returning its failures and the time spent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Smt`] if a condition cannot be encoded (ill-typed
    /// network or interface).
    pub fn check_node(
        &self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        v: NodeId,
    ) -> Result<(Vec<Failure>, Duration), CoreError> {
        let mut session = SolverSession::new(self.options.timeout);
        let never = AtomicBool::new(false);
        let result = self.check_node_in_session(&mut session, &never, net, interface, property, v);
        Ok(result?.expect("a check without a canceller runs to completion"))
    }

    /// Discharges one node's three conditions through an existing session —
    /// the batched path: the session (and its encoder cache) typically
    /// outlives many nodes on one scheduler worker.
    ///
    /// Returns `None` when `cancel` was raised and the node was abandoned
    /// part-way; abandoned nodes report neither failures nor durations.
    ///
    /// # Errors
    ///
    /// As [`ModularChecker::check_node`].
    pub(crate) fn check_node_in_session(
        &self,
        session: &mut SolverSession,
        cancel: &AtomicBool,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        v: NodeId,
    ) -> Result<Option<(Vec<Failure>, Duration)>, CoreError> {
        let start = Instant::now();
        let mut node_span =
            timepiece_trace::span(timepiece_trace::Phase::Node, net.topology().name(v));
        node_span.arg("class", net.topology().node_class(v));
        let conditions = [
            (VcKind::Initial, initial_vc(net, interface, v)),
            (VcKind::Inductive, inductive_vc(net, interface, v, self.options.delay)),
            (VcKind::Safety, safety_vc(net, interface, property, v)),
        ];
        // one solver discharges all three conditions via push/pop, sharing
        // variable declarations and the compiled-term cache across them; the
        // cancellation flag is consulted between scopes so a fail-fast stop
        // lands within one condition, not one node
        let mut failures = Vec::new();
        for (kind, vc) in conditions {
            match session.check_cancellable(&vc, cancel)? {
                None => {
                    node_span.arg("verdict", "abandoned");
                    return Ok(None);
                }
                Some(Validity::Valid) => {}
                Some(Validity::Invalid(cex)) => failures.push(Failure {
                    node: v,
                    node_name: net.topology().name(v).to_owned(),
                    vc: kind,
                    reason: FailureReason::CounterExample(cex),
                }),
                Some(Validity::Unknown(why)) => failures.push(Failure {
                    node: v,
                    node_name: net.topology().name(v).to_owned(),
                    vc: kind,
                    reason: FailureReason::Unknown(why),
                }),
            }
        }
        node_span.arg("verdict", if failures.is_empty() { "verified" } else { "failed" });
        Ok(Some((failures, start.elapsed())))
    }

    /// Checks every node, in parallel, and aggregates a report.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] raised by any worker (encoding
    /// failures); solver counterexamples are *not* errors, they are reported
    /// as [`Failure`]s.
    pub fn check(
        &self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
    ) -> Result<CheckReport, CoreError> {
        let nodes: Vec<NodeId> = net.topology().nodes().collect();
        self.check_nodes(net, interface, property, &nodes)
    }

    /// Checks a subset of nodes — one *shard* of the network — in parallel,
    /// and aggregates a report over exactly those nodes.
    ///
    /// This is the entrypoint shard worker processes use: the coordinator
    /// plans a deterministic partition (`timepiece_sched::ShardPlan`), each
    /// worker checks its shard, and the merged reports
    /// ([`CheckReport::merge`]) cover the whole network.
    ///
    /// Scheduling: nodes are drained through a work-stealing pool; each
    /// worker thread batches the nodes it claims through one long-lived
    /// solver session per encoder signature, so symbolic-destination
    /// constraints and role-templated interfaces shared by many nodes are
    /// encoded once per worker. Under [`CheckOptions::fail_fast`], the first
    /// failure cancels the pool *and* interrupts in-flight solver calls.
    ///
    /// # Errors
    ///
    /// As [`ModularChecker::check`].
    pub fn check_nodes(
        &self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        nodes: &[NodeId],
    ) -> Result<CheckReport, CoreError> {
        let start = Instant::now();
        let workers = self
            .options
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, nodes.len().max(1));
        let token = CancelToken::new();
        // sessions are keyed by the network's encoder signature — a
        // structural hash of the policy IR when the network carries one
        // (falling back to the route type) — so conditions over the same
        // declarations and shared terms go through the same session
        let signature = net.encoder_signature();
        let fail_fast = self.options.fail_fast;
        // worker states die with the scoped run, so per-node term-cache
        // deltas are folded into a shared accumulator as they happen
        let terms = std::sync::Mutex::new(TermCacheStats::default());

        let outcome = timepiece_sched::run(
            nodes.to_vec(),
            workers,
            &token,
            |_worker| self.options.session_pool(),
            |pool: &mut SessionPool, v| -> Result<_, CoreError> {
                let before = pool.term_cache_stats();
                let session = pool.session_or_init(&signature, |s| {
                    // a fail-fast cancel must also abort this worker's
                    // in-flight solver call, not just stop the queue
                    let handle = s.interrupt_handle();
                    token.on_cancel(move || handle.interrupt());
                });
                let checked =
                    self.check_node_in_session(session, token.flag(), net, interface, property, v);
                *terms.lock().expect("term stats lock") +=
                    pool.term_cache_stats().delta_since(&before);
                let Some((failures, duration)) = checked? else {
                    return Ok(None);
                };
                if fail_fast && !failures.is_empty() {
                    token.cancel();
                }
                Ok(Some((v, failures, duration)))
            },
        )?;

        let mut node_durations = Vec::with_capacity(outcome.results.len());
        let mut failures = Vec::new();
        for (v, node_failures, duration) in outcome.results {
            node_durations.push((v, duration));
            failures.extend(node_failures);
        }
        node_durations.sort_by_key(|(v, _)| *v);
        failures.sort_by_key(|f| f.node);
        Ok(CheckReport {
            failures,
            node_durations,
            wall: start.elapsed(),
            sched: Some(outcome.stats),
            terms: Some(terms.into_inner().expect("term stats lock")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    /// Boolean-reachability network over an undirected path of length `n`.
    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    /// Exact reachability interface: node `i` has the route from time `i` on.
    fn reach_interface(net: &Network) -> NodeAnnotations {
        NodeAnnotations::from_fn(net.topology(), |v| {
            let t = v.index() as u64;
            if t == 0 {
                Temporal::globally(|r| r.clone())
            } else {
                Temporal::until_at(t, |r| r.clone().not(), Temporal::globally(|r| r.clone()))
            }
        })
    }

    #[test]
    fn verifies_correct_interfaces() {
        let net = reach_net(5);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::from_fn(net.topology(), |v| {
            Temporal::finally_at(v.index() as u64, Temporal::globally(|r| r.clone()))
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
        assert_eq!(report.node_durations().len(), 5);
        assert!(report.stats().count == 5);
        assert!(report.wall() > Duration::ZERO);
    }

    #[test]
    fn localizes_failures_to_the_buggy_node() {
        let net = reach_net(4);
        let mut interface = reach_interface(&net);
        // sabotage node v2's interface: claims the route arrives at t=1
        let v2 = net.topology().node_by_name("v2").unwrap();
        interface
            .set(v2, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(!report.is_verified());
        // failures only at v2 (its own conditions) and v3 (which assumed v2)
        let failing: std::collections::BTreeSet<&str> =
            report.failures().iter().map(|f| f.node_name.as_str()).collect();
        assert!(failing.contains("v2"));
        assert!(!failing.contains("v0"));
        assert!(!failing.contains("v1"));
        // every failure carries a decodable counterexample
        for f in report.failures() {
            assert!(f.counterexample().is_some(), "{f}");
        }
    }

    #[test]
    fn single_thread_and_parallel_agree() {
        let net = reach_net(6);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let seq = ModularChecker::new(CheckOptions { threads: Some(1), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        let par = ModularChecker::new(CheckOptions { threads: Some(4), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        assert_eq!(seq.is_verified(), par.is_verified());
        assert_eq!(seq.node_durations().len(), par.node_durations().len());
    }

    #[test]
    fn fail_fast_stops_early() {
        let net = reach_net(8);
        // interface that fails everywhere: no node ever has a route
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions {
            fail_fast: true,
            threads: Some(1),
            ..Default::default()
        })
        .check(&net, &interface, &property)
        .unwrap();
        assert!(!report.is_verified());
        // with fail-fast and one thread, scheduling stops after the first bad node
        assert!(report.node_durations().len() < 8);
    }

    #[test]
    fn fail_fast_schedules_nothing_after_the_first_failure() {
        let net = reach_net(6);
        // every node's conditions fail
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions {
            fail_fast: true,
            threads: Some(1),
            ..CheckOptions::default()
        })
        .check(&net, &interface, &property)
        .unwrap();
        // with one worker the queue stops immediately: exactly one node ran
        assert_eq!(report.node_durations().len(), 1);
        assert!(!report.is_verified());
    }

    #[test]
    fn without_fail_fast_every_node_is_checked() {
        let net = reach_net(6);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions { threads: Some(1), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        // every node is checked even though v0 fails early in the schedule
        assert_eq!(report.node_durations().len(), 6);
        // and the failure stays localized: only the origin violates the
        // "no route ever" interface (its initial route is the route)
        let failing: std::collections::BTreeSet<&str> =
            report.failures().iter().map(|f| f.node_name.as_str()).collect();
        assert_eq!(failing.into_iter().collect::<Vec<_>>(), ["v0"]);
    }

    #[test]
    fn check_nodes_covers_exactly_the_requested_shard() {
        let net = reach_net(6);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let all: Vec<_> = net.topology().nodes().collect();
        let checker = ModularChecker::new(CheckOptions::default());
        let shard_a = checker.check_nodes(&net, &interface, &property, &all[..2]).unwrap();
        let shard_b = checker.check_nodes(&net, &interface, &property, &all[2..]).unwrap();
        assert_eq!(shard_a.node_durations().len(), 2);
        assert_eq!(shard_b.node_durations().len(), 4);
        let merged = CheckReport::merge([shard_a.clone(), shard_b.clone()]);
        assert!(merged.is_verified());
        assert_eq!(merged.node_durations().len(), 6);
        // durations are re-sorted by node id across the shard boundary
        let order: Vec<_> = merged.node_durations().iter().map(|(v, _)| *v).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        // the merged wall is the slowest shard, not the sum
        assert_eq!(merged.wall(), shard_a.wall().max(shard_b.wall()));
        assert!(merged.scheduler().is_none(), "merged reports span schedulers");
    }

    #[test]
    fn sharded_and_whole_checks_find_the_same_failures() {
        let net = reach_net(6);
        let mut interface = reach_interface(&net);
        let v3 = net.topology().node_by_name("v3").unwrap();
        interface
            .set(v3, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let checker = ModularChecker::new(CheckOptions::default());
        let whole = checker.check(&net, &interface, &property).unwrap();
        let all: Vec<_> = net.topology().nodes().collect();
        let merged = CheckReport::merge(
            [&all[..1], &all[1..4], &all[4..]]
                .into_iter()
                .map(|shard| checker.check_nodes(&net, &interface, &property, shard).unwrap()),
        );
        let names = |r: &CheckReport| -> Vec<String> {
            r.failures().iter().map(|f| f.node_name.clone()).collect()
        };
        assert_eq!(names(&whole), names(&merged));
        assert!(!whole.is_verified());
    }

    #[test]
    fn scheduler_stats_expose_batched_workers() {
        let net = reach_net(6);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions { threads: Some(4), ..Default::default() })
            .check(&net, &interface, &property)
            .unwrap();
        let stats = report.scheduler().expect("fresh report carries stats");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.claimed.iter().sum::<usize>(), 6, "every node claimed exactly once");
        assert!(!stats.cancelled);
    }

    #[test]
    fn empty_shard_produces_an_empty_verified_report() {
        let net = reach_net(3);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check_nodes(&net, &interface, &property, &[])
            .unwrap();
        assert!(report.is_verified());
        assert_eq!(report.node_durations().len(), 0);
        assert_eq!(report.stats().count, 0);
    }

    #[test]
    fn fail_fast_abandons_inflight_nodes_without_reporting_them() {
        // all nodes fail; with several threads racing, the cancel raised by
        // the first failure abandons the others' in-flight nodes — whatever
        // interleaving happens, abandoned nodes must leave no trace
        let net = reach_net(8);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions {
            fail_fast: true,
            threads: Some(4),
            ..CheckOptions::default()
        })
        .check(&net, &interface, &property)
        .unwrap();
        assert!(!report.is_verified());
        assert!(report.scheduler().unwrap().cancelled);
        // every reported failure belongs to a node with a recorded duration
        let checked: std::collections::BTreeSet<NodeId> =
            report.node_durations().iter().map(|(v, _)| *v).collect();
        for f in report.failures() {
            assert!(checked.contains(&f.node), "failure at unrecorded node {}", f.node_name);
        }
    }

    #[test]
    fn merge_of_nothing_is_verified_and_empty() {
        let merged = CheckReport::merge([]);
        assert!(merged.is_verified());
        assert_eq!(merged.wall(), Duration::ZERO);
        assert_eq!(merged.node_durations().len(), 0);
    }

    #[test]
    fn report_failure_display() {
        let net = reach_net(2);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        let text = report.failures()[0].to_string();
        assert!(text.contains("condition failed at"));
    }
}
