//! Errors raised by the verification engines.

use std::fmt;

use timepiece_smt::SmtError;

/// An error raised while building or discharging verification conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The SMT backend rejected a condition (ill-typed network or interface).
    Smt(SmtError),
    /// A persistent checker worker died (panicked) — its pool can no longer
    /// serve checks and should be dropped.
    WorkerDied,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Smt(e) => write!(f, "smt backend error: {e}"),
            CoreError::WorkerDied => {
                write!(f, "a persistent checker worker panicked; discard the pool")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Smt(e) => Some(e),
            CoreError::WorkerDied => None,
        }
    }
}

impl From<SmtError> for CoreError {
    fn from(e: SmtError) -> Self {
        CoreError::Smt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = CoreError::from(SmtError::ModelDecode("x".into()));
        assert!(e.to_string().contains("smt backend error"));
        assert!(e.source().is_some());
    }
}
