//! Incremental re-checking: per-node fingerprints, dirty cones and a
//! verdict cache.
//!
//! Modularity (Algorithm 1) makes every node's check depend on a *bounded*
//! slice of the problem: node `v`'s three verification conditions mention
//! only its own initial route, interface and property, the transfers of its
//! in-edges, the interfaces of its predecessors, and the network's symbolic
//! preconditions. A delta therefore invalidates a bounded **cone** of
//! nodes, not the whole network — and since the conditions are built from
//! hash-consed terms, "did this node's check change" is decidable in O(1)
//! per node by comparing structural hashes of the *compiled conditions*
//! before and after the delta.
//!
//! [`Fingerprints`] captures those hashes; [`Fingerprints::dirty_cone`]
//! diffs two snapshots into the exact set of nodes whose conditions
//! changed. [`VerdictCache`] remembers the last verdict per node, so a
//! service re-checks the cone and serves everything else from cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use timepiece_algebra::Network;
use timepiece_topology::{NodeId, Topology};

use crate::check::{CheckReport, Failure};
use crate::interface::NodeAnnotations;
use crate::vc::{inductive_vc, initial_vc, safety_vc};

/// A structural fingerprint of one node's three verification conditions
/// (plus the node's one-step algebra, via
/// [`Network::node_structural_hash`]). Two equal fingerprints mean the
/// node's initial, inductive and safety conditions are structurally
/// identical terms — the checks are interchangeable.
///
/// Everything a condition can depend on flows into the compiled terms: the
/// node's interface and witness time, the predecessors' interfaces, the
/// in-edge policies (through the transfer functions), the failure budget
/// (through the symbolic constraints assumed by every condition). A change
/// to any of them flips the hash; a change to none of them cannot.
pub fn node_fingerprint(
    net: &Network,
    interface: &NodeAnnotations,
    property: &NodeAnnotations,
    delay: u64,
    v: NodeId,
) -> u64 {
    let mut h = DefaultHasher::new();
    net.node_structural_hash(v).hash(&mut h);
    let conditions = [
        initial_vc(net, interface, v),
        inductive_vc(net, interface, v, delay),
        safety_vc(net, interface, property, v),
    ];
    for vc in conditions {
        for a in vc.assumptions() {
            a.structural_hash().hash(&mut h);
        }
        vc.goal().structural_hash().hash(&mut h);
    }
    h.finish()
}

/// One snapshot of [`node_fingerprint`] over every node of an instance.
///
/// Building a snapshot costs one condition *construction* per node — no
/// solving, and the hash-consing arena makes re-construction after a small
/// delta mostly interning hits. Diffing two snapshots
/// ([`Fingerprints::dirty_cone`]) is how a delta becomes a work list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprints {
    map: BTreeMap<NodeId, u64>,
}

impl Fingerprints {
    /// Fingerprints every node of the instance.
    pub fn compute(
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        delay: u64,
    ) -> Fingerprints {
        let map = net
            .topology()
            .nodes()
            .map(|v| (v, node_fingerprint(net, interface, property, delay, v)))
            .collect();
        Fingerprints { map }
    }

    /// The fingerprint of one node, if it was part of the snapshot.
    pub fn get(&self, v: NodeId) -> Option<u64> {
        self.map.get(&v).copied()
    }

    /// How many nodes the snapshot covers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The dirty cone between this snapshot and a newer one: every node
    /// whose fingerprint differs (or that only one side covers), in id
    /// order. These are exactly the nodes whose verification conditions
    /// changed — re-checking them (and only them) reproduces a from-scratch
    /// run's verdicts, because every untouched node would discharge
    /// structurally identical conditions.
    pub fn dirty_cone(&self, newer: &Fingerprints) -> Vec<NodeId> {
        let mut dirty: Vec<NodeId> = Vec::new();
        for (v, fp) in &newer.map {
            if self.map.get(v) != Some(fp) {
                dirty.push(*v);
            }
        }
        for v in self.map.keys() {
            if !newer.map.contains_key(v) {
                dirty.push(*v);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }
}

/// The nodes whose verification conditions mention node `v`'s interface:
/// `v` itself (all three conditions) and its out-neighbors (their inductive
/// conditions assume `A(v)`). This is the topological upper bound on the
/// cone of an interface-only delta — useful as a cross-check on the exact
/// fingerprint diff, and as the answer to "who would a change at `v`
/// affect" without constructing any conditions.
pub fn interface_cone(g: &Topology, v: NodeId) -> Vec<NodeId> {
    let mut cone = vec![v];
    cone.extend(g.succs(v).iter().copied());
    cone.sort_unstable();
    cone.dedup();
    cone
}

/// The last verdict of one node.
#[derive(Debug, Clone)]
pub enum NodeVerdict {
    /// All three conditions held when the node was last checked.
    Verified,
    /// At least one condition failed; the failures are kept for reporting.
    Failed(Vec<Failure>),
}

impl NodeVerdict {
    /// Did the node verify?
    pub fn is_verified(&self) -> bool {
        matches!(self, NodeVerdict::Verified)
    }
}

/// The per-node verdict memory of an incremental checker: re-check the
/// dirty cone, absorb the report, serve every clean node from here.
#[derive(Debug, Clone, Default)]
pub struct VerdictCache {
    verdicts: BTreeMap<NodeId, NodeVerdict>,
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache::default()
    }

    /// Records the verdicts of a (possibly partial) check. Only nodes the
    /// report actually checked — those with a recorded duration — are
    /// updated: nodes a cancellation abandoned left no verdict and keep
    /// their cached one (which is then stale; callers that cancel should
    /// [`VerdictCache::invalidate`] the unchecked remainder).
    pub fn absorb(&mut self, report: &CheckReport) {
        for (v, _) in report.node_durations() {
            let failures: Vec<Failure> =
                report.failures().iter().filter(|f| f.node == *v).cloned().collect();
            let verdict = if failures.is_empty() {
                NodeVerdict::Verified
            } else {
                NodeVerdict::Failed(failures)
            };
            self.verdicts.insert(*v, verdict);
        }
    }

    /// Drops the cached verdicts of `nodes` (e.g. cone nodes whose re-check
    /// was cancelled: neither the old nor any new verdict is trustworthy).
    pub fn invalidate(&mut self, nodes: &[NodeId]) {
        for v in nodes {
            self.verdicts.remove(v);
        }
    }

    /// The cached verdict of one node.
    pub fn verdict(&self, v: NodeId) -> Option<&NodeVerdict> {
        self.verdicts.get(&v)
    }

    /// Every cached verdict, in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeVerdict)> {
        self.verdicts.iter().map(|(v, verdict)| (*v, verdict))
    }

    /// How many nodes have cached verdicts.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Does every cached verdict say verified? (Vacuously true when empty —
    /// pair with [`VerdictCache::len`] to require coverage.)
    pub fn all_verified(&self) -> bool {
        self.verdicts.values().all(NodeVerdict::is_verified)
    }

    /// The nodes with failed verdicts, in node order.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.verdicts
            .iter()
            .filter(|(_, verdict)| !verdict.is_verified())
            .map(|(v, _)| *v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{CheckOptions, ModularChecker};
    use crate::temporal::Temporal;
    use timepiece_algebra::policy::{MergeKey, RouteGuard, RoutePolicy, RouteSchema};
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    /// A policy-mode hop-count network on an undirected path, with the
    /// exact per-node reachability interface.
    fn policy_instance(n: usize) -> (Network, NodeAnnotations, NodeAnnotations) {
        let schema = RouteSchema::new(
            "Hop",
            [("len".to_owned(), Type::Int)],
            [MergeKey::Lower("len".into())],
        );
        let g = gen::undirected_path(n);
        let dest = g.node_by_name("v0").unwrap();
        let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
        let net = NetworkBuilder::from_schema(g, schema)
            .default_policy(RoutePolicy::new().increment("len"))
            .init(dest, origin)
            .build()
            .unwrap();
        let interface = NodeAnnotations::from_fn(net.topology(), |v| {
            let t = v.index() as u64;
            if t == 0 {
                Temporal::globally(|r| r.clone().is_some())
            } else {
                Temporal::until_at(
                    t,
                    |r| r.clone().is_none(),
                    Temporal::globally(|r| r.clone().is_some()),
                )
            }
        });
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        (net, interface, property)
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let (net, interface, property) = policy_instance(4);
        let a = Fingerprints::compute(&net, &interface, &property, 0);
        let b = Fingerprints::compute(&net, &interface, &property, 0);
        assert_eq!(a, b);
        assert!(a.dirty_cone(&b).is_empty());
        assert_eq!(a.len(), 4);
        // a different delay changes the inductive condition everywhere
        let delayed = Fingerprints::compute(&net, &interface, &property, 1);
        assert_eq!(a.dirty_cone(&delayed).len(), 4);
    }

    #[test]
    fn interface_edit_dirties_the_node_and_its_successors() {
        let (net, interface, property) = policy_instance(5);
        let before = Fingerprints::compute(&net, &interface, &property, 0);
        let v2 = net.topology().node_by_name("v2").unwrap();
        let mut edited = interface.clone();
        edited.set(
            v2,
            Temporal::until_at(
                9,
                |r| r.clone().is_none(),
                Temporal::globally(|r| r.clone().is_some()),
            ),
        );
        let after = Fingerprints::compute(&net, &edited, &property, 0);
        let cone = before.dirty_cone(&after);
        let expected = interface_cone(net.topology(), v2);
        assert_eq!(cone, expected, "v2 and its neighbors on the undirected path");
        assert_eq!(cone.len(), 3, "strictly fewer than the 5 nodes");
    }

    #[test]
    fn policy_edit_dirties_only_the_edge_head() {
        let (net, interface, property) = policy_instance(5);
        let before = Fingerprints::compute(&net, &interface, &property, 0);
        let v1 = net.topology().node_by_name("v1").unwrap();
        let v2 = net.topology().node_by_name("v2").unwrap();
        let dropped = net
            .set_edge_policy((v1, v2), Some(RoutePolicy::new().drop_if(RouteGuard::True)))
            .unwrap();
        let after = Fingerprints::compute(&dropped, &interface, &property, 0);
        assert_eq!(before.dirty_cone(&after), vec![v2], "only the head's merge inputs changed");
    }

    #[test]
    fn verdict_cache_tracks_reports() {
        let (net, interface, property) = policy_instance(4);
        let checker = ModularChecker::new(CheckOptions::default());
        let report = checker.check(&net, &interface, &property).unwrap();
        let mut cache = VerdictCache::new();
        assert!(cache.is_empty());
        cache.absorb(&report);
        assert_eq!(cache.len(), 4);
        assert!(cache.all_verified());
        assert!(cache.failed_nodes().is_empty());
        // sabotage one interface, re-check only the cone, absorb again
        let v2 = net.topology().node_by_name("v2").unwrap();
        let mut bad = interface.clone();
        bad.set(
            v2,
            Temporal::until_at(
                1,
                |r| r.clone().is_none(),
                Temporal::globally(|r| r.clone().is_some()),
            ),
        );
        let cone = Fingerprints::compute(&net, &interface, &property, 0)
            .dirty_cone(&Fingerprints::compute(&net, &bad, &property, 0));
        let partial = checker.check_nodes(&net, &bad, &property, &cone).unwrap();
        cache.absorb(&partial);
        assert!(!cache.all_verified());
        assert!(cache.failed_nodes().contains(&v2));
        assert!(cache.verdict(v2).is_some_and(|verdict| !verdict.is_verified()));
        // invalidation forgets exactly the named nodes
        cache.invalidate(&[v2]);
        assert_eq!(cache.len(), 3);
        assert!(cache.verdict(v2).is_none());
    }
}
