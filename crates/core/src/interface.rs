//! Per-node annotations: interfaces `A` and properties `P`.

use timepiece_topology::{NodeId, Topology};

use crate::temporal::Temporal;

/// A map from every node to a temporal operator.
///
/// Used both for network interfaces (`A : V → N → 2^S`) and node properties
/// (`P : V → N → 2^S`); the two play different roles in the verification
/// conditions but share this representation.
///
/// # Example
///
/// ```
/// use timepiece_core::{NodeAnnotations, Temporal};
/// use timepiece_topology::gen;
///
/// let g = gen::path(3);
/// let mut ann = NodeAnnotations::new(&g, Temporal::any());
/// let v1 = g.node_by_name("v1").unwrap();
/// ann.set(v1, Temporal::finally_at(1, Temporal::any()));
/// assert_eq!(ann.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct NodeAnnotations {
    per_node: Vec<Temporal>,
}

impl NodeAnnotations {
    /// Creates annotations assigning `default` to every node of `topology`.
    pub fn new(topology: &Topology, default: Temporal) -> NodeAnnotations {
        NodeAnnotations { per_node: vec![default; topology.node_count()] }
    }

    /// Builds annotations by calling `f` for every node.
    pub fn from_fn(topology: &Topology, mut f: impl FnMut(NodeId) -> Temporal) -> NodeAnnotations {
        NodeAnnotations { per_node: topology.nodes().map(&mut f).collect() }
    }

    /// Replaces the annotation of one node.
    pub fn set(&mut self, v: NodeId, op: Temporal) -> &mut NodeAnnotations {
        self.per_node[v.index()] = op;
        self
    }

    /// The annotation of a node.
    pub fn get(&self, v: NodeId) -> &Temporal {
        &self.per_node[v.index()]
    }

    /// The number of annotated nodes.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether there are no annotations (empty topology).
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::{Env, Expr, Type, Value};
    use timepiece_topology::gen;

    #[test]
    fn default_applies_everywhere() {
        let g = gen::path(3);
        let ann = NodeAnnotations::new(&g, Temporal::any());
        for v in g.nodes() {
            let e = ann.get(v).at(&Expr::int(0), &Expr::var("r", Type::Int));
            let mut env = Env::new();
            env.bind("r", Value::int(0));
            assert!(e.eval_bool(&env).unwrap());
        }
    }

    #[test]
    fn set_overrides_one_node() {
        let g = gen::path(2);
        let v1 = g.node_by_name("v1").unwrap();
        let mut ann = NodeAnnotations::new(&g, Temporal::any());
        ann.set(v1, Temporal::globally(|r| r.clone().ge(Expr::int(5))));
        let r = Expr::var("r", Type::Int);
        let mut env = Env::new();
        env.bind("r", Value::int(3));
        let v0 = g.node_by_name("v0").unwrap();
        assert!(ann.get(v0).at(&Expr::int(0), &r).eval_bool(&env).unwrap());
        assert!(!ann.get(v1).at(&Expr::int(0), &r).eval_bool(&env).unwrap());
    }

    #[test]
    fn from_fn_indexes_nodes() {
        let g = gen::path(4);
        let ann = NodeAnnotations::from_fn(&g, |v| {
            let bound = v.index() as i64;
            Temporal::globally(move |r| r.clone().ge(Expr::int(bound)))
        });
        assert_eq!(ann.len(), 4);
        assert!(!ann.is_empty());
        let r = Expr::var("r", Type::Int);
        let mut env = Env::new();
        env.bind("r", Value::int(2));
        let v3 = g.node_by_name("v3").unwrap();
        assert!(!ann.get(v3).at(&Expr::int(0), &r).eval_bool(&env).unwrap());
        let v2 = g.node_by_name("v2").unwrap();
        assert!(ann.get(v2).at(&Expr::int(0), &r).eval_bool(&env).unwrap());
    }
}
