//! Timepiece: modular control plane verification via temporal invariants.
//!
//! This crate is the Rust reproduction of the paper's contribution (§3–§5):
//!
//! * [`temporal`] — the language of temporal operators `G(φ)`, `φ U^τ Q`,
//!   `F^τ(Q)` with lifted intersection/union/negation (Fig. 12), including
//!   *symbolic* witness times (needed for all-pairs benchmarks);
//! * [`interface`] — per-node annotations: interfaces `A` and properties `P`;
//! * [`vc`] — the three verification conditions: initial (5), inductive (6)
//!   and safety (7), plus the bounded-delay variant of the inductive
//!   condition (§4);
//! * [`check`] — the modular checking procedure (Algorithm 1): every node's
//!   conditions are discharged independently and in parallel, with per-node
//!   timing statistics;
//! * [`monolithic`] — the Minesweeper-style baseline `Ms`: a single
//!   network-wide stable-state formula with the temporal detail erased;
//! * [`strawperson`] — the *unsound* stable-state modular procedure of §2.2,
//!   kept as an executable demonstration of why the temporal model is needed.
//!
//! # Quickstart
//!
//! Prove that the second node of a two-node network eventually receives the
//! first node's route:
//!
//! ```
//! use timepiece_algebra::NetworkBuilder;
//! use timepiece_core::check::{CheckOptions, ModularChecker};
//! use timepiece_core::interface::NodeAnnotations;
//! use timepiece_core::temporal::Temporal;
//! use timepiece_expr::{Expr, Type};
//! use timepiece_topology::gen;
//!
//! let g = gen::path(2);
//! let (v0, v1) = (g.node_by_name("v0").unwrap(), g.node_by_name("v1").unwrap());
//! let net = NetworkBuilder::new(g, Type::Bool)
//!     .merge(|a, b| a.clone().or(b.clone()))
//!     .default_transfer(|r| r.clone())
//!     .init(v0, Expr::bool(true))
//!     .build()?;
//!
//! // interface: v0 always has the route; v1 has it from time 1 on
//! let mut interface = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
//! interface.set(v1, Temporal::finally(Expr::int(1), Temporal::globally(|r| r.clone())));
//! let property = interface.clone();
//!
//! let report = ModularChecker::new(CheckOptions::default()).check(&net, &interface, &property)?;
//! assert!(report.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod error;
pub mod incremental;
pub mod interface;
pub mod monolithic;
pub mod stats;
pub mod strawperson;
pub mod sweep;
pub mod temporal;
pub mod vc;

pub use check::{CheckOptions, CheckReport, Failure, ModularChecker};
pub use error::CoreError;
pub use incremental::{Fingerprints, NodeVerdict, VerdictCache};
pub use interface::NodeAnnotations;
pub use temporal::Temporal;
pub use vc::VcKind;
