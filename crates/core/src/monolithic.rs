//! The Minesweeper-style monolithic baseline `Ms` (§6).
//!
//! `Ms` analyzes *stable states*: one route variable per node, constrained by
//! the fixpoint equation `r_v = I(v) ⊕ ⨁_u f_{uv}(r_u)`, with the property's
//! temporal structure erased (only its limit behavior is checked). The whole
//! network becomes a single SMT query, which is what fails to scale in the
//! paper's evaluation (Fig. 1, Fig. 14).

use std::time::{Duration, Instant};

use timepiece_algebra::Network;
use timepiece_expr::Expr;
use timepiece_smt::{check_validity, CounterExample, Validity, Vc};

use crate::error::CoreError;
use crate::interface::NodeAnnotations;

/// The outcome of a monolithic stable-state check.
#[derive(Debug, Clone)]
pub enum MonolithicOutcome {
    /// The property holds in every stable state.
    Verified,
    /// A stable state violating the property (assignment to every node's
    /// route variable and all symbolics).
    Failed(Box<CounterExample>),
    /// The solver gave up (typically a timeout on large networks).
    Unknown(String),
}

impl MonolithicOutcome {
    /// Is this `Verified`?
    pub fn is_verified(&self) -> bool {
        matches!(self, MonolithicOutcome::Verified)
    }
}

/// A monolithic check result with its wall time.
#[derive(Debug, Clone)]
pub struct MonolithicReport {
    /// The verification outcome.
    pub outcome: MonolithicOutcome,
    /// Wall-clock time of the single query.
    pub wall: Duration,
}

/// Builds the single stable-state verification condition for the whole
/// network.
///
/// Assumptions: the symbolic preconditions plus one fixpoint equation per
/// node. Goal: the conjunction of the erased per-node properties.
pub fn monolithic_vc(net: &Network, property: &NodeAnnotations) -> Vc {
    let g = net.topology();
    let route_vars: Vec<Expr> = g.nodes().map(|v| net.route_var(v)).collect();
    let mut assumptions = net.symbolic_constraints();
    for v in g.nodes() {
        let neighbor_routes: Vec<Expr> =
            g.preds(v).iter().map(|&u| route_vars[u.index()].clone()).collect();
        let stepped = net.step(v, &neighbor_routes);
        assumptions.push(route_vars[v.index()].clone().eq(stepped));
    }
    let goal = Expr::and_all(g.nodes().map(|v| property.get(v).erase(&route_vars[v.index()])));
    Vc::new("monolithic", assumptions, goal)
}

/// Runs the monolithic stable-state check.
///
/// # Errors
///
/// Returns [`CoreError::Smt`] if the network or property cannot be encoded.
pub fn check_monolithic(
    net: &Network,
    property: &NodeAnnotations,
    timeout: Option<Duration>,
) -> Result<MonolithicReport, CoreError> {
    let start = Instant::now();
    let vc = monolithic_vc(net, property);
    let outcome = match check_validity(&vc, timeout)? {
        Validity::Valid => MonolithicOutcome::Verified,
        Validity::Invalid(cex) => MonolithicOutcome::Failed(cex),
        Validity::Unknown(why) => MonolithicOutcome::Unknown(why),
    };
    Ok(MonolithicReport { outcome, wall: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::{NetworkBuilder, Symbolic};
    use timepiece_expr::Type;
    use timepiece_topology::gen;

    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    #[test]
    fn verifies_stable_reachability() {
        let net = reach_net(4);
        // property (erased): every node's stable route is present
        let property = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
        let report = check_monolithic(&net, &property, None).unwrap();
        assert!(report.outcome.is_verified());
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn finds_stable_counterexample() {
        // no initial route anywhere: the all-∞ state is stable and violates
        // reachability
        let g = gen::undirected_path(3);
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .build()
            .unwrap();
        let property = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
        let report = check_monolithic(&net, &property, None).unwrap();
        match report.outcome {
            MonolithicOutcome::Failed(cex) => {
                // the stable state binds every route variable to false
                for v in net.topology().nodes() {
                    let name = format!("route-{}", net.topology().name(v));
                    assert_eq!(cex.assignment.get(&name).and_then(|x| x.as_bool()), Some(false));
                }
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn respects_symbolic_constraints() {
        // external node with arbitrary boolean input, constrained true
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        let s = Symbolic::new("ext", Type::Bool, Some(Expr::var("ext", Type::Bool)));
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, s.var())
            .symbolic(s)
            .build()
            .unwrap();
        let property = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
        // with the constraint (ext = true) the property holds
        let report = check_monolithic(&net, &property, None).unwrap();
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn erased_temporal_structure_is_checked() {
        let net = reach_net(3);
        // a temporal property: F^2 G(route) — erased to G(route)
        let property = NodeAnnotations::new(
            net.topology(),
            Temporal::finally_at(2, Temporal::globally(|r| r.clone())),
        );
        let report = check_monolithic(&net, &property, None).unwrap();
        assert!(report.outcome.is_verified());
    }
}
