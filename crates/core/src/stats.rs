//! Timing statistics for check reports (the paper reports total, median and
//! 99th-percentile node-check times).

use std::time::Duration;

/// Summary statistics over a set of per-node check durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples (total solver work; wall time is lower when
    /// parallel).
    pub total: Duration,
    /// Median sample: the middle sample for odd `n`, the mean of the two
    /// middle samples for even `n` (the paper's reporting convention).
    pub median: Duration,
    /// 99th-percentile sample (99% of checks completed within this time).
    pub p99: Duration,
    /// The slowest sample.
    pub max: Duration,
}

impl TimingStats {
    /// Computes statistics from raw durations. Returns zeroed stats for an
    /// empty slice.
    pub fn from_durations(durations: &[Duration]) -> TimingStats {
        if durations.is_empty() {
            return TimingStats {
                count: 0,
                total: Duration::ZERO,
                median: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        let mut sorted = durations.to_vec();
        sorted.sort();
        let n = sorted.len();
        let median = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        } else {
            sorted[n / 2]
        };
        TimingStats {
            count: n,
            total: sorted.iter().sum(),
            median,
            p99: sorted[percentile_index(n, 0.99)],
            max: sorted[n - 1],
        }
    }

    /// The median, under its quantile name (matches the paper's tables and
    /// the histogram summaries in the metrics registry).
    pub fn p50(&self) -> Duration {
        self.median
    }
}

/// The index of the `q`-quantile in a sorted sample of size `n` (nearest-rank
/// method).
fn percentile_index(n: usize, q: f64) -> usize {
    let rank = (q * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_is_zeroed() {
        let s = TimingStats::from_durations(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.total, Duration::ZERO);
    }

    #[test]
    fn single_sample() {
        let s = TimingStats::from_durations(&[ms(5)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.median, ms(5));
        assert_eq!(s.p99, ms(5));
        assert_eq!(s.max, ms(5));
        assert_eq!(s.total, ms(5));
    }

    #[test]
    fn two_samples() {
        // even n averages the two middle samples; the 99th percentile
        // (nearest-rank) is the maximum
        let s = TimingStats::from_durations(&[ms(10), ms(2)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.total, ms(12));
        assert_eq!(s.median, ms(6));
        assert_eq!(s.p50(), s.median);
        assert_eq!(s.p99, ms(10));
        assert_eq!(s.max, ms(10));
    }

    #[test]
    fn all_equal_samples_collapse() {
        for n in [2usize, 3, 17] {
            let s = TimingStats::from_durations(&vec![ms(7); n]);
            assert_eq!(s.count, n);
            assert_eq!(s.median, ms(7), "n = {n}");
            assert_eq!(s.p99, ms(7), "n = {n}");
            assert_eq!(s.max, ms(7), "n = {n}");
            assert_eq!(s.total, ms(7 * n as u64), "n = {n}");
        }
    }

    #[test]
    fn statistics_of_uniform_range() {
        let durations: Vec<Duration> = (1..=100).map(ms).collect();
        let s = TimingStats::from_durations(&durations);
        assert_eq!(s.count, 100);
        assert_eq!(s.median, Duration::from_micros(50_500), "mean of 50ms and 51ms");
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.total, ms(5050));
    }

    #[test]
    fn order_does_not_matter() {
        let a = TimingStats::from_durations(&[ms(3), ms(1), ms(2)]);
        let b = TimingStats::from_durations(&[ms(1), ms(2), ms(3)]);
        assert_eq!(a, b);
        assert_eq!(a.median, ms(2));
    }

    #[test]
    fn percentile_index_bounds() {
        assert_eq!(percentile_index(1, 0.99), 0);
        assert_eq!(percentile_index(100, 0.99), 98);
        assert_eq!(percentile_index(200, 0.99), 197);
        assert_eq!(percentile_index(10, 1.0), 9);
    }
}
