//! The *unsound* strawperson modular procedure of §2.2, kept executable.
//!
//! `SV` checks, for every node in isolation, that one local step of the
//! stable-state equation maps neighbor routes drawn from their (time-erased)
//! interfaces into the node's own interface:
//!
//! `∀ s_i ∈ A(n_i):  f(s_1) ⊕ … ⊕ f(s_k) ⊕ I(x) ∈ A(x)`          (eq. 1)
//!
//! The paper shows this procedure accepts interfaces that *exclude real
//! executions* (execution interference: circularly self-justifying routes),
//! so nothing may be concluded from its success. It exists in this crate so
//! the unsoundness demonstration of §2.2 is a test, not a footnote — see
//! `tests/key_ideas.rs` in the workspace root and the `timepiece-nets`
//! running example.

use timepiece_algebra::Network;
use timepiece_smt::{check_validity, Vc};
use timepiece_topology::NodeId;

use crate::error::CoreError;
use crate::interface::NodeAnnotations;

/// Builds the strawperson condition (equation 1) for one node, using the
/// erased (stable-state) interfaces.
pub fn strawperson_vc(net: &Network, interface: &NodeAnnotations, v: NodeId) -> Vc {
    let name = format!("strawperson@{}", net.topology().name(v));
    let preds = net.topology().preds(v);
    let neighbor_routes: Vec<_> = preds.iter().map(|&u| net.route_var(u)).collect();
    let mut assumptions = net.symbolic_constraints();
    for (&u, r) in preds.iter().zip(&neighbor_routes) {
        assumptions.push(interface.get(u).erase(r));
    }
    let stepped = net.step(v, &neighbor_routes);
    let goal = interface.get(v).erase(&stepped);
    Vc::new(name, assumptions, goal)
}

/// Runs the strawperson procedure on every node.
///
/// Returns the nodes whose condition *failed*. An empty result means `SV`
/// accepts the interfaces — which, unlike for [`crate::check`], does **not**
/// imply the interfaces over-approximate real executions.
///
/// # Errors
///
/// Returns [`CoreError::Smt`] on encoding failures.
pub fn check_strawperson(
    net: &Network,
    interface: &NodeAnnotations,
) -> Result<Vec<NodeId>, CoreError> {
    let mut failing = Vec::new();
    for v in net.topology().nodes() {
        let vc = strawperson_vc(net, interface, v);
        if !check_validity(&vc, None)?.is_valid() {
            failing.push(v);
        }
    }
    Ok(failing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    #[test]
    fn accepts_correct_interfaces() {
        let g = gen::undirected_path(3);
        let v0 = g.node_by_name("v0").unwrap();
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap();
        let interface = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
        assert!(check_strawperson(&net, &interface).unwrap().is_empty());
    }

    #[test]
    fn rejects_locally_inconsistent_interfaces() {
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        let v1 = g.node_by_name("v1").unwrap();
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap();
        let mut interface = NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone()));
        // v1 claims "no route" while v0 exports one: locally refutable
        interface.set(v1, Temporal::globally(|r| r.clone().not()));
        let failing = check_strawperson(&net, &interface).unwrap();
        assert_eq!(failing, vec![v1]);
    }

    /// The §2.2 unsoundness witness, in miniature: two mutually-justifying
    /// nodes exclude the legitimate route that a third node injects.
    ///
    /// Nodes: w -> v, v <-> d. Routes are optional "preference" integers;
    /// merge prefers the *higher* preference; w originates preference 100;
    /// the v<->d edges preserve routes; the w->v edge imports at preference
    /// 100. The bad interfaces claim v and d always carry preference-200
    /// routes — self-justifying through the v<->d cycle, yet excluding the
    /// real stable state (preference 100 everywhere).
    #[test]
    fn accepts_circular_self_justification_demonstrating_unsoundness() {
        let mut g = timepiece_topology::Topology::new();
        let w = g.add_node("w");
        let v = g.add_node("v");
        let d = g.add_node("d");
        g.add_edge(w, v);
        g.add_undirected(v, d);

        let ty = Type::option(Type::Int);
        let net = NetworkBuilder::new(g, ty.clone())
            .merge(|a, b| {
                // prefer present routes with higher preference
                let a_better = a.clone().get_some().ge(b.clone().get_some());
                b.clone().is_none().or(a.clone().is_some().and(a_better)).ite(a.clone(), b.clone())
            })
            .default_transfer(|r| r.clone())
            .init(w, Expr::int(100).some())
            .build()
            .unwrap();

        // bad interfaces: w honest; v and d claim preference-200 routes
        let mut interface = NodeAnnotations::new(
            net.topology(),
            Temporal::globally(|r| {
                r.clone().is_some().and(r.clone().get_some().eq(Expr::int(100)))
            }),
        );
        let claim_200 = |r: &Expr| r.clone().is_some().and(r.clone().get_some().eq(Expr::int(200)));
        interface.set(net.topology().node_by_name("v").unwrap(), Temporal::globally(claim_200));
        interface.set(net.topology().node_by_name("d").unwrap(), Temporal::globally(claim_200));

        // the strawperson procedure ACCEPTS these interfaces…
        assert!(
            check_strawperson(&net, &interface).unwrap().is_empty(),
            "strawperson should accept the circular interfaces"
        );

        // …even though the real simulation never produces preference 200:
        // (checked end-to-end in the nets crate; here we just confirm the
        // temporal checker rejects the same interfaces)
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = crate::check::ModularChecker::new(Default::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(!report.is_verified(), "temporal checker must reject the bad interfaces");
    }
}
