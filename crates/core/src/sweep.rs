//! A persistent checker pool: solver sessions that survive across checks.
//!
//! The scoped scheduler of [`crate::check::ModularChecker::check`] spawns
//! fresh worker threads per call, so every sweep row (every `(bench, k)`
//! pair) rebuilds its Z3 contexts, declarations and compiled-term caches
//! from nothing. A [`CheckerPool`] instead keeps `n` worker threads alive
//! for its whole lifetime; each worker owns one
//! [`timepiece_smt::SessionPool`] keyed by
//! [`timepiece_algebra::Network::encoder_signature`], so a `repro fig14
//! --ks 4,6,8` sweep reuses solver sessions (and the terms already compiled
//! into them) across rows of the same benchmark family.
//!
//! Work distribution is deterministic: nodes are striped across workers by
//! name-stem class ([`timepiece_sched::ShardPlan::by_class`]), the same
//! balancing rule multi-process sharding uses. There is no work stealing —
//! the pool trades a little intra-row balance for cross-row cache reuse;
//! the scoped scheduler remains the right tool for one-shot checks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use timepiece_algebra::Network;
use timepiece_sched::ShardPlan;
use timepiece_smt::{SessionPool, TermCacheStats};
use timepiece_topology::NodeId;

use crate::check::{CheckOptions, CheckReport, Failure, ModularChecker};
use crate::error::CoreError;
use crate::interface::NodeAnnotations;

/// One unit of work sent to a persistent worker: check `nodes` of one
/// instance.
struct Job {
    net: Network,
    interface: NodeAnnotations,
    property: NodeAnnotations,
    nodes: Vec<NodeId>,
    /// Shared across every worker of one `check` call: raised on the first
    /// failure under [`CheckOptions::fail_fast`], abandoning remaining
    /// nodes pool-wide (matching the scoped checker's semantics, minus the
    /// in-flight solver interrupt).
    cancel: Arc<AtomicBool>,
}

/// What a worker sends back per job: failures, per-node durations, and the
/// job's term-cache traffic (whose hits include terms compiled by *earlier*
/// jobs into the worker's persistent sessions — the cross-row reuse this
/// pool exists for).
type JobResult = Result<(Vec<Failure>, Vec<(NodeId, Duration)>, TermCacheStats), CoreError>;

/// A pool of persistent verification workers with long-lived solver
/// sessions. See the module docs.
///
/// # Example
///
/// ```no_run
/// use timepiece_core::check::CheckOptions;
/// use timepiece_core::sweep::CheckerPool;
/// # fn instance_at(_k: usize) -> (timepiece_algebra::Network,
/// #     timepiece_core::NodeAnnotations, timepiece_core::NodeAnnotations) { unimplemented!() }
///
/// let mut pool = CheckerPool::new(4, CheckOptions::default());
/// for k in [4, 6, 8] {
///     let (net, interface, property) = instance_at(k);
///     let report = pool.check(&net, &interface, &property).unwrap();
///     assert!(report.is_verified());
/// }
/// // sessions built for k = 4 served k = 6 and k = 8 too
/// ```
#[derive(Debug)]
pub struct CheckerPool {
    workers: Vec<Worker>,
    options: CheckOptions,
}

#[derive(Debug)]
struct Worker {
    tx: mpsc::Sender<Job>,
    rx: mpsc::Receiver<JobResult>,
    handle: Option<JoinHandle<()>>,
}

impl CheckerPool {
    /// Spawns `workers` persistent threads, each with its own solver-session
    /// pool bounded by `options.timeout`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, options: CheckOptions) -> CheckerPool {
        assert!(workers > 0, "a checker pool needs at least one worker");
        let workers = (0..workers)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (result_tx, result_rx) = mpsc::channel::<JobResult>();
                let options = options.clone();
                let handle = std::thread::spawn(move || {
                    timepiece_trace::set_thread_label(format!("pool-worker{i}"));
                    // the sessions (and their Z3 contexts, declarations and
                    // compiled-term caches) live exactly as long as this
                    // thread: across every job the pool ever runs
                    let mut sessions = SessionPool::new(options.timeout);
                    let fail_fast = options.fail_fast;
                    let checker = ModularChecker::new(options);
                    while let Ok(job) = job_rx.recv() {
                        let result = run_job(&checker, &mut sessions, fail_fast, &job);
                        if result_tx.send(result).is_err() {
                            break;
                        }
                    }
                });
                Worker { tx: job_tx, rx: result_rx, handle: Some(handle) }
            })
            .collect();
        CheckerPool { workers, options }
    }

    /// The pool with one worker per available core.
    pub fn with_default_parallelism(options: CheckOptions) -> CheckerPool {
        let workers = options
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .max(1);
        CheckerPool::new(workers, options)
    }

    /// How many persistent workers the pool runs.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The options the pool was built with.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// Checks every node of a network across the persistent workers,
    /// reusing any solver sessions previous checks already opened.
    ///
    /// # Errors
    ///
    /// The first [`CoreError`] raised by any worker, as
    /// [`crate::check::ModularChecker::check`].
    pub fn check(
        &mut self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
    ) -> Result<CheckReport, CoreError> {
        let start = Instant::now();
        let g = net.topology();
        let nodes: Vec<NodeId> = g.nodes().collect();
        // deterministic class striping, as in multi-process sharding: every
        // worker gets the same mix of cheap and expensive node classes
        let plan = ShardPlan::by_class(nodes, self.workers.len(), |v| g.node_class(v).to_owned());
        let cancel = Arc::new(AtomicBool::new(false));
        let mut active = Vec::new();
        for (i, worker) in self.workers.iter().enumerate() {
            let assigned = plan.nodes_of(i);
            if assigned.is_empty() {
                continue;
            }
            let sent = worker.tx.send(Job {
                net: net.clone(),
                interface: interface.clone(),
                property: property.clone(),
                nodes: assigned.to_vec(),
                cancel: Arc::clone(&cancel),
            });
            if sent.is_err() {
                // a worker that panicked in an earlier check closed its
                // channel; report it as an error rather than a cascade of
                // unrelated panics (still drain the workers already fed)
                active.push((i, false));
                continue;
            }
            active.push((i, true));
        }
        let mut failures = Vec::new();
        let mut node_durations = Vec::new();
        let mut terms = TermCacheStats::default();
        let mut first_error = None;
        for (i, fed) in active {
            if !fed {
                first_error.get_or_insert(CoreError::WorkerDied);
                continue;
            }
            match self.workers[i].rx.recv() {
                Ok(Ok((fs, ds, ts))) => {
                    failures.extend(fs);
                    node_durations.extend(ds);
                    terms += ts;
                }
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                // the worker panicked mid-job and dropped its result channel
                Err(_) => {
                    first_error.get_or_insert(CoreError::WorkerDied);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(CheckReport::from_parts(failures, node_durations, start.elapsed(), Some(terms)))
    }
}

fn run_job(
    checker: &ModularChecker,
    sessions: &mut SessionPool,
    fail_fast: bool,
    job: &Job,
) -> JobResult {
    let signature = job.net.encoder_signature();
    let before = sessions.term_cache_stats();
    let mut failures = Vec::new();
    let mut durations = Vec::new();
    for &v in &job.nodes {
        if job.cancel.load(Ordering::Acquire) {
            break;
        }
        let session = sessions.session(&signature);
        let Some((node_failures, duration)) = checker.check_node_in_session(
            session,
            &job.cancel,
            &job.net,
            &job.interface,
            &job.property,
            v,
        )?
        else {
            // the cancel flag rose mid-node: abandoned, like the scoped pool
            break;
        };
        if fail_fast && !node_failures.is_empty() {
            job.cancel.store(true, Ordering::Release);
        }
        failures.extend(node_failures);
        durations.push((v, duration));
    }
    Ok((failures, durations, sessions.term_cache_stats().delta_since(&before)))
}

impl Drop for CheckerPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // closing the job channel ends the worker's recv loop
            let (dead_tx, _) = mpsc::channel();
            drop(std::mem::replace(&mut worker.tx, dead_tx));
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    fn reach_interface(net: &Network) -> NodeAnnotations {
        NodeAnnotations::from_fn(net.topology(), |v| {
            let t = v.index() as u64;
            if t == 0 {
                Temporal::globally(|r| r.clone())
            } else {
                Temporal::until_at(t, |r| r.clone().not(), Temporal::globally(|r| r.clone()))
            }
        })
    }

    #[test]
    fn pool_agrees_with_the_scoped_checker_across_rows() {
        let mut pool = CheckerPool::new(3, CheckOptions::default());
        for n in [3usize, 5, 7] {
            let net = reach_net(n);
            let interface = reach_interface(&net);
            let property = NodeAnnotations::new(net.topology(), Temporal::any());
            let pooled = pool.check(&net, &interface, &property).unwrap();
            let scoped = ModularChecker::new(CheckOptions::default())
                .check(&net, &interface, &property)
                .unwrap();
            assert_eq!(pooled.is_verified(), scoped.is_verified(), "n={n}");
            assert_eq!(pooled.node_durations().len(), n, "every node checked once");
        }
    }

    #[test]
    fn pool_reports_failures_like_the_scoped_checker() {
        let mut pool = CheckerPool::new(2, CheckOptions::default());
        let net = reach_net(4);
        let mut interface = reach_interface(&net);
        let v2 = net.topology().node_by_name("v2").unwrap();
        interface
            .set(v2, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let pooled = pool.check(&net, &interface, &property).unwrap();
        let scoped = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        let names = |r: &CheckReport| -> Vec<String> {
            r.failures().iter().map(|f| f.node_name.clone()).collect()
        };
        assert_eq!(names(&pooled), names(&scoped));
        assert!(!pooled.is_verified());
    }

    #[test]
    fn fail_fast_stops_pool_wide() {
        // every node fails; with fail_fast the shared cancel flag keeps the
        // pool from checking all of them (matching the scoped checker)
        let mut pool = CheckerPool::new(2, CheckOptions { fail_fast: true, ..Default::default() });
        let net = reach_net(8);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = pool.check(&net, &interface, &property).unwrap();
        assert!(!report.is_verified());
        assert!(report.node_durations().len() < 8, "cancel must abandon nodes");
        // the pool is reusable after a cancelled job
        let good = reach_interface(&net);
        let report = pool.check(&net, &good, &property).unwrap();
        assert!(report.is_verified());
        assert_eq!(report.node_durations().len(), 8);
    }

    #[test]
    fn identical_rows_start_warm_from_the_cross_row_term_cache() {
        // with hash-consed intern ids, row 2's terms are the *same nodes* as
        // row 1's, so the persistent sessions serve them from cache: the
        // second structurally identical row must show hits and fewer misses
        let mut pool = CheckerPool::new(1, CheckOptions::default());
        let net = reach_net(5);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let first = pool.check(&net, &interface, &property).unwrap();
        let second = pool.check(&net, &interface, &property).unwrap();
        let t1 = first.term_cache().expect("pooled reports carry term stats");
        let t2 = second.term_cache().expect("pooled reports carry term stats");
        assert!(t2.hits > 0, "row 2 saw no cache hits: {t2:?}");
        assert!(t2.misses < t1.misses, "row 2 must start warm from row 1: {t1:?} vs {t2:?}");
        assert!(t2.hit_rate() > t1.hit_rate());
    }

    #[test]
    fn more_workers_than_nodes_is_fine() {
        let mut pool = CheckerPool::new(8, CheckOptions::default());
        let net = reach_net(2);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = pool.check(&net, &interface, &property).unwrap();
        assert!(report.is_verified());
        assert_eq!(report.node_durations().len(), 2);
    }
}
