//! A persistent checker pool: solver sessions that survive across checks.
//!
//! The scoped scheduler of [`crate::check::ModularChecker::check`] spawns
//! fresh worker threads per call, so every sweep row (every `(bench, k)`
//! pair) rebuilds its Z3 contexts, declarations and compiled-term caches
//! from nothing. A [`CheckerPool`] instead keeps `n` worker threads alive
//! for its whole lifetime; each worker owns one
//! [`timepiece_smt::SessionPool`] keyed by
//! [`timepiece_algebra::Network::encoder_signature`], so a `repro fig14
//! --ks 4,6,8` sweep reuses solver sessions (and the terms already compiled
//! into them) across rows of the same benchmark family.
//!
//! Work distribution is deterministic: nodes are striped across workers by
//! name-stem class ([`timepiece_sched::ShardPlan::by_class`]), the same
//! balancing rule multi-process sharding uses. There is no work stealing —
//! the pool trades a little intra-row balance for cross-row cache reuse;
//! the scoped scheduler remains the right tool for one-shot checks.

use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use timepiece_algebra::Network;
use timepiece_sched::{CancelToken, ShardPlan};
use timepiece_smt::{SessionPool, TermCacheStats};
use timepiece_topology::NodeId;

use crate::check::{CheckOptions, CheckReport, Failure, ModularChecker};
use crate::error::CoreError;
use crate::interface::NodeAnnotations;

/// One unit of work sent to a persistent worker: check `nodes` of one
/// instance.
struct Job {
    net: Network,
    interface: NodeAnnotations,
    property: NodeAnnotations,
    nodes: Vec<NodeId>,
    /// Shared across every worker of one `check_nodes` call: raised on the
    /// first failure under [`CheckOptions::fail_fast`] *or* by an external
    /// canceller (e.g. a daemon draining for shutdown). Each worker
    /// registers its session's interrupt handle as a hook, so raising the
    /// token also aborts in-flight solver calls.
    cancel: CancelToken,
}

/// What a worker sends back per job: failures, per-node durations, and the
/// job's term-cache traffic (whose hits include terms compiled by *earlier*
/// jobs into the worker's persistent sessions — the cross-row reuse this
/// pool exists for).
type JobResult = Result<(Vec<Failure>, Vec<(NodeId, Duration)>, TermCacheStats), CoreError>;

/// A pool of persistent verification workers with long-lived solver
/// sessions. See the module docs.
///
/// # Example
///
/// ```no_run
/// use timepiece_core::check::CheckOptions;
/// use timepiece_core::sweep::CheckerPool;
/// # fn instance_at(_k: usize) -> (timepiece_algebra::Network,
/// #     timepiece_core::NodeAnnotations, timepiece_core::NodeAnnotations) { unimplemented!() }
///
/// let mut pool = CheckerPool::new(4, CheckOptions::default());
/// for k in [4, 6, 8] {
///     let (net, interface, property) = instance_at(k);
///     let report = pool.check(&net, &interface, &property).unwrap();
///     assert!(report.is_verified());
/// }
/// // sessions built for k = 4 served k = 6 and k = 8 too
/// ```
#[derive(Debug)]
pub struct CheckerPool {
    workers: Vec<Worker>,
    options: CheckOptions,
}

#[derive(Debug)]
struct Worker {
    tx: mpsc::Sender<Job>,
    rx: mpsc::Receiver<JobResult>,
    handle: Option<JoinHandle<()>>,
}

impl CheckerPool {
    /// Spawns `workers` persistent threads, each with its own solver-session
    /// pool bounded by `options.timeout`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, options: CheckOptions) -> CheckerPool {
        assert!(workers > 0, "a checker pool needs at least one worker");
        let workers = (0..workers)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (result_tx, result_rx) = mpsc::channel::<JobResult>();
                let options = options.clone();
                let handle = std::thread::spawn(move || {
                    timepiece_trace::set_thread_label(format!("pool-worker{i}"));
                    // the sessions (and their Z3 contexts, declarations and
                    // compiled-term caches) live exactly as long as this
                    // thread: across every job the pool ever runs
                    let mut sessions = options.session_pool();
                    let fail_fast = options.fail_fast;
                    let checker = ModularChecker::new(options);
                    while let Ok(job) = job_rx.recv() {
                        let result = run_job(&checker, &mut sessions, fail_fast, &job);
                        if result_tx.send(result).is_err() {
                            break;
                        }
                    }
                });
                Worker { tx: job_tx, rx: result_rx, handle: Some(handle) }
            })
            .collect();
        CheckerPool { workers, options }
    }

    /// The pool with one worker per available core.
    pub fn with_default_parallelism(options: CheckOptions) -> CheckerPool {
        let workers = options
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .max(1);
        CheckerPool::new(workers, options)
    }

    /// How many persistent workers the pool runs.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The options the pool was built with.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// Checks every node of a network across the persistent workers,
    /// reusing any solver sessions previous checks already opened.
    ///
    /// # Errors
    ///
    /// The first [`CoreError`] raised by any worker, as
    /// [`crate::check::ModularChecker::check`].
    pub fn check(
        &mut self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
    ) -> Result<CheckReport, CoreError> {
        let nodes: Vec<NodeId> = net.topology().nodes().collect();
        self.check_nodes(net, interface, property, &nodes, &CancelToken::new())
    }

    /// Checks a *subset* of nodes across the persistent workers — the
    /// incremental re-check path: a daemon that knows which nodes a delta
    /// dirtied re-verifies exactly those, through sessions still warm from
    /// the previous request.
    ///
    /// Raising `cancel` abandons unchecked nodes *and* interrupts in-flight
    /// solver calls (each worker registers its session's interrupt handle on
    /// the token), so an external canceller — a daemon draining for
    /// shutdown — stops a long check promptly. Nodes abandoned that way
    /// report neither failures nor durations.
    ///
    /// # Errors
    ///
    /// As [`CheckerPool::check`].
    pub fn check_nodes(
        &mut self,
        net: &Network,
        interface: &NodeAnnotations,
        property: &NodeAnnotations,
        nodes: &[NodeId],
        cancel: &CancelToken,
    ) -> Result<CheckReport, CoreError> {
        let start = Instant::now();
        let g = net.topology();
        // deterministic class striping, as in multi-process sharding: every
        // worker gets the same mix of cheap and expensive node classes
        let plan =
            ShardPlan::by_class(nodes.to_vec(), self.workers.len(), |v| g.node_class(v).to_owned());
        let mut active = Vec::new();
        for (i, worker) in self.workers.iter().enumerate() {
            let assigned = plan.nodes_of(i);
            if assigned.is_empty() {
                continue;
            }
            let sent = worker.tx.send(Job {
                net: net.clone(),
                interface: interface.clone(),
                property: property.clone(),
                nodes: assigned.to_vec(),
                cancel: cancel.clone(),
            });
            if sent.is_err() {
                // a worker that panicked in an earlier check closed its
                // channel; report it as an error rather than a cascade of
                // unrelated panics (still drain the workers already fed)
                active.push((i, false));
                continue;
            }
            active.push((i, true));
        }
        let mut failures = Vec::new();
        let mut node_durations = Vec::new();
        let mut terms = TermCacheStats::default();
        let mut first_error = None;
        for (i, fed) in active {
            if !fed {
                first_error.get_or_insert(CoreError::WorkerDied);
                continue;
            }
            match self.workers[i].rx.recv() {
                Ok(Ok((fs, ds, ts))) => {
                    failures.extend(fs);
                    node_durations.extend(ds);
                    terms += ts;
                }
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                // the worker panicked mid-job and dropped its result channel
                Err(_) => {
                    first_error.get_or_insert(CoreError::WorkerDied);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(CheckReport::from_parts(failures, node_durations, start.elapsed(), Some(terms)))
    }
}

fn run_job(
    checker: &ModularChecker,
    sessions: &mut SessionPool,
    fail_fast: bool,
    job: &Job,
) -> JobResult {
    let signature = job.net.encoder_signature();
    let before = sessions.term_cache_stats();
    {
        // the job's token must reach this worker's in-flight solver calls:
        // hooks are per-token (jobs come with fresh tokens), so the handle
        // is registered anew for every job — on an already-raised token the
        // hook fires immediately and the loop below never starts a check
        let session = sessions.session(&signature);
        let handle = session.interrupt_handle();
        job.cancel.on_cancel(move || handle.interrupt());
    }
    let mut failures = Vec::new();
    let mut durations = Vec::new();
    for &v in &job.nodes {
        if job.cancel.is_cancelled() {
            break;
        }
        let session = sessions.session(&signature);
        let Some((node_failures, duration)) = checker.check_node_in_session(
            session,
            job.cancel.flag(),
            &job.net,
            &job.interface,
            &job.property,
            v,
        )?
        else {
            // the cancel flag rose mid-node: abandoned, like the scoped pool
            break;
        };
        if fail_fast && !node_failures.is_empty() {
            job.cancel.cancel();
        }
        failures.extend(node_failures);
        durations.push((v, duration));
    }
    Ok((failures, durations, sessions.term_cache_stats().delta_since(&before)))
}

impl Drop for CheckerPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // closing the job channel ends the worker's recv loop
            let (dead_tx, _) = mpsc::channel();
            drop(std::mem::replace(&mut worker.tx, dead_tx));
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_expr::{Expr, Type};
    use timepiece_topology::gen;

    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    fn reach_interface(net: &Network) -> NodeAnnotations {
        NodeAnnotations::from_fn(net.topology(), |v| {
            let t = v.index() as u64;
            if t == 0 {
                Temporal::globally(|r| r.clone())
            } else {
                Temporal::until_at(t, |r| r.clone().not(), Temporal::globally(|r| r.clone()))
            }
        })
    }

    #[test]
    fn pool_agrees_with_the_scoped_checker_across_rows() {
        let mut pool = CheckerPool::new(3, CheckOptions::default());
        for n in [3usize, 5, 7] {
            let net = reach_net(n);
            let interface = reach_interface(&net);
            let property = NodeAnnotations::new(net.topology(), Temporal::any());
            let pooled = pool.check(&net, &interface, &property).unwrap();
            let scoped = ModularChecker::new(CheckOptions::default())
                .check(&net, &interface, &property)
                .unwrap();
            assert_eq!(pooled.is_verified(), scoped.is_verified(), "n={n}");
            assert_eq!(pooled.node_durations().len(), n, "every node checked once");
        }
    }

    #[test]
    fn pool_reports_failures_like_the_scoped_checker() {
        let mut pool = CheckerPool::new(2, CheckOptions::default());
        let net = reach_net(4);
        let mut interface = reach_interface(&net);
        let v2 = net.topology().node_by_name("v2").unwrap();
        interface
            .set(v2, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let pooled = pool.check(&net, &interface, &property).unwrap();
        let scoped = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        let names = |r: &CheckReport| -> Vec<String> {
            r.failures().iter().map(|f| f.node_name.clone()).collect()
        };
        assert_eq!(names(&pooled), names(&scoped));
        assert!(!pooled.is_verified());
    }

    #[test]
    fn fail_fast_stops_pool_wide() {
        // every node fails; with fail_fast the shared cancel flag keeps the
        // pool from checking all of them (matching the scoped checker)
        let mut pool = CheckerPool::new(2, CheckOptions { fail_fast: true, ..Default::default() });
        let net = reach_net(8);
        let interface =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = pool.check(&net, &interface, &property).unwrap();
        assert!(!report.is_verified());
        assert!(report.node_durations().len() < 8, "cancel must abandon nodes");
        // the pool is reusable after a cancelled job
        let good = reach_interface(&net);
        let report = pool.check(&net, &good, &property).unwrap();
        assert!(report.is_verified());
        assert_eq!(report.node_durations().len(), 8);
    }

    #[test]
    fn identical_rows_start_warm_from_the_cross_row_term_cache() {
        // with hash-consed intern ids, row 2's terms are the *same nodes* as
        // row 1's, so the persistent sessions serve them from cache: the
        // second structurally identical row must show hits and fewer misses
        let mut pool = CheckerPool::new(1, CheckOptions::default());
        let net = reach_net(5);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let first = pool.check(&net, &interface, &property).unwrap();
        let second = pool.check(&net, &interface, &property).unwrap();
        let t1 = first.term_cache().expect("pooled reports carry term stats");
        let t2 = second.term_cache().expect("pooled reports carry term stats");
        assert!(t2.hits > 0, "row 2 saw no cache hits: {t2:?}");
        assert!(t2.misses < t1.misses, "row 2 must start warm from row 1: {t1:?} vs {t2:?}");
        assert!(t2.hit_rate() > t1.hit_rate());
    }

    #[test]
    fn check_nodes_covers_exactly_the_requested_subset() {
        let mut pool = CheckerPool::new(2, CheckOptions::default());
        let net = reach_net(6);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let all: Vec<NodeId> = net.topology().nodes().collect();
        let subset = &all[1..4];
        let report =
            pool.check_nodes(&net, &interface, &property, subset, &CancelToken::new()).unwrap();
        assert!(report.is_verified());
        let checked: Vec<NodeId> = report.node_durations().iter().map(|(v, _)| *v).collect();
        assert_eq!(checked, subset, "exactly the requested nodes, in id order");
    }

    #[test]
    fn an_already_cancelled_token_checks_nothing() {
        // a daemon draining for shutdown raises its token before the job:
        // every node is abandoned, the pool stays reusable
        let mut pool = CheckerPool::new(2, CheckOptions::default());
        let net = reach_net(5);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let all: Vec<NodeId> = net.topology().nodes().collect();
        let token = CancelToken::new();
        token.cancel();
        let report = pool.check_nodes(&net, &interface, &property, &all, &token).unwrap();
        assert_eq!(report.node_durations().len(), 0, "all nodes abandoned");
        assert!(report.is_verified(), "abandoned nodes report no failures");
        let report =
            pool.check_nodes(&net, &interface, &property, &all, &CancelToken::new()).unwrap();
        assert_eq!(report.node_durations().len(), 5, "fresh token, full check");
    }

    #[test]
    fn session_cap_bounds_worker_pools() {
        // one worker, cap 1: checking two structurally different networks
        // (distinct signatures) must evict rather than accumulate — smoke
        // for the daemon's bounded-session configuration
        let mut pool =
            CheckerPool::new(1, CheckOptions { session_cap: Some(1), ..Default::default() });
        let property_of = |net: &Network| NodeAnnotations::new(net.topology(), Temporal::any());
        let bool_net = reach_net(3);
        let int_net = {
            let g = gen::undirected_path(3);
            let v0 = g.node_by_name("v0").unwrap();
            NetworkBuilder::new(g, Type::option(Type::Int))
                .merge(|a, b| b.clone().is_none().ite(a.clone(), b.clone()))
                .default_transfer(|r| r.clone())
                .init(v0, Expr::int(0).some())
                .build()
                .unwrap()
        };
        let bool_interface = reach_interface(&bool_net);
        let int_interface = NodeAnnotations::new(int_net.topology(), Temporal::any());
        for _ in 0..2 {
            assert!(pool
                .check(&bool_net, &bool_interface, &property_of(&bool_net))
                .unwrap()
                .is_verified());
            assert!(pool
                .check(&int_net, &int_interface, &property_of(&int_net))
                .unwrap()
                .is_verified());
        }
    }

    #[test]
    fn more_workers_than_nodes_is_fine() {
        let mut pool = CheckerPool::new(8, CheckOptions::default());
        let net = reach_net(2);
        let interface = reach_interface(&net);
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = pool.check(&net, &interface, &property).unwrap();
        assert!(report.is_verified());
        assert_eq!(report.node_durations().len(), 2);
    }
}
