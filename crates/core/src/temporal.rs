//! Temporal operators over route predicates (Fig. 12).
//!
//! A [`Temporal`] denotes a function from a time `t : N` to a set of routes
//! (represented as a predicate over a route term). The language deliberately
//! mirrors the paper's:
//!
//! * `G(φ)`       — `φ` holds at every time;
//! * `φ U^τ Q`   — `φ` holds strictly before witness time `τ`, and the
//!   operator `Q` holds from `τ` on;
//! * `F^τ(Q)`    — anything may hold before `τ`, `Q` from `τ` on
//!   (sugar for `true U^τ Q`);
//! * lifted `⊓`, `⊔` and `∼` for intersection, union and complement.
//!
//! Witness times are *expressions*, so they may depend on symbolic values —
//! e.g. `dist(v)` as a function of a symbolic destination in the all-pairs
//! benchmarks.

use std::fmt;
use std::sync::Arc;

#[cfg(test)]
use timepiece_expr::Type;
use timepiece_expr::{Expr, Value};

/// A predicate over a route term: given the route, produce a boolean term.
pub type RoutePredicate = Arc<dyn Fn(&Expr) -> Expr + Send + Sync>;

/// A temporal operator: a time-indexed family of route predicates.
#[derive(Clone)]
pub enum Temporal {
    /// `G(φ)` — globally `φ`.
    Globally(RoutePredicate),
    /// `φ U^τ Q` — `φ` until witness time `τ`, then `Q`.
    Until(Expr, RoutePredicate, Box<Temporal>),
    /// Lifted intersection `Q₁ ⊓ Q₂`.
    And(Box<Temporal>, Box<Temporal>),
    /// Lifted union `Q₁ ⊔ Q₂`.
    Or(Box<Temporal>, Box<Temporal>),
    /// Lifted complement `∼Q`.
    Not(Box<Temporal>),
}

impl fmt::Debug for Temporal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporal::Globally(_) => write!(f, "G(φ)"),
            Temporal::Until(tau, _, q) => write!(f, "φ U^{tau} {q:?}"),
            Temporal::And(a, b) => write!(f, "({a:?} ⊓ {b:?})"),
            Temporal::Or(a, b) => write!(f, "({a:?} ⊔ {b:?})"),
            Temporal::Not(a) => write!(f, "∼{a:?}"),
        }
    }
}

impl Temporal {
    /// `G(φ)`.
    pub fn globally(phi: impl Fn(&Expr) -> Expr + Send + Sync + 'static) -> Temporal {
        Temporal::Globally(Arc::new(phi))
    }

    /// `φ U^τ Q` with an expression witness time.
    pub fn until(
        tau: Expr,
        phi: impl Fn(&Expr) -> Expr + Send + Sync + 'static,
        q: Temporal,
    ) -> Temporal {
        Temporal::Until(tau, Arc::new(phi), Box::new(q))
    }

    /// `φ U^τ Q` with a concrete witness time.
    pub fn until_at(
        tau: u64,
        phi: impl Fn(&Expr) -> Expr + Send + Sync + 'static,
        q: Temporal,
    ) -> Temporal {
        Temporal::until(Expr::int(tau as i64), phi, q)
    }

    /// `F^τ(Q)` — true until `τ`, then `Q`.
    pub fn finally(tau: Expr, q: Temporal) -> Temporal {
        Temporal::until(tau, |_| Expr::bool(true), q)
    }

    /// `F^τ(Q)` with a concrete witness time.
    pub fn finally_at(tau: u64, q: Temporal) -> Temporal {
        Temporal::finally(Expr::int(tau as i64), q)
    }

    /// Lifted intersection `self ⊓ other`.
    pub fn and(self, other: Temporal) -> Temporal {
        Temporal::And(Box::new(self), Box::new(other))
    }

    /// Lifted union `self ⊔ other`.
    pub fn or(self, other: Temporal) -> Temporal {
        Temporal::Or(Box::new(self), Box::new(other))
    }

    /// Lifted complement `∼self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Temporal {
        Temporal::Not(Box::new(self))
    }

    /// The constant-true operator (`G(true)`), the paper's "any route".
    pub fn any() -> Temporal {
        Temporal::globally(|_| Expr::bool(true))
    }

    /// This operator with its outermost witness time replaced by `tau` —
    /// the witness-time *delta* of incremental re-checking: `φ U^τ Q`
    /// becomes `φ U^tau Q` (and the rewrite distributes over the lifted
    /// connectives). Returns `None` when the operator has no witness time
    /// anywhere (`G(φ)` all the way down), so callers can reject the edit
    /// instead of silently ignoring it.
    pub fn with_witness(&self, tau: &Expr) -> Option<Temporal> {
        match self {
            Temporal::Globally(_) => None,
            Temporal::Until(_, phi, q) => {
                Some(Temporal::Until(tau.clone(), Arc::clone(phi), q.clone()))
            }
            Temporal::And(a, b) => match (a.with_witness(tau), b.with_witness(tau)) {
                (None, None) => None,
                (ra, rb) => Some(Temporal::And(
                    Box::new(ra.unwrap_or_else(|| (**a).clone())),
                    Box::new(rb.unwrap_or_else(|| (**b).clone())),
                )),
            },
            Temporal::Or(a, b) => match (a.with_witness(tau), b.with_witness(tau)) {
                (None, None) => None,
                (ra, rb) => Some(Temporal::Or(
                    Box::new(ra.unwrap_or_else(|| (**a).clone())),
                    Box::new(rb.unwrap_or_else(|| (**b).clone())),
                )),
            },
            Temporal::Not(a) => a.with_witness(tau).map(|r| Temporal::Not(Box::new(r))),
        }
    }

    /// Instantiates the operator: the predicate holding at time `t` applied
    /// to `route`. `t` may be any integer-typed term (symbolic or constant).
    ///
    /// Until expands to a case split: `if t < τ then φ(route) else Q(t)(route)`.
    pub fn at(&self, t: &Expr, route: &Expr) -> Expr {
        match self {
            Temporal::Globally(phi) => phi(route),
            Temporal::Until(tau, phi, q) => {
                t.clone().lt(tau.clone()).ite(phi(route), q.at(t, route))
            }
            Temporal::And(a, b) => a.at(t, route).and(b.at(t, route)),
            Temporal::Or(a, b) => a.at(t, route).or(b.at(t, route)),
            Temporal::Not(a) => a.at(t, route).not(),
        }
    }

    /// Erases the temporal structure, producing the predicate a stable-state
    /// verifier checks instead (§6: "we erased the temporal details"): the
    /// limit behavior `Q(∞)`.
    pub fn erase(&self, route: &Expr) -> Expr {
        match self {
            Temporal::Globally(phi) => phi(route),
            Temporal::Until(_, _, q) => q.erase(route),
            Temporal::And(a, b) => a.erase(route).and(b.erase(route)),
            Temporal::Or(a, b) => a.erase(route).or(b.erase(route)),
            Temporal::Not(a) => a.erase(route).not(),
        }
    }

    /// The exact stepwise interface of a closed simulation trace
    /// (Theorem 3.3): `A(v)(t) = {σ(v)(t)}`, expressed as nested untils that
    /// pin each time step to its simulated value, with the stable value
    /// holding globally from the end of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn from_trace(trace: &[Value]) -> Temporal {
        assert!(!trace.is_empty(), "trace must contain at least the initial state");
        let eq_pred =
            |value: Value| move |route: &Expr| route.clone().eq(Expr::constant(value.clone()));
        let last = trace.last().expect("nonempty").clone();
        let mut acc = Temporal::globally(eq_pred(last));
        for (t, value) in trace.iter().enumerate().rev().skip(1) {
            acc = Temporal::until_at((t + 1) as u64, eq_pred(value.clone()), acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::Env;

    fn holds(op: &Temporal, t: i64, route: Value) -> bool {
        let r = Expr::var("r", route.type_of());
        let tv = Expr::var("t", Type::Int);
        let e = op.at(&tv, &r);
        let mut env = Env::new();
        env.bind("r", route);
        env.bind("t", Value::int(t));
        e.eval_bool(&env).unwrap()
    }

    fn ge(n: i64) -> Temporal {
        Temporal::globally(move |r| r.clone().ge(Expr::int(n)))
    }

    #[test]
    fn globally_ignores_time() {
        let op = ge(5);
        assert!(holds(&op, 0, Value::int(7)));
        assert!(holds(&op, 1000, Value::int(7)));
        assert!(!holds(&op, 0, Value::int(3)));
    }

    #[test]
    fn until_switches_at_witness_time() {
        // r = 0 until time 3, then r >= 5
        let op = Temporal::until_at(3, |r| r.clone().eq(Expr::int(0)), ge(5));
        assert!(holds(&op, 0, Value::int(0)));
        assert!(holds(&op, 2, Value::int(0)));
        assert!(!holds(&op, 3, Value::int(0)));
        assert!(holds(&op, 3, Value::int(5)));
        assert!(!holds(&op, 2, Value::int(5)));
    }

    #[test]
    fn finally_allows_anything_before() {
        let op = Temporal::finally_at(2, ge(1));
        assert!(holds(&op, 0, Value::int(-100)));
        assert!(holds(&op, 1, Value::int(0)));
        assert!(!holds(&op, 2, Value::int(0)));
        assert!(holds(&op, 2, Value::int(1)));
    }

    #[test]
    fn with_witness_moves_the_switch_point() {
        let op = Temporal::finally_at(2, ge(1));
        let later = op.with_witness(&Expr::int(5)).expect("an until has a witness");
        // the original switches at 2, the rewritten one at 5
        assert!(!holds(&op, 3, Value::int(0)));
        assert!(holds(&later, 3, Value::int(0)));
        assert!(!holds(&later, 5, Value::int(0)));
        assert!(holds(&later, 5, Value::int(1)));
        // operators with no witness time anywhere reject the edit
        assert!(ge(1).with_witness(&Expr::int(5)).is_none());
        assert!(Temporal::any().not().with_witness(&Expr::int(5)).is_none());
        // the rewrite reaches through lifted connectives
        let both = op.and(ge(0)).with_witness(&Expr::int(4)).expect("left side has a witness");
        assert!(holds(&both, 3, Value::int(0)));
        assert!(!holds(&both, 4, Value::int(0)));
    }

    #[test]
    fn nested_untils_model_intervals() {
        // the paper's F^2(φ1 U^4 G(φ2)) example: true on t<2, φ1 on 2..4, φ2 after
        let phi1 = |r: &Expr| r.clone().eq(Expr::int(1));
        let phi2 = |r: &Expr| r.clone().eq(Expr::int(2));
        let op = Temporal::finally_at(2, Temporal::until_at(4, phi1, Temporal::globally(phi2)));
        assert!(holds(&op, 0, Value::int(999)));
        assert!(holds(&op, 1, Value::int(999)));
        assert!(holds(&op, 2, Value::int(1)) && !holds(&op, 2, Value::int(2)));
        assert!(holds(&op, 3, Value::int(1)));
        assert!(holds(&op, 4, Value::int(2)) && !holds(&op, 4, Value::int(1)));
        assert!(holds(&op, 100, Value::int(2)));
    }

    #[test]
    fn lifted_connectives() {
        let both = ge(0).and(ge(5));
        assert!(holds(&both, 0, Value::int(5)));
        assert!(!holds(&both, 0, Value::int(3)));
        let either = ge(10).or(ge(5));
        assert!(holds(&either, 0, Value::int(6)));
        assert!(!holds(&either, 0, Value::int(4)));
        let neg = ge(5).not();
        assert!(holds(&neg, 0, Value::int(4)));
        assert!(!holds(&neg, 0, Value::int(5)));
        assert!(holds(&Temporal::any(), 7, Value::int(-3)));
    }

    #[test]
    fn erase_takes_limit_operator() {
        let op = Temporal::until_at(3, |r| r.clone().eq(Expr::int(0)), ge(5));
        let r = Expr::var("r", Type::Int);
        let e = op.erase(&r);
        let mut env = Env::new();
        env.bind("r", Value::int(7));
        assert!(e.eval_bool(&env).unwrap());
        env.bind("r", Value::int(0));
        assert!(!e.eval_bool(&env).unwrap());
    }

    #[test]
    fn from_trace_pins_each_step() {
        let trace = vec![Value::int(0), Value::int(1), Value::int(2)];
        let op = Temporal::from_trace(&trace);
        for (t, v) in trace.iter().enumerate() {
            assert!(holds(&op, t as i64, v.clone()), "step {t}");
            // any other value fails at that step
            assert!(!holds(&op, t as i64, Value::int(99)));
        }
        // stable value holds forever after
        assert!(holds(&op, 50, Value::int(2)));
        assert!(!holds(&op, 50, Value::int(1)));
    }

    #[test]
    fn symbolic_witness_times() {
        // witness time is a symbolic variable k: r=0 until k, then r=1
        let k = Expr::var("k", Type::Int);
        let op = Temporal::until(
            k,
            |r| r.clone().eq(Expr::int(0)),
            Temporal::globally(|r| r.clone().eq(Expr::int(1))),
        );
        let r = Expr::var("r", Type::Int);
        let t = Expr::var("t", Type::Int);
        let e = op.at(&t, &r);
        let mut env = Env::new();
        env.bind("k", Value::int(10));
        env.bind("t", Value::int(9));
        env.bind("r", Value::int(0));
        assert!(e.eval_bool(&env).unwrap());
        env.bind("t", Value::int(10));
        assert!(!e.eval_bool(&env).unwrap());
        env.bind("r", Value::int(1));
        assert!(e.eval_bool(&env).unwrap());
    }

    #[test]
    fn debug_renders_structure() {
        let op = Temporal::finally_at(2, Temporal::any()).and(Temporal::any().not());
        let s = format!("{op:?}");
        assert!(s.contains("⊓"));
        assert!(s.contains("U^2"));
    }
}
