//! The verification conditions of Fig. 12, as SMT queries.

use timepiece_algebra::Network;
use timepiece_expr::{Expr, Type};
use timepiece_smt::Vc;
use timepiece_topology::NodeId;

use crate::interface::NodeAnnotations;

/// Which of the three conditions a check instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcKind {
    /// Equation (5): `I(v) ∈ A(v)(0)`.
    Initial,
    /// Equation (6): neighbor routes drawn from interfaces at `t` must step
    /// into `A(v)(t+1)`.
    Inductive,
    /// Equation (7): `A(v)(t) ⊆ P(v)(t)`.
    Safety,
}

impl std::fmt::Display for VcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcKind::Initial => write!(f, "initial"),
            VcKind::Inductive => write!(f, "inductive"),
            VcKind::Safety => write!(f, "safety"),
        }
    }
}

/// The symbolic time variable shared by the inductive and safety conditions.
pub fn time_var() -> Expr {
    Expr::var("t", Type::Int)
}

/// Builds the initial condition (5) for node `v`:
/// the initial route lies in the interface at time 0.
pub fn initial_vc(net: &Network, interface: &NodeAnnotations, v: NodeId) -> Vc {
    let name = format!("initial@{}", net.topology().name(v));
    let goal = interface.get(v).at(&Expr::int(0), net.init(v));
    Vc::new(name, net.symbolic_constraints(), goal)
}

/// Builds the inductive condition (6) for node `v`, generalized to `delay`
/// units of staleness (§4, "Incorporating delay"):
///
/// for all `t ≥ 0` and neighbor routes `s_u ∈ ⋃_{δ ≤ delay} A(u)(t+δ)`, the
/// merged result lies in `A(v)(t + delay + 1)`.
///
/// With `delay = 0` this is exactly equation (6).
pub fn inductive_vc(net: &Network, interface: &NodeAnnotations, v: NodeId, delay: u64) -> Vc {
    let t = time_var();
    let name = format!("inductive@{}", net.topology().name(v));
    let mut assumptions = net.symbolic_constraints();
    assumptions.push(t.clone().ge(Expr::int(0)));

    let preds = net.topology().preds(v);
    let neighbor_routes: Vec<Expr> = preds.iter().map(|&u| net.route_var(u)).collect();
    for (&u, r) in preds.iter().zip(&neighbor_routes) {
        let in_some_window = Expr::or_all((0..=delay).map(|d| {
            let shifted = t.clone().add(Expr::int(d as i64));
            interface.get(u).at(&shifted, r)
        }));
        assumptions.push(in_some_window);
    }

    let stepped = net.step(v, &neighbor_routes);
    let goal_time = t.add(Expr::int((delay + 1) as i64));
    let goal = interface.get(v).at(&goal_time, &stepped);
    Vc::new(name, assumptions, goal)
}

/// Builds the safety condition (7) for node `v`: every route admitted by the
/// interface at any time satisfies the property at that time.
pub fn safety_vc(
    net: &Network,
    interface: &NodeAnnotations,
    property: &NodeAnnotations,
    v: NodeId,
) -> Vc {
    let t = time_var();
    let name = format!("safety@{}", net.topology().name(v));
    let route = net.route_var(v);
    let mut assumptions = net.symbolic_constraints();
    assumptions.push(t.clone().ge(Expr::int(0)));
    assumptions.push(interface.get(v).at(&t, &route));
    let goal = property.get(v).at(&t, &route);
    Vc::new(name, assumptions, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use timepiece_algebra::NetworkBuilder;
    use timepiece_smt::{check_validity, Validity};
    use timepiece_topology::gen;

    /// Boolean-reachability network on a directed 2-path.
    fn bool_net() -> Network {
        let g = gen::path(2);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    fn reach_interface(net: &Network) -> NodeAnnotations {
        let g = net.topology();
        let v1 = g.node_by_name("v1").unwrap();
        let mut interface = NodeAnnotations::new(g, Temporal::globally(|r| r.clone()));
        interface.set(v1, Temporal::finally_at(1, Temporal::globally(|r| r.clone())));
        interface
    }

    #[test]
    fn initial_condition_checks() {
        let net = bool_net();
        let interface = reach_interface(&net);
        for v in net.topology().nodes() {
            let vc = initial_vc(&net, &interface, v);
            assert!(
                check_validity(&vc, None).unwrap().is_valid(),
                "initial at {}",
                net.topology().name(v)
            );
        }
    }

    #[test]
    fn inductive_condition_checks() {
        let net = bool_net();
        let interface = reach_interface(&net);
        for v in net.topology().nodes() {
            let vc = inductive_vc(&net, &interface, v, 0);
            assert!(
                check_validity(&vc, None).unwrap().is_valid(),
                "inductive at {}",
                net.topology().name(v)
            );
        }
    }

    #[test]
    fn safety_condition_checks() {
        let net = bool_net();
        let interface = reach_interface(&net);
        for v in net.topology().nodes() {
            let vc = safety_vc(&net, &interface, &interface, v);
            assert!(check_validity(&vc, None).unwrap().is_valid());
        }
    }

    #[test]
    fn wrong_witness_time_fails_inductive() {
        let net = bool_net();
        let g = net.topology();
        let v1 = g.node_by_name("v1").unwrap();
        // claim v1 has the route from time 0 — but only time 1 is true;
        // the INITIAL condition catches t=0, and a too-late-by-far claim
        // that v1 never gets a route fails the INDUCTIVE condition:
        let mut interface = NodeAnnotations::new(g, Temporal::globally(|r| r.clone()));
        interface.set(v1, Temporal::globally(|r| r.clone().not()));
        let vc = inductive_vc(&net, &interface, v1, 0);
        match check_validity(&vc, None).unwrap() {
            Validity::Invalid(cex) => {
                // counterexample binds the neighbor route and the time
                assert!(cex.assignment.get("t").is_some());
                assert!(cex.assignment.get("route-v0").is_some());
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn missing_initial_route_fails_initial() {
        let net = bool_net();
        let g = net.topology();
        let v0 = g.node_by_name("v0").unwrap();
        // v0's interface claims no route ever — but I(v0) = true
        let mut interface = NodeAnnotations::new(g, Temporal::globally(|r| r.clone()));
        interface.set(v0, Temporal::globally(|r| r.clone().not()));
        let vc = initial_vc(&net, &interface, v0);
        assert!(!check_validity(&vc, None).unwrap().is_valid());
    }

    #[test]
    fn weak_interface_fails_safety() {
        let net = bool_net();
        let g = net.topology();
        let v1 = g.node_by_name("v1").unwrap();
        let interface = NodeAnnotations::new(g, Temporal::any());
        let mut property = NodeAnnotations::new(g, Temporal::any());
        property.set(v1, Temporal::globally(|r| r.clone()));
        let vc = safety_vc(&net, &interface, &property, v1);
        assert!(!check_validity(&vc, None).unwrap().is_valid());
    }

    #[test]
    fn delay_weakens_the_inductive_condition() {
        // interface that is exact for the synchronous semantics:
        // v1 has no route before t=1, route from t=1 on.
        let net = bool_net();
        let g = net.topology();
        let v1 = g.node_by_name("v1").unwrap();
        let mut interface = NodeAnnotations::new(g, Temporal::globally(|r| r.clone()));
        interface
            .set(v1, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        // synchronous: fine
        assert!(check_validity(&inductive_vc(&net, &interface, v1, 0), None).unwrap().is_valid());
        // v0's interface admits any route at any time, so under delay the
        // exact-time interface for v1 still holds (v0 is constant) — but a
        // *tightened* v0 interface shows the delay window matters:
        let mut tight = NodeAnnotations::new(g, Temporal::globally(|r| r.clone()));
        let v0 = g.node_by_name("v0").unwrap();
        tight
            .set(v0, Temporal::until_at(1, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        tight
            .set(v1, Temporal::until_at(2, |r| r.clone().not(), Temporal::globally(|r| r.clone())));
        // synchronous induction holds at v1
        assert!(check_validity(&inductive_vc(&net, &tight, v1, 0), None).unwrap().is_valid());
        // with 1 unit of delay the stale route from v0 at t+1 can arrive
        // "early", violating v1's exact witness time
        assert!(!check_validity(&inductive_vc(&net, &tight, v1, 1), None).unwrap().is_valid());
    }

    #[test]
    fn kinds_display() {
        assert_eq!(VcKind::Initial.to_string(), "initial");
        assert_eq!(VcKind::Inductive.to_string(), "inductive");
        assert_eq!(VcKind::Safety.to_string(), "safety");
    }
}
