//! A minimal blocking client for the `timepieced` protocol.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use timepiece_trace::json::{read_line_value, write_line_value, MAX_LINE_BYTES};
use timepiece_trace::Json;

use crate::protocol::Request;

/// One blocking connection to a `timepieced` server: write a frame, read
/// the reply, in strict alternation.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Any connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw frame and reads the reply frame.
    ///
    /// # Errors
    ///
    /// I/O errors, and `InvalidData`/`UnexpectedEof` when the server's
    /// reply is unframable.
    pub fn request(&mut self, frame: &Json) -> std::io::Result<Json> {
        write_line_value(&mut self.writer, frame)?;
        self.writer.flush()?;
        match read_line_value(&mut self.reader, MAX_LINE_BYTES) {
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "the server closed the connection before replying",
            )),
            Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Sends one typed request and reads the reply frame.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn send(&mut self, request: &Request) -> std::io::Result<Json> {
        self.request(&request.to_json())
    }
}
