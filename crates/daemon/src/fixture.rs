//! Small self-contained instances for tests, docs and smoke runs.
//!
//! The daemon's integration tests (and the CI smoke step) need a policy-mode
//! instance that checks in milliseconds but still exercises every delta
//! kind: edge-policy overrides, link up/down, witness-time edits and — when
//! built with a budget — failure-budget changes. A hop-count path fits: the
//! routes are `Option<{len: Int}>` records, every edge increments `len`,
//! and node `v_i`'s interface says "no route until time `i`, then a route
//! forever" — exact, so sabotage is detectable.

use timepiece_algebra::policy::{FailureModel, MergeKey, RoutePolicy, RouteSchema};
use timepiece_algebra::NetworkBuilder;
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_nets::BenchInstance;
use timepiece_topology::gen;

/// A hop-count instance on an undirected path of `n` nodes, destination
/// `v0`, with the exact per-node reachability interface. With
/// `budget: Some(f)` every edge gets a failure bit under an at-most-`f`
/// assumption (the exact interface then *fails* at some nodes — useful for
/// equivalence tests, which compare verdicts rather than demand success).
///
/// # Panics
///
/// Panics if `n < 2` (no edges to edit).
pub fn hop_path(n: usize, budget: Option<u64>) -> BenchInstance {
    assert!(n >= 2, "a hop path needs at least one edge");
    let schema =
        RouteSchema::new("Hop", [("len".to_owned(), Type::Int)], [MergeKey::Lower("len".into())]);
    let g = gen::undirected_path(n);
    let dest = g.node_by_name("v0").unwrap();
    let edges: Vec<_> = g.edges().collect();
    let origin = Expr::record(schema.record_def(), vec![Expr::int(0)]).some();
    let mut builder = NetworkBuilder::from_schema(g, schema)
        .default_policy(RoutePolicy::new().increment("len"))
        .init(dest, origin);
    if let Some(f) = budget {
        builder = builder.failures(FailureModel::at_most(f, edges));
    }
    let network = builder.build().unwrap();
    let interface = NodeAnnotations::from_fn(network.topology(), |v| {
        let t = v.index() as u64;
        if t == 0 {
            Temporal::globally(|r| r.clone().is_some())
        } else {
            Temporal::until_at(
                t,
                |r| r.clone().is_none(),
                Temporal::globally(|r| r.clone().is_some()),
            )
        }
    });
    let property = NodeAnnotations::new(network.topology(), Temporal::any());
    BenchInstance { network, interface, property }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};

    #[test]
    fn the_failure_free_fixture_verifies() {
        let instance = hop_path(4, None);
        let report = ModularChecker::new(CheckOptions::default())
            .check(&instance.network, &instance.interface, &instance.property)
            .unwrap();
        assert!(report.is_verified());
    }

    #[test]
    fn the_faulty_fixture_fails_somewhere() {
        // with a failure budget the exact interface is too strong: a downed
        // edge delays the route past the promised witness time
        let instance = hop_path(4, Some(1));
        let report = ModularChecker::new(CheckOptions::default())
            .check(&instance.network, &instance.interface, &instance.property)
            .unwrap();
        assert!(!report.is_verified());
    }
}
