//! `timepieced`: verification as a service with incremental dirty-cone
//! re-checking.
//!
//! Modular verification (Algorithm 1) already pays for this crate's premise:
//! each node's three conditions depend on a bounded slice of the network, so
//! an *edit* — a policy change, a link failure, a new witness time, a new
//! failure budget — invalidates a bounded **cone** of nodes. A daemon that
//! keeps the compiled network, the solver sessions and the last verdict per
//! node warm can answer "is the network still correct after this edit?" by
//! re-checking only that cone, orders of magnitude faster than a cold run.
//!
//! The pieces:
//!
//! * [`mod@protocol`] — the NDJSON wire protocol: `check`, `delta`,
//!   `status`, `profile`, `shutdown` (framing via
//!   [`timepiece_trace::json`]);
//! * [`mod@state`] — [`DaemonState`]: the warm instance, the persistent
//!   [`timepiece_core::sweep::CheckerPool`], the
//!   [`timepiece_core::Fingerprints`] snapshot and the
//!   [`timepiece_core::VerdictCache`]; `delta` handling = apply → diff
//!   fingerprints → re-check the cone → fold verdicts back in;
//! * [`mod@server`] — the TCP accept/state/connection threads, graceful
//!   drain on `shutdown` or SIGTERM (in-flight solver calls are interrupted
//!   through [`timepiece_sched::CancelToken`] hooks);
//! * [`mod@client`] — a minimal blocking client, used by `repro ask` and
//!   the soak harness;
//! * [`mod@fixture`] — small self-contained instances for tests and smoke
//!   runs.
//!
//! # Example
//!
//! Drive the state machine in process (the TCP server runs the same code):
//!
//! ```
//! use timepiece_core::check::CheckOptions;
//! use timepiece_daemon::fixture::hop_path;
//! use timepiece_daemon::{DaemonState, Delta, Request};
//! use timepiece_trace::Json;
//!
//! let options = CheckOptions { threads: Some(2), ..Default::default() };
//! let mut state = DaemonState::new("hop n=4", hop_path(4, None), options)?;
//! assert!(state.all_verified());
//!
//! let down = Request::Delta(Delta::LinkDown { u: "v2".into(), v: "v3".into() });
//! let reply = state.handle(&down).reply;
//! let cone = reply.get("cone_size").and_then(Json::as_f64).unwrap() as usize;
//! assert!(cone < state.nodes(), "a delta re-checks a strict subset");
//! assert!(!state.all_verified(), "v3 lost its only route");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod fixture;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::Client;
pub use protocol::{error_response, Delta, PolicySpec, ProtocolError, Request};
pub use server::{serve, spawn_sigterm_watcher, trigger_sigterm};
pub use state::{DaemonState, DrainSignal, Handled};
