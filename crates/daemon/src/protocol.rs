//! The `timepieced` wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! Every frame is one JSON object on one `\n`-terminated line (the codec is
//! [`timepiece_trace::json::read_line_value`] /
//! [`timepiece_trace::json::write_line_value`]). A request carries a
//! `"verb"`; a response always carries `"ok"` (and `"error"` when `ok` is
//! false). The verbs:
//!
//! | verb | request fields | effect |
//! |---|---|---|
//! | `check` | — | re-verify every node |
//! | `delta` | `kind` + kind-specific fields | apply one edit, re-verify the dirty cone |
//! | `status` | — | instance, verdict and counter summary |
//! | `profile` | — | the metrics-registry snapshot |
//! | `shutdown` | — | drain in-flight checks and stop serving |
//!
//! Delta kinds: `link_down`/`link_up` (`u`, `v`: node names),
//! `edge_policy` (`u`, `v`, `policy`: `"drop"`, `"default"`, or
//! `{"increment": <field>}`), `witness_time` (`node`, `tau`),
//! `failure_budget` (`budget`).

use timepiece_trace::Json;

/// How an edge's policy is respecified by an `edge_policy` delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// Drop every route (`drop_if true`).
    Drop,
    /// Remove the edge's override; it falls back to the default policy.
    Default,
    /// Increment the named route field (e.g. a path length).
    Increment(String),
}

/// One network edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// Both directions of the link get an always-drop policy.
    LinkDown {
        /// One endpoint's node name.
        u: String,
        /// The other endpoint's node name.
        v: String,
    },
    /// Both directions get their pre-`link_down` policies back.
    LinkUp {
        /// One endpoint's node name.
        u: String,
        /// The other endpoint's node name.
        v: String,
    },
    /// One directed edge's policy is replaced.
    EdgePolicy {
        /// The edge's tail node name.
        u: String,
        /// The edge's head node name.
        v: String,
        /// The new policy.
        policy: PolicySpec,
    },
    /// One node's interface gets a new outermost witness time.
    WitnessTime {
        /// The node name.
        node: String,
        /// The new witness time.
        tau: i64,
    },
    /// The link-failure budget `f` is replaced.
    FailureBudget {
        /// The new at-most budget.
        budget: u64,
    },
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Re-verify every node.
    Check,
    /// Apply one edit and re-verify its dirty cone.
    Delta(Delta),
    /// Summarize the instance, verdicts and counters.
    Status,
    /// Snapshot the metrics registry.
    Profile,
    /// Drain in-flight checks and stop serving.
    Shutdown,
}

/// A malformed request or response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(message: impl Into<String>) -> ProtocolError {
    ProtocolError(message.into())
}

fn field<'j>(value: &'j Json, key: &str) -> Result<&'j Json, ProtocolError> {
    value.get(key).ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn str_field(value: &Json, key: &str) -> Result<String, ProtocolError> {
    field(value, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| bad(format!("field {key:?} must be a string")))
}

fn num_field(value: &Json, key: &str) -> Result<f64, ProtocolError> {
    field(value, key)?.as_f64().ok_or_else(|| bad(format!("field {key:?} must be a number")))
}

impl PolicySpec {
    fn to_json(&self) -> Json {
        match self {
            PolicySpec::Drop => Json::str("drop"),
            PolicySpec::Default => Json::str("default"),
            PolicySpec::Increment(fieldname) => {
                Json::obj([("increment", Json::str(fieldname.clone()))])
            }
        }
    }

    fn from_json(value: &Json) -> Result<PolicySpec, ProtocolError> {
        match value {
            Json::Str(s) if s == "drop" => Ok(PolicySpec::Drop),
            Json::Str(s) if s == "default" => Ok(PolicySpec::Default),
            Json::Obj(_) => Ok(PolicySpec::Increment(str_field(value, "increment")?)),
            other => Err(bad(format!("bad policy spec {other}"))),
        }
    }
}

impl Request {
    /// The request as a wire frame.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Check => Json::obj([("verb", Json::str("check"))]),
            Request::Status => Json::obj([("verb", Json::str("status"))]),
            Request::Profile => Json::obj([("verb", Json::str("profile"))]),
            Request::Shutdown => Json::obj([("verb", Json::str("shutdown"))]),
            Request::Delta(delta) => {
                let mut pairs: Vec<(String, Json)> = vec![("verb".to_owned(), Json::str("delta"))];
                match delta {
                    Delta::LinkDown { u, v } => {
                        pairs.push(("kind".to_owned(), Json::str("link_down")));
                        pairs.push(("u".to_owned(), Json::str(u.clone())));
                        pairs.push(("v".to_owned(), Json::str(v.clone())));
                    }
                    Delta::LinkUp { u, v } => {
                        pairs.push(("kind".to_owned(), Json::str("link_up")));
                        pairs.push(("u".to_owned(), Json::str(u.clone())));
                        pairs.push(("v".to_owned(), Json::str(v.clone())));
                    }
                    Delta::EdgePolicy { u, v, policy } => {
                        pairs.push(("kind".to_owned(), Json::str("edge_policy")));
                        pairs.push(("u".to_owned(), Json::str(u.clone())));
                        pairs.push(("v".to_owned(), Json::str(v.clone())));
                        pairs.push(("policy".to_owned(), policy.to_json()));
                    }
                    Delta::WitnessTime { node, tau } => {
                        pairs.push(("kind".to_owned(), Json::str("witness_time")));
                        pairs.push(("node".to_owned(), Json::str(node.clone())));
                        pairs.push(("tau".to_owned(), Json::Num(*tau as f64)));
                    }
                    Delta::FailureBudget { budget } => {
                        pairs.push(("kind".to_owned(), Json::str("failure_budget")));
                        pairs.push(("budget".to_owned(), Json::from(*budget as usize)));
                    }
                }
                Json::Obj(pairs)
            }
        }
    }

    /// Parses a wire frame into a request.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on unknown verbs/kinds or missing fields.
    pub fn from_json(value: &Json) -> Result<Request, ProtocolError> {
        let verb = str_field(value, "verb")?;
        match verb.as_str() {
            "check" => Ok(Request::Check),
            "status" => Ok(Request::Status),
            "profile" => Ok(Request::Profile),
            "shutdown" => Ok(Request::Shutdown),
            "delta" => {
                let kind = str_field(value, "kind")?;
                let delta = match kind.as_str() {
                    "link_down" => {
                        Delta::LinkDown { u: str_field(value, "u")?, v: str_field(value, "v")? }
                    }
                    "link_up" => {
                        Delta::LinkUp { u: str_field(value, "u")?, v: str_field(value, "v")? }
                    }
                    "edge_policy" => Delta::EdgePolicy {
                        u: str_field(value, "u")?,
                        v: str_field(value, "v")?,
                        policy: PolicySpec::from_json(field(value, "policy")?)?,
                    },
                    "witness_time" => Delta::WitnessTime {
                        node: str_field(value, "node")?,
                        tau: num_field(value, "tau")? as i64,
                    },
                    "failure_budget" => {
                        Delta::FailureBudget { budget: num_field(value, "budget")? as u64 }
                    }
                    other => return Err(bad(format!("unknown delta kind {other:?}"))),
                };
                Ok(Request::Delta(delta))
            }
            other => Err(bad(format!("unknown verb {other:?}"))),
        }
    }
}

/// Builds an error response frame.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message.into()))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Check,
            Request::Status,
            Request::Profile,
            Request::Shutdown,
            Request::Delta(Delta::LinkDown { u: "a0".into(), v: "t1".into() }),
            Request::Delta(Delta::LinkUp { u: "a0".into(), v: "t1".into() }),
            Request::Delta(Delta::EdgePolicy {
                u: "c0".into(),
                v: "a2".into(),
                policy: PolicySpec::Drop,
            }),
            Request::Delta(Delta::EdgePolicy {
                u: "c0".into(),
                v: "a2".into(),
                policy: PolicySpec::Increment("len".into()),
            }),
            Request::Delta(Delta::EdgePolicy {
                u: "c0".into(),
                v: "a2".into(),
                policy: PolicySpec::Default,
            }),
            Request::Delta(Delta::WitnessTime { node: "e3".into(), tau: 7 }),
            Request::Delta(Delta::FailureBudget { budget: 2 }),
        ];
        for request in requests {
            let wire = request.to_json();
            // through the text form too, as the socket would carry it
            let parsed = Json::parse(&wire.to_string()).unwrap();
            assert_eq!(Request::from_json(&parsed).unwrap(), request);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad_frame in [
            r#"{"no_verb": 1}"#,
            r#"{"verb": "dance"}"#,
            r#"{"verb": "delta"}"#,
            r#"{"verb": "delta", "kind": "link_down", "u": "a0"}"#,
            r#"{"verb": "delta", "kind": "warp", "u": "a0", "v": "t0"}"#,
            r#"{"verb": "delta", "kind": "witness_time", "node": "e0", "tau": "soon"}"#,
            r#"{"verb": "delta", "kind": "edge_policy", "u": "a", "v": "b", "policy": "explode"}"#,
        ] {
            let frame = Json::parse(bad_frame).unwrap();
            assert!(Request::from_json(&frame).is_err(), "{bad_frame} must not parse");
        }
    }

    #[test]
    fn error_responses_carry_the_message() {
        let response = error_response("no such node");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(response.get("error").and_then(Json::as_str), Some("no such node"));
    }
}
