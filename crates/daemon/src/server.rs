//! The TCP serving loop: NDJSON frames in, NDJSON frames out.
//!
//! Threading model: one accept loop (the caller's thread), one *state*
//! thread owning the [`DaemonState`] (requests are serialized — the state
//! holds mutable caches and a checker pool), and one reader thread per
//! connection forwarding `(frame, reply-channel)` pairs to the state
//! thread. Clients therefore see strict request/reply ordering on their own
//! connection, and deltas from concurrent clients interleave atomically.
//!
//! Shutdown is cooperative through the state's [`DrainSignal`]: a
//! `shutdown` request (after its reply is sent) or a SIGTERM (via
//! [`spawn_sigterm_watcher`]) raises it, which cancels the in-flight
//! check's [`timepiece_sched::CancelToken`] — firing the registered
//! solver-interrupt hooks — pre-cancels any queued checks, stops the accept
//! loop, and lets [`serve`] return `Ok(())` so the process exits 0.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use timepiece_trace::json::{read_line_value, write_line_value, MAX_LINE_BYTES};
use timepiece_trace::Json;

use crate::protocol::{error_response, Request};
use crate::state::{DaemonState, DrainSignal};

/// How often the accept, state and signal-watcher loops poll.
const POLL: Duration = Duration::from_millis(25);

/// Set by the SIGTERM handler; polled by [`spawn_sigterm_watcher`]'s
/// thread. Process-global because POSIX handlers cannot carry state.
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" {
    /// POSIX `signal(2)`; taking the handler as a typed function pointer
    /// keeps this FFI-minimal (no libc crate, no numeric casts).
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler and spawns a detached watcher thread that
/// raises `drain` when the signal arrives, so a `kill <pid>` drains the
/// daemon (cancelling any in-flight check) instead of killing it mid-solve.
/// The `timepieced` serve mode calls this once before [`serve`].
pub fn spawn_sigterm_watcher(drain: DrainSignal) {
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm);
    }
    std::thread::spawn(move || {
        timepiece_trace::set_thread_label("sigterm-watcher");
        while !SIGTERM.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        drain.raise();
    });
}

/// Raises the same flag as a delivered SIGTERM — what tests (and anything
/// else embedding the server) use to exercise the watcher without a real
/// signal.
pub fn trigger_sigterm() {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// One unit forwarded to the state thread: the raw frame and where to send
/// the reply.
type Forwarded = (Json, mpsc::Sender<Json>);

/// Serves requests on `listener` until the state's [`DrainSignal`] rises —
/// via a `shutdown` request, [`DrainSignal::raise`], or SIGTERM when
/// [`spawn_sigterm_watcher`] is installed — then drains and returns
/// `Ok(())`.
///
/// # Errors
///
/// Only setup/accept I/O errors; per-connection errors close that
/// connection.
pub fn serve(listener: TcpListener, state: DaemonState) -> std::io::Result<()> {
    let drain = state.drain();
    let (req_tx, req_rx) = mpsc::channel::<Forwarded>();

    let state_drain = drain.clone();
    let state_thread = std::thread::spawn(move || {
        timepiece_trace::set_thread_label("daemon-state");
        run_state_loop(state, &state_drain, &req_rx);
    });

    listener.set_nonblocking(true)?;
    loop {
        if drain.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = req_tx.clone();
                std::thread::spawn(move || {
                    timepiece_trace::set_thread_label("daemon-conn");
                    // best effort: a broken connection only ends itself
                    let _ = run_connection(stream, &tx);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                drain.raise();
                drop(req_tx);
                let _ = state_thread.join();
                return Err(e);
            }
        }
    }
    drop(req_tx);
    let _ = state_thread.join();
    // connection threads are detached; give the one carrying the shutdown
    // reply a beat to flush before the caller exits the process
    std::thread::sleep(POLL);
    Ok(())
}

/// The state thread: applies forwarded frames to the state in arrival
/// order, stopping when the drain rises or every sender hung up.
fn run_state_loop(mut state: DaemonState, drain: &DrainSignal, req_rx: &mpsc::Receiver<Forwarded>) {
    loop {
        match req_rx.recv_timeout(POLL) {
            Ok((frame, reply_tx)) => {
                match Request::from_json(&frame) {
                    Ok(request) => {
                        let handled = state.handle(&request);
                        // the reply leaves before the drain rises, so the
                        // shutdown caller hears its ack
                        let _ = reply_tx.send(handled.reply);
                        if handled.shutdown {
                            drain.raise();
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = reply_tx.send(error_response(e.to_string()));
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if drain.is_draining() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One connection: read a frame, forward it, write the reply, repeat until
/// EOF or error. Runs on its own thread.
fn run_connection(stream: TcpStream, tx: &mpsc::Sender<Forwarded>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_line_value(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => {
                // a framing error poisons the stream: answer once and close
                let _ = write_line_value(&mut writer, &error_response(e.to_string()));
                return Ok(());
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx.send((frame, reply_tx)).is_err() {
            // the state thread is gone (drained); tell the client and close
            let _ = write_line_value(&mut writer, &error_response("daemon is shutting down"));
            return Ok(());
        }
        let reply = match reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => error_response("daemon is shutting down"),
        };
        write_line_value(&mut writer, &reply)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::fixture::hop_path;
    use crate::protocol::{Delta, Request};
    use timepiece_core::check::CheckOptions;

    fn options() -> CheckOptions {
        CheckOptions { threads: Some(2), session_cap: Some(4), ..Default::default() }
    }

    #[test]
    fn serve_answers_status_delta_and_shutdown() {
        let state = DaemonState::new("hop n=5", hop_path(5, None), options()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, state));

        let mut client = Client::connect(addr).unwrap();
        let status = client.send(&Request::Status).unwrap();
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("nodes").and_then(Json::as_f64), Some(5.0));

        // dropping the v3 -- v4 link re-checks a strict subset of nodes;
        // v4's only route came through v3, so its exact interface now fails
        let down = Request::Delta(Delta::LinkDown { u: "v3".into(), v: "v4".into() });
        let reply = client.send(&down).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let cone = reply.get("cone_size").and_then(Json::as_f64).unwrap() as usize;
        assert!(cone > 0 && cone < 5, "strict subset, got {cone}");
        assert_eq!(reply.get("verified").and_then(Json::as_bool), Some(false));

        // restoring the link restores the verdict
        let up = Request::Delta(Delta::LinkUp { u: "v3".into(), v: "v4".into() });
        let reply = client.send(&up).unwrap();
        assert_eq!(reply.get("verified").and_then(Json::as_bool), Some(true));

        let reply = client.send(&Request::Shutdown).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_frames_get_an_error_and_close() {
        use std::io::{BufRead, Write};
        let state = DaemonState::new("hop n=3", hop_path(3, None), options()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, state));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{this is not json\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim_end()).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));

        // unknown verbs answer an error but keep the connection usable
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(&Json::obj([("verb", Json::str("dance"))])).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        let reply = client.send(&Request::Shutdown).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn the_sigterm_watcher_raises_the_drain() {
        // exercises only the watcher (with its own drain signal), so the
        // process-global flag cannot disturb the other servers under test
        let drain = DrainSignal::new();
        spawn_sigterm_watcher(drain.clone());
        assert!(!drain.is_draining());
        trigger_sigterm();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !drain.is_draining() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(drain.is_draining(), "the watcher must relay SIGTERM");
        SIGTERM.store(false, Ordering::SeqCst); // reset for any later watcher
    }
}
