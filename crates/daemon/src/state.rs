//! The daemon's warm verification state and request handler.
//!
//! A [`DaemonState`] is everything `timepieced` keeps hot between requests:
//! the compiled [`Network`] (canonical arena terms), the interface and
//! property annotations, a persistent [`CheckerPool`] whose workers hold
//! solver sessions keyed by encoder signature, the last
//! [`Fingerprints`] snapshot, and a [`VerdictCache`] with the last verdict
//! per node. Handling a `delta` request means: apply the edit to get a new
//! network/interface, re-fingerprint, diff into the dirty cone, re-check
//! *only* the cone through the still-warm pool, and fold the partial report
//! back into the cache.
//!
//! The handler is transport-agnostic — it maps a parsed
//! [`Request`] to a response [`Json`] — so the TCP server, the soak harness
//! and the equivalence tests all drive the same code.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use timepiece_algebra::policy::{RouteGuard, RoutePolicy};
use timepiece_algebra::Network;
use timepiece_core::check::{CheckOptions, CheckReport};
use timepiece_core::sweep::CheckerPool;
use timepiece_core::{Fingerprints, NodeAnnotations, VerdictCache};
use timepiece_expr::Expr;
use timepiece_nets::BenchInstance;
use timepiece_sched::CancelToken;
use timepiece_topology::NodeId;
use timepiece_trace::{Json, Phase};

use crate::protocol::{error_response, Delta, PolicySpec, Request};

/// The cross-thread drain signal: raising it cancels whatever check is in
/// flight *and* pre-cancels every later one, so a daemon told to shut down
/// (by a `shutdown` request or a signal handler) winds down promptly
/// instead of finishing a long request queue.
///
/// Hooks on a [`CancelToken`] accumulate per registration, so a long-lived
/// service must not reuse one token across requests — this signal hands the
/// state a *fresh* token per check and remembers it for cancellation.
#[derive(Debug, Clone, Default)]
pub struct DrainSignal {
    inner: Arc<DrainInner>,
}

#[derive(Debug, Default)]
struct DrainInner {
    draining: AtomicBool,
    current: Mutex<Option<CancelToken>>,
}

impl DrainSignal {
    /// A fresh, unraised signal.
    pub fn new() -> DrainSignal {
        DrainSignal::default()
    }

    /// Raises the signal: the in-flight check (if any) is cancelled — its
    /// solver interrupts fire through the token's hooks — and every check
    /// started afterwards begins pre-cancelled.
    pub fn raise(&self) {
        self.inner.draining.store(true, Ordering::Release);
        if let Some(token) = self.inner.current.lock().expect("drain lock").as_ref() {
            token.cancel();
        }
    }

    /// Has the signal been raised?
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// A fresh token for one check, pre-cancelled when already draining.
    fn begin(&self) -> CancelToken {
        let token = CancelToken::new();
        if self.is_draining() {
            token.cancel();
        }
        *self.inner.current.lock().expect("drain lock") = Some(token.clone());
        token
    }

    /// Forgets the current check's token.
    fn end(&self) {
        *self.inner.current.lock().expect("drain lock") = None;
    }
}

/// What [`DaemonState::handle`] produced: the reply frame, and whether the
/// request asked the daemon to stop serving.
#[derive(Debug, Clone)]
pub struct Handled {
    /// The response frame to write back to the client.
    pub reply: Json,
    /// Did the request ask for shutdown?
    pub shutdown: bool,
}

/// A network edit applied but not yet committed: the delta handler builds
/// this, re-checks the dirty cone, and only then swaps it into the state.
struct Applied {
    net: Network,
    interface: NodeAnnotations,
    downed: HashMap<(NodeId, NodeId), Option<RoutePolicy>>,
}

/// The warm verification state of one `timepieced` instance. See the
/// module docs.
#[derive(Debug)]
pub struct DaemonState {
    label: String,
    net: Network,
    interface: NodeAnnotations,
    property: NodeAnnotations,
    delay: u64,
    pool: CheckerPool,
    fingerprints: Fingerprints,
    verdicts: VerdictCache,
    /// Downed links: each installed drop-policy direction, mapped to the
    /// edge's pre-`link_down` policy override so `link_up` can restore it.
    downed: HashMap<(NodeId, NodeId), Option<RoutePolicy>>,
    drain: DrainSignal,
    requests: u64,
    deltas: u64,
}

impl DaemonState {
    /// Compiles the instance, spawns the persistent checker pool, and runs
    /// the initial full check so the first client request already hits warm
    /// sessions and a populated verdict cache.
    ///
    /// # Errors
    ///
    /// Any [`timepiece_core::CoreError`] of the initial check.
    pub fn new(
        label: impl Into<String>,
        instance: BenchInstance,
        options: CheckOptions,
    ) -> Result<DaemonState, timepiece_core::CoreError> {
        let delay = options.delay;
        let mut pool = CheckerPool::with_default_parallelism(options);
        let BenchInstance { network: net, interface, property } = instance;
        let fingerprints = Fingerprints::compute(&net, &interface, &property, delay);
        let report = pool.check(&net, &interface, &property)?;
        let mut verdicts = VerdictCache::new();
        verdicts.absorb(&report);
        Ok(DaemonState {
            label: label.into(),
            net,
            interface,
            property,
            delay,
            pool,
            fingerprints,
            verdicts,
            downed: HashMap::new(),
            drain: DrainSignal::new(),
            requests: 0,
            deltas: 0,
        })
    }

    /// The drain signal shared with the serving threads: raise it to cancel
    /// the in-flight check and pre-cancel later ones.
    pub fn drain(&self) -> DrainSignal {
        self.drain.clone()
    }

    /// The instance label (e.g. `"SpReach k=8"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The current network, with every committed delta applied — what a
    /// from-scratch reference check must agree with.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The current interface annotations (witness-time deltas included).
    pub fn interface(&self) -> &NodeAnnotations {
        &self.interface
    }

    /// The property annotations (deltas never change these).
    pub fn property(&self) -> &NodeAnnotations {
        &self.property
    }

    /// The cached per-node verdicts.
    pub fn verdicts(&self) -> &VerdictCache {
        &self.verdicts
    }

    /// How many nodes the instance has.
    pub fn nodes(&self) -> usize {
        self.net.topology().node_count()
    }

    /// Does every node have a cached verified verdict?
    pub fn all_verified(&self) -> bool {
        self.verdicts.len() == self.nodes() && self.verdicts.all_verified()
    }

    /// Handles one request, updating the state. Each call is traced as one
    /// [`Phase::Request`] span and counted in the `daemon.requests` metric;
    /// deltas additionally record their cone size and latency.
    pub fn handle(&mut self, request: &Request) -> Handled {
        let verb = match request {
            Request::Check => "check",
            Request::Delta(_) => "delta",
            Request::Status => "status",
            Request::Profile => "profile",
            Request::Shutdown => "shutdown",
        };
        let _span = timepiece_trace::span(Phase::Request, verb);
        timepiece_trace::counter("daemon.requests").inc();
        self.requests += 1;
        let mut shutdown = false;
        let reply = match request {
            Request::Check => self.handle_check(),
            Request::Delta(delta) => self.handle_delta(delta),
            Request::Status => self.handle_status(),
            Request::Profile => Json::obj([
                ("verb", Json::str("profile")),
                ("ok", Json::Bool(true)),
                ("metrics", timepiece_trace::metrics_json()),
            ]),
            Request::Shutdown => {
                shutdown = true;
                Json::obj([("verb", Json::str("shutdown")), ("ok", Json::Bool(true))])
            }
        };
        Handled { reply, shutdown }
    }

    /// `check`: re-verify every node through the warm pool.
    fn handle_check(&mut self) -> Json {
        let start = Instant::now();
        let cone: Vec<NodeId> = self.net.topology().nodes().collect();
        let token = self.drain.begin();
        let result =
            self.pool.check_nodes(&self.net, &self.interface, &self.property, &cone, &token);
        self.drain.end();
        match result {
            Ok(report) => {
                self.verdicts.invalidate(&cone);
                self.verdicts.absorb(&report);
                self.report_response("check", &cone, &report, start)
            }
            Err(e) => error_response(format!("check failed: {e}")),
        }
    }

    /// `delta`: apply the edit, diff fingerprints into the dirty cone,
    /// re-check only the cone, commit.
    fn handle_delta(&mut self, delta: &Delta) -> Json {
        let start = Instant::now();
        let applied = match self.apply(delta) {
            Ok(applied) => applied,
            Err(message) => return error_response(message),
        };
        let after =
            Fingerprints::compute(&applied.net, &applied.interface, &self.property, self.delay);
        let cone = self.fingerprints.dirty_cone(&after);
        let token = self.drain.begin();
        let result =
            self.pool.check_nodes(&applied.net, &applied.interface, &self.property, &cone, &token);
        self.drain.end();
        let report = match result {
            Ok(report) => report,
            Err(e) => return error_response(format!("re-check failed: {e}")),
        };
        // commit: the edited instance is now the daemon's instance; cone
        // nodes the (possibly cancelled) report did not reach stay
        // invalidated rather than serving a stale verdict
        self.net = applied.net;
        self.interface = applied.interface;
        self.downed = applied.downed;
        self.fingerprints = after;
        self.verdicts.invalidate(&cone);
        self.verdicts.absorb(&report);
        self.deltas += 1;
        timepiece_trace::counter("daemon.deltas").inc();
        timepiece_trace::histogram("daemon.cone_nodes").record(cone.len() as u64);
        timepiece_trace::histogram("daemon.delta_ns").record_duration(start.elapsed());
        self.report_response("delta", &cone, &report, start)
    }

    /// `status`: the instance and cache summary.
    fn handle_status(&self) -> Json {
        let g = self.net.topology();
        let failed: Vec<Json> =
            self.verdicts.failed_nodes().iter().map(|v| Json::str(g.name(*v))).collect();
        Json::obj([
            ("verb", Json::str("status")),
            ("ok", Json::Bool(true)),
            ("label", Json::str(self.label.clone())),
            ("nodes", Json::from(self.nodes())),
            ("workers", Json::from(self.pool.workers())),
            ("requests", Json::from(self.requests as usize)),
            ("deltas", Json::from(self.deltas as usize)),
            ("downed_edges", Json::from(self.downed.len())),
            ("verified", Json::Bool(self.all_verified())),
            ("cached_verdicts", Json::from(self.verdicts.len())),
            ("failed", Json::Arr(failed)),
        ])
    }

    /// The common `check`/`delta` response: per-node verdicts plus cone and
    /// cache-hit statistics.
    fn report_response(
        &self,
        verb: &str,
        cone: &[NodeId],
        report: &CheckReport,
        start: Instant,
    ) -> Json {
        let g = self.net.topology();
        let nodes = self.nodes();
        let cone_names: Vec<Json> = cone.iter().map(|v| Json::str(g.name(*v))).collect();
        let verdicts: Vec<(String, Json)> = self
            .verdicts
            .iter()
            .map(|(v, verdict)| {
                let word = if verdict.is_verified() { "verified" } else { "failed" };
                (g.name(v).to_owned(), Json::str(word))
            })
            .collect();
        let failed: Vec<Json> =
            self.verdicts.failed_nodes().iter().map(|v| Json::str(g.name(*v))).collect();
        let mut pairs = vec![
            ("verb".to_owned(), Json::str(verb)),
            ("ok".to_owned(), Json::Bool(true)),
            ("verified".to_owned(), Json::Bool(self.all_verified())),
            ("nodes".to_owned(), Json::from(nodes)),
            ("cone".to_owned(), Json::Arr(cone_names)),
            ("cone_size".to_owned(), Json::from(cone.len())),
            ("cached".to_owned(), Json::from(nodes.saturating_sub(cone.len()))),
            ("checked".to_owned(), Json::from(report.node_durations().len())),
            ("failed".to_owned(), Json::Arr(failed)),
            ("verdicts".to_owned(), Json::Obj(verdicts)),
            ("wall_ms".to_owned(), Json::Num(start.elapsed().as_secs_f64() * 1e3)),
        ];
        if let Some(terms) = report.term_cache() {
            pairs.push(("term_hits".to_owned(), Json::from(terms.hits as usize)));
            pairs.push(("term_misses".to_owned(), Json::from(terms.misses as usize)));
        }
        Json::Obj(pairs)
    }

    /// Resolves a node name against the topology.
    fn node(&self, name: &str) -> Result<NodeId, String> {
        self.net.topology().node_by_name(name).ok_or_else(|| format!("no node named {name:?}"))
    }

    /// Applies one delta to a *copy* of the instance; the caller commits it
    /// after the cone re-check.
    fn apply(&self, delta: &Delta) -> Result<Applied, String> {
        match delta {
            Delta::LinkDown { u, v } => self.apply_link_down(u, v),
            Delta::LinkUp { u, v } => self.apply_link_up(u, v),
            Delta::EdgePolicy { u, v, policy } => self.apply_edge_policy(u, v, policy),
            Delta::WitnessTime { node, tau } => self.apply_witness_time(node, *tau),
            Delta::FailureBudget { budget } => {
                let net = self
                    .net
                    .with_failure_budget(*budget)
                    .map_err(|e| format!("failure_budget: {e}"))?;
                Ok(Applied { net, interface: self.interface.clone(), downed: self.downed.clone() })
            }
        }
    }

    /// Installs an always-drop policy on every existing direction of the
    /// link, remembering each direction's previous policy override.
    fn apply_link_down(&self, u: &str, v: &str) -> Result<Applied, String> {
        let (u, v) = (self.node(u)?, self.node(v)?);
        let g = self.net.topology();
        let directions: Vec<(NodeId, NodeId)> =
            [(u, v), (v, u)].into_iter().filter(|(a, b)| g.succs(*a).contains(b)).collect();
        if directions.is_empty() {
            return Err(format!("no link between {:?} and {:?}", g.name(u), g.name(v)));
        }
        if directions.iter().any(|edge| self.downed.contains_key(edge)) {
            return Err(format!("link {:?} -- {:?} is already down", g.name(u), g.name(v)));
        }
        let policies = self.net.policies().ok_or("the network has no policy IR")?;
        let mut net = self.net.clone();
        let mut downed = self.downed.clone();
        for edge in directions {
            downed.insert(edge, policies.edge_policies.get(&edge).cloned());
            net = net
                .set_edge_policy(edge, Some(RoutePolicy::new().drop_if(RouteGuard::True)))
                .map_err(|e| format!("link_down: {e}"))?;
        }
        Ok(Applied { net, interface: self.interface.clone(), downed })
    }

    /// Restores the remembered pre-`link_down` policies of the link.
    fn apply_link_up(&self, u: &str, v: &str) -> Result<Applied, String> {
        let (u, v) = (self.node(u)?, self.node(v)?);
        let g = self.net.topology();
        let directions: Vec<(NodeId, NodeId)> =
            [(u, v), (v, u)].into_iter().filter(|edge| self.downed.contains_key(edge)).collect();
        if directions.is_empty() {
            return Err(format!("link {:?} -- {:?} is not down", g.name(u), g.name(v)));
        }
        let mut net = self.net.clone();
        let mut downed = self.downed.clone();
        for edge in directions {
            let remembered = downed.remove(&edge).expect("direction filtered on membership");
            net = net.set_edge_policy(edge, remembered).map_err(|e| format!("link_up: {e}"))?;
        }
        Ok(Applied { net, interface: self.interface.clone(), downed })
    }

    /// Replaces one directed edge's policy override.
    fn apply_edge_policy(&self, u: &str, v: &str, spec: &PolicySpec) -> Result<Applied, String> {
        let edge = (self.node(u)?, self.node(v)?);
        if self.downed.contains_key(&edge) {
            return Err(format!("edge {u:?} -> {v:?} is down; bring the link up first"));
        }
        let policy = match spec {
            PolicySpec::Drop => Some(RoutePolicy::new().drop_if(RouteGuard::True)),
            PolicySpec::Default => None,
            PolicySpec::Increment(field) => {
                let policies = self.net.policies().ok_or("the network has no policy IR")?;
                let known = policies.schema.record_def().fields();
                if !known.iter().any(|(name, _)| name == field) {
                    let names: Vec<&str> = known.iter().map(|(name, _)| name.as_str()).collect();
                    return Err(format!("no route field {field:?}; the schema has {names:?}"));
                }
                Some(RoutePolicy::new().increment(field.clone()))
            }
        };
        let net =
            self.net.set_edge_policy(edge, policy).map_err(|e| format!("edge_policy: {e}"))?;
        Ok(Applied { net, interface: self.interface.clone(), downed: self.downed.clone() })
    }

    /// Rewrites the outermost witness time of one node's interface.
    fn apply_witness_time(&self, node: &str, tau: i64) -> Result<Applied, String> {
        let v = self.node(node)?;
        let edited = self
            .interface
            .get(v)
            .with_witness(&Expr::int(tau))
            .ok_or_else(|| format!("the interface of {node:?} has no witness time"))?;
        let mut interface = self.interface.clone();
        interface.set(v, edited);
        Ok(Applied { net: self.net.clone(), interface, downed: self.downed.clone() })
    }
}
