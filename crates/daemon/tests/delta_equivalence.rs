//! The daemon's incremental verdicts must equal a from-scratch check.
//!
//! Property: after *any* sequence of deltas — link down/up, edge-policy
//! edits (including sabotage drops), witness-time changes, failure-budget
//! changes, some of them deliberately invalid — the daemon's per-node
//! verdict map equals what a fresh [`ModularChecker`] says about the
//! daemon's current instance. That is the soundness claim of dirty-cone
//! re-checking: nodes outside the cone may keep cached verdicts *because*
//! their conditions are structurally unchanged.

use proptest::prelude::*;
use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_daemon::fixture::hop_path;
use timepiece_daemon::{DaemonState, Delta, PolicySpec, Request};
use timepiece_topology::NodeId;

fn options() -> CheckOptions {
    CheckOptions { threads: Some(2), session_cap: Some(8), ..Default::default() }
}

/// Decodes one `(kind, a, b)` opcode into a delta against an `n`-node hop
/// path. Some decodes are deliberately invalid (unknown edges, `v0`'s
/// witness) — the daemon must reject them *without* changing state.
fn decode(n: usize, kind: u8, a: u64, b: u64) -> Delta {
    let edge = |i: u64| {
        let i = (i as usize) % (n - 1);
        (format!("v{i}"), format!("v{}", i + 1))
    };
    match kind {
        0 => {
            let (u, v) = edge(a);
            Delta::LinkDown { u, v }
        }
        1 => {
            let (u, v) = edge(a);
            Delta::LinkUp { u, v }
        }
        2 => {
            let (u, v) = edge(a);
            // both directions of the path edge, all three policy kinds
            let (u, v) = if b.is_multiple_of(2) { (u, v) } else { (v, u) };
            let policy = match b % 3 {
                0 => PolicySpec::Drop,
                1 => PolicySpec::Default,
                _ => PolicySpec::Increment("len".into()),
            };
            Delta::EdgePolicy { u, v, policy }
        }
        3 => Delta::WitnessTime {
            // node v0 has no witness time: that decode must be rejected
            node: format!("v{}", a as usize % n),
            tau: (b % 8) as i64,
        },
        _ => Delta::FailureBudget { budget: a % 3 },
    }
}

/// The reference: a fresh checker run on the daemon's current instance.
fn from_scratch_failed(state: &DaemonState) -> Vec<NodeId> {
    let report = ModularChecker::new(options())
        .check(state.net(), state.interface(), state.property())
        .expect("reference check");
    let mut failed: Vec<NodeId> = report.failures().iter().map(|f| f.node).collect();
    failed.sort_unstable();
    failed.dedup();
    failed
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0x5ced_0008 })]

    #[test]
    fn incremental_verdicts_match_from_scratch(
        ops in proptest::collection::vec((0u8..5, 0u64..32, 0u64..32), 1..6),
    ) {
        let n = 5;
        // a failure budget makes every delta kind meaningful (and makes the
        // exact interface fail at some nodes, so both verdicts occur)
        let mut state =
            DaemonState::new("hop equivalence", hop_path(n, Some(1)), options()).unwrap();
        for (kind, a, b) in ops {
            let delta = decode(n, kind, a, b);
            let reply = state.handle(&Request::Delta(delta.clone())).reply;
            let ok = reply.get("ok").and_then(timepiece_trace::Json::as_bool);
            prop_assert!(ok.is_some(), "reply must carry ok: {reply}");
            prop_assert_eq!(
                state.verdicts().len(), n,
                "no cancellation ran, so every node must keep a verdict"
            );
            let cached_failed = state.verdicts().failed_nodes();
            let reference_failed = from_scratch_failed(&state);
            prop_assert_eq!(
                cached_failed, reference_failed,
                "after {:?} (ok={:?}) the cache diverged from a fresh check", delta, ok
            );
        }
    }
}
