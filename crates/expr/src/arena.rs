//! The global hash-consing arena behind every [`Expr`].
//!
//! Every term in the process is interned here: construction computes a
//! structural hash, probes the arena for an existing node with the same
//! shallow structure (children compare by identity — they are already
//! canonical), and either reuses the canonical [`Arc`] or allocates a new
//! node with a fresh, stable [`InternId`]. Two consequences the rest of the
//! workspace builds on:
//!
//! * **equality is O(1)** — structurally equal terms are pointer-equal, so
//!   `Expr::same_node` (and `==`) is a pointer comparison, and the smart
//!   constructors' identity folds (`x.eq(x)`, `ite` with identical branches)
//!   fire for *any* structurally equal operands, however they were built;
//! * **identities are stable** — an [`InternId`] is never reused for a
//!   different structure, so backend caches keyed by id (the SMT encoder's
//!   compiled-term cache in particular) stay valid across rows of a sweep,
//!   across `SolverSession`s, and for the life of the process.
//!
//! The probe follows the double-checked `get_or_init` shape of a concurrent
//! map: an optimistic read-lock probe serves the hot path (terms are built
//! far more often than new structures appear), and a miss re-probes under
//! the write lock before inserting, so two threads racing to intern the same
//! structure converge on one canonical node.
//!
//! The arena deliberately never evicts: canonical nodes must outlive every
//! id-keyed cache entry, and eviction would reintroduce the ABA hazard that
//! address-based identities had. [`stats`] reports the retained footprint so
//! callers can see what that policy costs.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use timepiece_trace::Counter;

use crate::expr::{Expr, ExprKind};

/// The arena's mirrors in the shared metrics registry, so `repro profile`
/// and metrics snapshots see intern traffic next to every other subsystem.
/// Handles are cached: the steady-state cost per intern is two relaxed
/// atomic adds (plus two clock reads when tracing is armed — interning is
/// far too hot for per-call spans, so its time is accumulated here instead).
struct ArenaMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    intern_ns: Arc<Counter>,
}

fn arena_metrics() -> &'static ArenaMetrics {
    static M: OnceLock<ArenaMetrics> = OnceLock::new();
    M.get_or_init(|| ArenaMetrics {
        hits: timepiece_trace::counter("expr.arena.intern_hits"),
        misses: timepiece_trace::counter("expr.arena.intern_misses"),
        intern_ns: timepiece_trace::counter("expr.arena.intern_ns"),
    })
}

/// The stable identity of an interned term.
///
/// Ids are assigned in interning order and never reused; structurally equal
/// terms have the same id and distinct structures have distinct ids. They
/// are meaningful within one process only — do not persist them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InternId(u64);

impl InternId {
    /// The raw index, for diagnostics.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One canonical node: the structure plus its precomputed identity and hash.
#[derive(Debug)]
pub(crate) struct ExprNode {
    pub(crate) kind: ExprKind,
    pub(crate) id: InternId,
    pub(crate) hash: u64,
}

/// Counters describing the arena's contents and traffic.
///
/// Snapshots are monotone (the arena never evicts), so per-phase costs fall
/// out of [`ArenaStats::delta_since`] on two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct terms currently interned.
    pub terms: u64,
    /// Constructions served by an existing canonical node.
    pub hits: u64,
    /// Constructions that interned a new node.
    pub misses: u64,
    /// Approximate retained bytes (nodes plus their owned heap data).
    pub bytes: u64,
}

impl ArenaStats {
    /// Total constructions observed (hits + misses).
    pub fn constructed(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of constructions served by an existing node, in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.constructed();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Constructions per distinct term: how many times the average structure
    /// was (re)built. `1.0` means no sharing; higher is more dedup.
    pub fn dedup_ratio(&self) -> f64 {
        self.constructed() as f64 / self.terms.max(1) as f64
    }

    /// The traffic between an `earlier` snapshot and this one.
    pub fn delta_since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            terms: self.terms.saturating_sub(earlier.terms),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

struct Arena {
    /// Structural hash → every distinct node with that hash. Buckets hold
    /// the (rare) collisions; membership within a bucket is decided by
    /// shallow structural equality.
    nodes: RwLock<BTreeMap<u64, Vec<Arc<ExprNode>>>>,
    next_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

static ARENA: Arena = Arena {
    nodes: RwLock::new(BTreeMap::new()),
    next_id: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
};

/// A snapshot of the global arena's counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        terms: ARENA.next_id.load(Ordering::Relaxed),
        hits: ARENA.hits.load(Ordering::Relaxed),
        misses: ARENA.misses.load(Ordering::Relaxed),
        bytes: ARENA.bytes.load(Ordering::Relaxed),
    }
}

/// Interns `kind`, returning the canonical term for its structure.
///
/// `kind`'s children are already canonical (every `Expr` in existence came
/// out of this function), so the probe hashes and compares one level deep
/// only — child comparisons are pointer comparisons.
pub(crate) fn intern(kind: ExprKind) -> Expr {
    let timed = timepiece_trace::enabled().then(timepiece_trace::now_ns);
    let expr = intern_probe(kind);
    if let Some(start) = timed {
        arena_metrics().intern_ns.add(timepiece_trace::now_ns().saturating_sub(start));
    }
    expr
}

fn intern_probe(kind: ExprKind) -> Expr {
    let hash = shallow_hash(&kind);
    // optimistic read-lock probe: the common case is an already-interned
    // structure, and readers don't serialize
    {
        let nodes = ARENA.nodes.read().expect("arena lock poisoned");
        if let Some(node) = find(&nodes, hash, &kind) {
            ARENA.hits.fetch_add(1, Ordering::Relaxed);
            arena_metrics().hits.inc();
            return Expr(node);
        }
    }
    // miss: take the write lock and re-probe — another thread may have
    // interned the same structure between the two acquisitions
    let mut nodes = ARENA.nodes.write().expect("arena lock poisoned");
    if let Some(node) = find(&nodes, hash, &kind) {
        ARENA.hits.fetch_add(1, Ordering::Relaxed);
        arena_metrics().hits.inc();
        return Expr(node);
    }
    ARENA.misses.fetch_add(1, Ordering::Relaxed);
    arena_metrics().misses.inc();
    ARENA.bytes.fetch_add(approx_bytes(&kind), Ordering::Relaxed);
    let id = InternId(ARENA.next_id.fetch_add(1, Ordering::Relaxed));
    let node = Arc::new(ExprNode { kind, id, hash });
    nodes.entry(hash).or_default().push(Arc::clone(&node));
    Expr(node)
}

fn find(
    nodes: &BTreeMap<u64, Vec<Arc<ExprNode>>>,
    hash: u64,
    kind: &ExprKind,
) -> Option<Arc<ExprNode>> {
    nodes.get(&hash)?.iter().find(|n| n.kind == *kind).map(Arc::clone)
}

/// Hashes one level of structure: the node's own data plus its children's
/// *stored* hashes. Deterministic within a build (fixed-key SipHash), which
/// is all the id-keyed caches need — ids never cross process boundaries.
fn shallow_hash(kind: &ExprKind) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    kind.hash(&mut h);
    h.finish()
}

/// A rough per-node footprint: the node itself plus the heap its fields own.
/// Estimates only — good enough to watch growth, not an allocator audit.
fn approx_bytes(kind: &ExprKind) -> u64 {
    let owned = match kind {
        ExprKind::Var(name, _) => name.len(),
        ExprKind::Const(_) | ExprKind::None(_) => 0,
        ExprKind::And(xs) | ExprKind::Or(xs) | ExprKind::MkRecord(_, xs) => {
            xs.len() * std::mem::size_of::<Expr>()
        }
        ExprKind::GetField(_, s)
        | ExprKind::SetContains(_, s)
        | ExprKind::SetAdd(_, s)
        | ExprKind::SetRemove(_, s) => s.len(),
        ExprKind::WithField(_, s, _) => s.len(),
        _ => 0,
    };
    (std::mem::size_of::<ExprNode>() + owned) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn structurally_equal_terms_intern_once() {
        let a = Expr::var("arena-test-x", Type::Int).add(Expr::int(1));
        let b = Expr::var("arena-test-x", Type::Int).add(Expr::int(1));
        assert_eq!(a.node_id(), b.node_id());
        assert!(a.same_node(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let a = Expr::var("arena-test-y", Type::Int);
        let b = Expr::var("arena-test-y", Type::Bool);
        assert_ne!(a.node_id(), b.node_id());
        assert_ne!(a, b);
    }

    #[test]
    fn stats_count_traffic() {
        let before = stats();
        // a fresh structure: one miss, then a hit on reconstruction
        let salt = "arena-stats-probe";
        let _a = Expr::var(salt, Type::Int).add(Expr::var(salt, Type::Int));
        let after_first = stats();
        assert!(after_first.misses > before.misses);
        assert!(after_first.bytes > before.bytes);
        let _b = Expr::var(salt, Type::Int).add(Expr::var(salt, Type::Int));
        let after_second = stats();
        let delta = after_second.delta_since(&after_first);
        assert_eq!(delta.misses, 0, "rebuild must be all hits");
        assert!(delta.hits >= 2);
        assert!(after_second.hit_rate() > 0.0);
        assert!(after_second.dedup_ratio() >= 1.0);
    }

    #[test]
    fn intern_traffic_is_mirrored_into_the_metrics_registry() {
        use timepiece_trace::metrics::counter_value;
        let (misses_before, hits_before) =
            (counter_value("expr.arena.intern_misses"), counter_value("expr.arena.intern_hits"));
        let salt = "arena-registry-probe";
        let _a = Expr::var(salt, Type::Int);
        let _b = Expr::var(salt, Type::Int);
        assert!(counter_value("expr.arena.intern_misses") > misses_before);
        assert!(counter_value("expr.arena.intern_hits") > hits_before);
    }

    #[test]
    fn intern_id_displays_with_index() {
        let e = Expr::bool(true);
        assert_eq!(format!("{}", e.node_id()), format!("#{}", e.node_id().index()));
    }
}
