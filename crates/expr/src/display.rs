//! S-expression pretty printing for terms, used in counterexample reports and
//! debugging output.

use std::fmt;

use crate::expr::{Expr, ExprKind};

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Var(name, _) => write!(f, "{name}"),
            ExprKind::Const(v) => write!(f, "{v}"),
            ExprKind::Not(a) => write!(f, "(not {a})"),
            ExprKind::And(xs) => write_list(f, "and", xs),
            ExprKind::Or(xs) => write_list(f, "or", xs),
            ExprKind::Implies(a, b) => write!(f, "(=> {a} {b})"),
            ExprKind::Ite(c, t, e) => write!(f, "(ite {c} {t} {e})"),
            ExprKind::Eq(a, b) => write!(f, "(= {a} {b})"),
            ExprKind::Lt(a, b) => write!(f, "(< {a} {b})"),
            ExprKind::Le(a, b) => write!(f, "(<= {a} {b})"),
            ExprKind::Add(a, b) => write!(f, "(+ {a} {b})"),
            ExprKind::Sub(a, b) => write!(f, "(- {a} {b})"),
            ExprKind::None(_) => write!(f, "∞"),
            ExprKind::Some(a) => write!(f, "(some {a})"),
            ExprKind::IsSome(a) => write!(f, "(is-some {a})"),
            ExprKind::GetSome(a) => write!(f, "(get-some {a})"),
            ExprKind::MkRecord(def, fields) => {
                write!(f, "({}", def.name())?;
                for ((name, _), v) in def.fields().iter().zip(fields) {
                    write!(f, " :{name} {v}")?;
                }
                write!(f, ")")
            }
            ExprKind::GetField(a, name) => write!(f, "(field {name} {a})"),
            ExprKind::WithField(a, name, v) => write!(f, "(with {name} {v} {a})"),
            ExprKind::SetContains(a, tag) => write!(f, "(member {tag} {a})"),
            ExprKind::SetAdd(a, tag) => write!(f, "(add {tag} {a})"),
            ExprKind::SetRemove(a, tag) => write!(f, "(remove {tag} {a})"),
            ExprKind::SetUnion(a, b) => write!(f, "(union {a} {b})"),
            ExprKind::SetInter(a, b) => write!(f, "(inter {a} {b})"),
        }
    }
}

fn write_list(f: &mut fmt::Formatter<'_>, op: &str, xs: &[Expr]) -> fmt::Result {
    write!(f, "({op}")?;
    for x in xs {
        write!(f, " {x}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use crate::{Expr, Type};

    #[test]
    fn renders_sexprs() {
        let x = Expr::var("x", Type::Int);
        let e = x.clone().add(Expr::int(1)).le(Expr::int(4));
        assert_eq!(e.to_string(), "(<= (+ x 1) 4)");
        let o = Expr::var("o", Type::option(Type::Int));
        assert_eq!(o.clone().is_some().to_string(), "(is-some o)");
        assert_eq!(Expr::none(Type::Int).to_string(), "∞");
    }

    #[test]
    fn renders_records_and_sets() {
        let def = std::sync::Arc::new(crate::RecordDef::new("R", [("a", Type::Int)]));
        let r = Expr::record(&def, vec![Expr::int(2)]);
        assert_eq!(r.to_string(), "(R :a 2)");
        let s = Expr::var("s", Type::set("T", ["x"]));
        assert_eq!(s.clone().add_tag("x").to_string(), "(add x s)");
        assert_eq!(s.contains("x").to_string(), "(member x s)");
    }
}
