//! Error types for type checking and evaluation.

use std::fmt;

use crate::types::Type;

/// An error found while type checking an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two subterms were expected to share a type but do not.
    Mismatch {
        /// What was being checked.
        context: &'static str,
        /// The expected type.
        expected: Type,
        /// The type actually found.
        found: Type,
    },
    /// An operand had a type the operator does not support.
    Unsupported {
        /// What was being checked.
        context: &'static str,
        /// The offending type.
        found: Type,
    },
    /// A record has no field with the given name.
    NoSuchField {
        /// The record type's name.
        record: String,
        /// The missing field.
        field: String,
    },
    /// A set universe has no tag with the given name.
    NoSuchTag {
        /// The set type's name.
        set: String,
        /// The missing tag.
        tag: String,
    },
    /// The same variable name was used at two different types.
    InconsistentVar {
        /// The variable name.
        name: String,
        /// The type at first occurrence.
        first: Type,
        /// The conflicting type.
        second: Type,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch { context, expected, found } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            TypeError::Unsupported { context, found } => {
                write!(f, "unsupported operand type in {context}: {found}")
            }
            TypeError::NoSuchField { record, field } => {
                write!(f, "record {record} has no field {field:?}")
            }
            TypeError::NoSuchTag { set, tag } => {
                write!(f, "set {set} has no tag {tag:?}")
            }
            TypeError::InconsistentVar { name, first, second } => {
                write!(f, "variable {name:?} used at both {first} and {second}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// An error raised while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the environment.
    UnboundVar(String),
    /// The term was ill-typed (evaluation found a shape it cannot handle).
    IllTyped(TypeError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(name) => write!(f, "unbound variable {name:?}"),
            EvalError::IllTyped(e) => write!(f, "ill-typed term: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::IllTyped(e) => Some(e),
            EvalError::UnboundVar(_) => None,
        }
    }
}

impl From<TypeError> for EvalError {
    fn from(e: TypeError) -> Self {
        EvalError::IllTyped(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TypeError::Mismatch { context: "ite", expected: Type::Bool, found: Type::Int };
        assert_eq!(e.to_string(), "type mismatch in ite: expected bool, found int");
        let e = EvalError::UnboundVar("x".into());
        assert_eq!(e.to_string(), "unbound variable \"x\"");
    }

    #[test]
    fn eval_error_sources_type_error() {
        use std::error::Error;
        let e = EvalError::from(TypeError::Unsupported { context: "add", found: Type::Bool });
        assert!(e.source().is_some());
    }
}
