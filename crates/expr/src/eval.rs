//! A reference interpreter for expression terms.
//!
//! The interpreter defines the *concrete* semantics of the IR; the network
//! simulator in `timepiece-sim` is built directly on it, and the SMT encoding
//! in `timepiece-smt` is differentially tested against it.

use std::collections::HashMap;

use crate::arena::InternId;
use crate::error::{EvalError, TypeError};
use crate::expr::{Expr, ExprKind};
use crate::value::{truncate, Value};

/// A variable environment mapping names to concrete values.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Binds a variable, replacing any previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) -> &mut Env {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// Iterates over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Env {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Env { bindings: iter.into_iter().collect() }
    }
}

impl Extend<(String, Value)> for Env {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.bindings.extend(iter);
    }
}

impl Expr {
    /// Evaluates this term under an environment.
    ///
    /// Shared subterms are evaluated once per call.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVar`] for free variables missing from the
    /// environment and [`EvalError::IllTyped`] for ill-typed terms.
    ///
    /// # Example
    ///
    /// ```
    /// use timepiece_expr::{Expr, Type, Value, Env};
    /// let x = Expr::var("x", Type::Int);
    /// let mut env = Env::new();
    /// env.bind("x", Value::int(41));
    /// let v = x.add(Expr::int(1)).eval(&env)?;
    /// assert_eq!(v, Value::Int(42));
    /// # Ok::<(), timepiece_expr::EvalError>(())
    /// ```
    pub fn eval(&self, env: &Env) -> Result<Value, EvalError> {
        let mut interp = Interp { env, cache: HashMap::new() };
        interp.eval(self)
    }

    /// Evaluates a closed boolean term, convenience for assertions in tests.
    ///
    /// # Errors
    ///
    /// As [`Expr::eval`]; additionally ill-typed if the result is not boolean.
    pub fn eval_bool(&self, env: &Env) -> Result<bool, EvalError> {
        self.eval(env)?.as_bool().ok_or(EvalError::IllTyped(TypeError::Mismatch {
            context: "eval_bool",
            expected: crate::Type::Bool,
            found: crate::Type::Int,
        }))
    }
}

struct Interp<'a> {
    env: &'a Env,
    cache: HashMap<InternId, Value>,
}

fn ill(context: &'static str, found: &Value) -> EvalError {
    EvalError::IllTyped(TypeError::Unsupported { context, found: found.type_of() })
}

impl Interp<'_> {
    fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        if let Some(v) = self.cache.get(&e.node_id()) {
            return Ok(v.clone());
        }
        let v = self.eval_uncached(e)?;
        self.cache.insert(e.node_id(), v.clone());
        Ok(v)
    }

    fn eval_bool(&mut self, e: &Expr) -> Result<bool, EvalError> {
        let v = self.eval(e)?;
        v.as_bool().ok_or_else(|| ill("boolean operand", &v))
    }

    fn eval_uncached(&mut self, e: &Expr) -> Result<Value, EvalError> {
        match e.kind() {
            ExprKind::Var(name, _) => {
                self.env.get(name).cloned().ok_or_else(|| EvalError::UnboundVar(name.clone()))
            }
            ExprKind::Const(v) => Ok(v.clone()),
            ExprKind::Not(a) => Ok(Value::Bool(!self.eval_bool(a)?)),
            ExprKind::And(xs) => {
                for x in xs {
                    if !self.eval_bool(x)? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            ExprKind::Or(xs) => {
                for x in xs {
                    if self.eval_bool(x)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            ExprKind::Implies(a, b) => Ok(Value::Bool(!self.eval_bool(a)? || self.eval_bool(b)?)),
            ExprKind::Ite(c, t, f) => {
                if self.eval_bool(c)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            ExprKind::Eq(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                Ok(Value::Bool(values_equal(&va, &vb)))
            }
            ExprKind::Lt(a, b) => self.compare(a, b, |o| o == std::cmp::Ordering::Less),
            ExprKind::Le(a, b) => self.compare(a, b, |o| o != std::cmp::Ordering::Greater),
            ExprKind::Add(a, b) => self.arith(a, b, i128::wrapping_add, u64::wrapping_add),
            ExprKind::Sub(a, b) => self.arith(a, b, i128::wrapping_sub, u64::wrapping_sub),
            ExprKind::None(payload) => Ok(Value::none(payload.clone())),
            ExprKind::Some(a) => Ok(Value::some(self.eval(a)?)),
            ExprKind::IsSome(a) => {
                let v = self.eval(a)?;
                v.is_some_option().map(Value::Bool).ok_or_else(|| ill("is_some", &v))
            }
            ExprKind::GetSome(a) => {
                let v = self.eval(a)?;
                v.unwrap_or_default().ok_or_else(|| ill("get_some", &v))
            }
            ExprKind::MkRecord(def, fields) => {
                let vals = fields.iter().map(|f| self.eval(f)).collect::<Result<Vec<_>, _>>()?;
                Ok(Value::record(def, vals))
            }
            ExprKind::GetField(a, name) => {
                let v = self.eval(a)?;
                v.field(name).cloned().ok_or_else(|| ill("get_field", &v))
            }
            ExprKind::WithField(a, name, val) => {
                let v = self.eval(a)?;
                let new = self.eval(val)?;
                match v {
                    Value::Record { def, mut fields } => {
                        let i = def.field_index(name).ok_or(EvalError::IllTyped(
                            TypeError::NoSuchField {
                                record: def.name().to_owned(),
                                field: name.clone(),
                            },
                        ))?;
                        fields[i] = new;
                        Ok(Value::Record { def, fields })
                    }
                    other => Err(ill("with_field", &other)),
                }
            }
            ExprKind::SetContains(a, tag) => {
                let v = self.eval(a)?;
                v.contains_tag(tag).map(Value::Bool).ok_or_else(|| ill("set_contains", &v))
            }
            ExprKind::SetAdd(a, tag) => self.set_update(a, tag, |mask, bit| mask | bit),
            ExprKind::SetRemove(a, tag) => self.set_update(a, tag, |mask, bit| mask & !bit),
            ExprKind::SetUnion(a, b) => self.set_merge(a, b, |x, y| x | y),
            ExprKind::SetInter(a, b) => self.set_merge(a, b, |x, y| x & y),
        }
    }

    fn compare(
        &mut self,
        a: &Expr,
        b: &Expr,
        f: impl FnOnce(std::cmp::Ordering) -> bool,
    ) -> Result<Value, EvalError> {
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        let ord = match (&va, &vb) {
            (Value::Int(x), Value::Int(y)) => x.cmp(y),
            (Value::BitVec { bits: x, width: w1 }, Value::BitVec { bits: y, width: w2 })
                if w1 == w2 =>
            {
                x.cmp(y)
            }
            _ => return Err(ill("comparison", &va)),
        };
        Ok(Value::Bool(f(ord)))
    }

    fn arith(
        &mut self,
        a: &Expr,
        b: &Expr,
        fi: impl FnOnce(i128, i128) -> i128,
        fb: impl FnOnce(u64, u64) -> u64,
    ) -> Result<Value, EvalError> {
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        match (&va, &vb) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(fi(*x, *y))),
            (Value::BitVec { bits: x, width: w1 }, Value::BitVec { bits: y, width: w2 })
                if w1 == w2 =>
            {
                Ok(Value::BitVec { width: *w1, bits: truncate(fb(*x, *y), *w1) })
            }
            _ => Err(ill("arithmetic", &va)),
        }
    }

    fn set_update(
        &mut self,
        a: &Expr,
        tag: &str,
        f: impl FnOnce(u64, u64) -> u64,
    ) -> Result<Value, EvalError> {
        let v = self.eval(a)?;
        match v {
            Value::Set { def, mask } => {
                let i = def.tag_index(tag).ok_or(EvalError::IllTyped(TypeError::NoSuchTag {
                    set: def.name().to_owned(),
                    tag: tag.to_owned(),
                }))?;
                Ok(Value::Set { mask: f(mask, 1 << i), def })
            }
            other => Err(ill("set update", &other)),
        }
    }

    fn set_merge(
        &mut self,
        a: &Expr,
        b: &Expr,
        f: impl FnOnce(u64, u64) -> u64,
    ) -> Result<Value, EvalError> {
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        match (va, vb) {
            (Value::Set { def, mask: x }, Value::Set { def: d2, mask: y }) if def == d2 => {
                Ok(Value::Set { def, mask: f(x, y) })
            }
            (other, _) => Err(ill("set merge", &other)),
        }
    }
}

/// Structural equality between values, with option payloads ignored when both
/// sides are `None` (matching the SMT encoding).
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Option { value: va, .. }, Value::Option { value: vb, .. }) => match (va, vb) {
            (None, None) => true,
            (Some(x), Some(y)) => values_equal(x, y),
            _ => false,
        },
        (Value::Record { def: d1, fields: f1 }, Value::Record { def: d2, fields: f2 }) => {
            d1 == d2 && f1.iter().zip(f2).all(|(x, y)| values_equal(x, y))
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;
    use std::sync::Arc;

    fn empty() -> Env {
        Env::new()
    }

    #[test]
    fn bool_semantics() {
        let e = Expr::bool(true).and(Expr::bool(false)).or(Expr::bool(true));
        assert_eq!(e.eval(&empty()).unwrap(), Value::Bool(true));
        let x = Expr::var("x", Type::Bool);
        let mut env = Env::new();
        env.bind("x", Value::Bool(false));
        assert_eq!(x.clone().implies(Expr::bool(false)).eval(&env).unwrap(), Value::Bool(true));
        assert_eq!(x.not().eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_does_not_hide_unbound_vars_in_taken_branch() {
        // and([false, unbound]) short-circuits per evaluation order
        let e = Expr::and_all([Expr::var("a", Type::Bool), Expr::var("zzz", Type::Bool)]);
        let mut env = Env::new();
        env.bind("a", Value::Bool(false));
        assert_eq!(e.eval(&env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let mut env = Env::new();
        env.bind("x", Value::int(5));
        let x = Expr::var("x", Type::Int);
        assert_eq!(x.clone().add(Expr::int(3)).eval(&env).unwrap(), Value::Int(8));
        assert_eq!(x.clone().sub(Expr::int(7)).eval(&env).unwrap(), Value::Int(-2));
        assert_eq!(x.clone().lt(Expr::int(6)).eval(&env).unwrap(), Value::Bool(true));
        assert_eq!(x.clone().ge(Expr::int(5)).eval(&env).unwrap(), Value::Bool(true));
        assert_eq!(x.clone().min(Expr::int(3)).eval(&env).unwrap(), Value::Int(3));
        assert_eq!(x.max(Expr::int(3)).eval(&env).unwrap(), Value::Int(5));
    }

    #[test]
    fn bitvector_wraps() {
        let e = Expr::bv(255, 8).add(Expr::bv(1, 8));
        assert_eq!(e.eval(&empty()).unwrap(), Value::bv(0, 8));
        let e = Expr::bv(0, 8).sub(Expr::bv(1, 8));
        assert_eq!(e.eval(&empty()).unwrap(), Value::bv(255, 8));
    }

    #[test]
    fn unsigned_bv_comparison() {
        let e = Expr::bv(200, 8).gt(Expr::bv(100, 8));
        assert_eq!(e.eval(&empty()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn option_semantics_total_get_some() {
        let o = Expr::var("o", Type::option(Type::Int));
        let mut env = Env::new();
        env.bind("o", Value::none(Type::Int));
        assert_eq!(o.clone().is_some().eval(&env).unwrap(), Value::Bool(false));
        // get_some(None) = default = 0
        assert_eq!(o.clone().get_some().eval(&env).unwrap(), Value::Int(0));
        env.bind("o", Value::some(Value::int(9)));
        assert_eq!(o.clone().get_some().eval(&env).unwrap(), Value::Int(9));
        let matched = o.match_option(Expr::int(-1), |x| x.add(Expr::int(1)));
        assert_eq!(matched.eval(&env).unwrap(), Value::Int(10));
    }

    #[test]
    fn option_equality_ignores_none_payload() {
        let ty = Type::option(Type::Int);
        let a = Expr::var("a", ty.clone());
        let b = Expr::var("b", ty);
        let mut env = Env::new();
        env.bind("a", Value::none(Type::Int));
        env.bind("b", Value::none(Type::Int));
        assert_eq!(a.clone().eq(b.clone()).eval(&env).unwrap(), Value::Bool(true));
        env.bind("b", Value::some(Value::int(0)));
        assert_eq!(a.eq(b).eval(&env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn record_semantics() {
        let def = Arc::new(crate::types::RecordDef::new(
            "R",
            [("lp", Type::BitVec(32)), ("len", Type::Int)],
        ));
        let r = Expr::var("r", Type::Record(def.clone()));
        let mut env = Env::new();
        env.bind("r", Value::record(&def, vec![Value::bv(100, 32), Value::int(2)]));
        assert_eq!(r.clone().field("len").eval(&env).unwrap(), Value::Int(2));
        let bumped = r.clone().with_field("len", r.field("len").add(Expr::int(1)));
        assert_eq!(bumped.clone().field("len").eval(&env).unwrap(), Value::Int(3));
        assert_eq!(bumped.field("lp").eval(&env).unwrap(), Value::bv(100, 32));
    }

    #[test]
    fn set_semantics() {
        let ty = Type::set("Tags", ["internal", "down"]);
        let s = Expr::var("s", ty.clone());
        let def = ty.set_def().unwrap().clone();
        let mut env = Env::new();
        env.bind("s", Value::set_of(&def, ["internal"]));
        assert_eq!(s.clone().contains("internal").eval(&env).unwrap(), Value::Bool(true));
        assert_eq!(s.clone().contains("down").eval(&env).unwrap(), Value::Bool(false));
        let s2 = s.clone().add_tag("down").remove_tag("internal");
        assert_eq!(s2.clone().contains("down").eval(&env).unwrap(), Value::Bool(true));
        assert_eq!(s2.contains("internal").eval(&env).unwrap(), Value::Bool(false));
        let u = s.clone().union(s.clone().add_tag("down"));
        assert_eq!(u.contains("down").eval(&env).unwrap(), Value::Bool(true));
        let i = s.clone().intersect(s.add_tag("down"));
        assert_eq!(i.contains("internal").eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unbound_var_reported() {
        let e = Expr::var("missing", Type::Int);
        assert_eq!(e.eval(&empty()), Err(EvalError::UnboundVar("missing".into())));
    }

    #[test]
    fn ill_typed_detected_at_runtime() {
        let e = Expr::bool(true).add(Expr::bool(false));
        assert!(matches!(e.eval(&empty()), Err(EvalError::IllTyped(_))));
    }

    #[test]
    fn shared_subterm_evaluated_once_consistently() {
        let x = Expr::var("x", Type::Int);
        let shared = x.clone().add(Expr::int(1));
        let e = shared.clone().add(shared);
        let mut env = Env::new();
        env.bind("x", Value::int(10));
        assert_eq!(e.eval(&env).unwrap(), Value::Int(22));
    }

    #[test]
    fn env_collects_from_iterator() {
        let env: Env = [("a".to_owned(), Value::int(1))].into_iter().collect();
        assert_eq!(env.get("a"), Some(&Value::Int(1)));
        assert_eq!(env.iter().count(), 1);
    }
}
