//! Expression terms and their smart constructors.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::arena::{self, ExprNode, InternId};
use crate::error::TypeError;
use crate::types::{RecordDef, Type};
use crate::value::Value;

/// An expression term of the IR.
///
/// `Expr` is a cheaply clonable handle to a node in the global hash-consing
/// arena ([`crate::arena`]): structurally equal terms are the *same* node,
/// however and wherever they were built, so equality (`==`,
/// [`Expr::same_node`]) is a pointer comparison and [`Expr::node_id`] is a
/// stable [`InternId`] that backend caches key by. Shared subterms are
/// represented once, and both backends (interpreter and Z3 compiler) cache by
/// node identity so shared subterms are processed once.
///
/// Construct terms with the associated functions ([`Expr::var`],
/// [`Expr::int`], …) and combinator methods ([`Expr::and`], [`Expr::ite`], …),
/// which perform light constant folding.
///
/// # Example
///
/// ```
/// use timepiece_expr::{Expr, Type};
/// let x = Expr::var("x", Type::Int);
/// let e = x.clone().add(Expr::int(1)).le(Expr::int(10));
/// assert_eq!(e.type_of().unwrap(), Type::Bool);
/// // hash-consing: rebuilding the same structure yields the same node
/// let e2 = Expr::var("x", Type::Int).add(Expr::int(1)).le(Expr::int(10));
/// assert_eq!(e, e2);
/// ```
#[derive(Clone)]
pub struct Expr(pub(crate) Arc<ExprNode>);

/// The node variants of an [`Expr`].
///
/// Exposed so that backends (interpreter, SMT compiler, printer) can match on
/// structure; users normally construct terms via the smart constructors.
///
/// Equality and hashing are *shallow*: child [`Expr`]s compare by canonical
/// identity (O(1)), which is exactly the invariant the interning arena
/// maintains — children are canonical before their parent is interned.
#[derive(Debug, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// A typed free variable.
    Var(String, Type),
    /// A literal constant.
    Const(Value),
    /// Boolean negation.
    Not(Expr),
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    /// Implication.
    Implies(Expr, Expr),
    /// If-then-else; branches share an arbitrary type.
    Ite(Expr, Expr, Expr),
    /// Equality at any type (structural for records/options/sets).
    Eq(Expr, Expr),
    /// Strictly-less-than on `Int` or unsigned `BitVec`.
    Lt(Expr, Expr),
    /// Less-or-equal on `Int` or unsigned `BitVec`.
    Le(Expr, Expr),
    /// Addition on `Int` or wrapping `BitVec`.
    Add(Expr, Expr),
    /// Subtraction on `Int` or wrapping `BitVec`.
    Sub(Expr, Expr),
    /// The absent option value (the payload type is recorded).
    None(Type),
    /// Wrapping in `Some`.
    Some(Expr),
    /// Is the option present?
    IsSome(Expr),
    /// Option payload; **total**: yields the payload type's default when the
    /// option is `None`.
    GetSome(Expr),
    /// Record construction with fields in definition order.
    MkRecord(Arc<RecordDef>, Vec<Expr>),
    /// Record field projection.
    GetField(Expr, String),
    /// Functional record update.
    WithField(Expr, String, Expr),
    /// Set membership of a fixed tag.
    SetContains(Expr, String),
    /// Set with a fixed tag added.
    SetAdd(Expr, String),
    /// Set with a fixed tag removed.
    SetRemove(Expr, String),
    /// Set union.
    SetUnion(Expr, Expr),
    /// Set intersection.
    SetInter(Expr, Expr),
}

/// Structural equality, O(1): the arena guarantees structurally equal terms
/// share one canonical node, so this is a pointer comparison.
impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Expr {}

/// Hashes the precomputed structural hash — O(1), consistent with `==`.
impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // print structure only: the id and hash are arena bookkeeping, and
        // repeating them at every nesting level would drown the term
        fmt::Debug::fmt(&self.0.kind, f)
    }
}

impl Expr {
    fn new(kind: ExprKind) -> Expr {
        arena::intern(kind)
    }

    /// The underlying node.
    pub fn kind(&self) -> &ExprKind {
        &self.0.kind
    }

    /// The stable intern id of this node, used by backend caches.
    ///
    /// Equal ids ⇔ structurally equal terms; ids are never reused, so caches
    /// keyed by them stay valid for the life of the process (there is no ABA
    /// hazard, unlike the address-based identities this replaces).
    pub fn node_id(&self) -> InternId {
        self.0.id
    }

    /// The term's structural hash, as precomputed by the arena.
    ///
    /// Deterministic within a build; cheap enough to fingerprint whole
    /// policy programs without re-walking the IR.
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// Do two handles point at the same node? With hash-consing this *is*
    /// structural equality (`==`); kept for call sites that want to spell
    /// out that identity, not just equivalence, is being asserted.
    pub fn same_node(&self, other: &Expr) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    // ---- leaves ------------------------------------------------------------

    /// A typed free variable.
    pub fn var(name: impl Into<String>, ty: Type) -> Expr {
        Expr::new(ExprKind::Var(name.into(), ty))
    }

    /// A literal constant.
    pub fn constant(v: Value) -> Expr {
        Expr::new(ExprKind::Const(v))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::constant(Value::Bool(b))
    }

    /// An integer literal.
    pub fn int(i: impl Into<i128>) -> Expr {
        Expr::constant(Value::Int(i.into()))
    }

    /// A bitvector literal.
    pub fn bv(bits: u64, width: u32) -> Expr {
        Expr::constant(Value::bv(bits, width))
    }

    /// The `None` option literal for a payload type.
    pub fn none(payload: Type) -> Expr {
        Expr::new(ExprKind::None(payload))
    }

    /// Is this node a literal constant? Returns it if so.
    pub fn as_const(&self) -> Option<&Value> {
        match self.kind() {
            ExprKind::Const(v) => Some(v),
            _ => None,
        }
    }

    fn as_const_bool(&self) -> Option<bool> {
        self.as_const().and_then(Value::as_bool)
    }

    // ---- booleans ----------------------------------------------------------

    /// Logical negation (folds constants and double negation).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std ops
    pub fn not(self) -> Expr {
        match self.as_const_bool() {
            Some(b) => Expr::bool(!b),
            None => match self.kind() {
                ExprKind::Not(inner) => inner.clone(),
                _ => Expr::new(ExprKind::Not(self)),
            },
        }
    }

    /// Binary conjunction. See [`Expr::and_all`] for the n-ary form.
    pub fn and(self, other: Expr) -> Expr {
        Expr::and_all([self, other])
    }

    /// N-ary conjunction with flattening and literal elimination.
    pub fn and_all(conjuncts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for c in conjuncts {
            match c.as_const_bool() {
                Some(true) => continue,
                Some(false) => return Expr::bool(false),
                None => match c.kind() {
                    ExprKind::And(inner) => flat.extend(inner.iter().cloned()),
                    _ => flat.push(c),
                },
            }
        }
        match flat.len() {
            0 => Expr::bool(true),
            1 => flat.pop().expect("len checked"),
            _ => Expr::new(ExprKind::And(flat)),
        }
    }

    /// Binary disjunction. See [`Expr::or_all`] for the n-ary form.
    pub fn or(self, other: Expr) -> Expr {
        Expr::or_all([self, other])
    }

    /// N-ary disjunction with flattening and literal elimination.
    pub fn or_all(disjuncts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for d in disjuncts {
            match d.as_const_bool() {
                Some(false) => continue,
                Some(true) => return Expr::bool(true),
                None => match d.kind() {
                    ExprKind::Or(inner) => flat.extend(inner.iter().cloned()),
                    _ => flat.push(d),
                },
            }
        }
        match flat.len() {
            0 => Expr::bool(false),
            1 => flat.pop().expect("len checked"),
            _ => Expr::new(ExprKind::Or(flat)),
        }
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Expr) -> Expr {
        match (self.as_const_bool(), other.as_const_bool()) {
            (Some(true), _) => other,
            (Some(false), _) => Expr::bool(true),
            (_, Some(true)) => Expr::bool(true),
            (_, Some(false)) => self.not(),
            _ => Expr::new(ExprKind::Implies(self, other)),
        }
    }

    /// Bi-implication, expressed as equality of booleans.
    pub fn iff(self, other: Expr) -> Expr {
        self.eq(other)
    }

    /// If-then-else (folds constant conditions and identical branches).
    pub fn ite(self, then: Expr, otherwise: Expr) -> Expr {
        match self.as_const_bool() {
            Some(true) => then,
            Some(false) => otherwise,
            None if then.same_node(&otherwise) => then,
            None => Expr::new(ExprKind::Ite(self, then, otherwise)),
        }
    }

    // ---- comparisons -------------------------------------------------------

    /// Equality (structural at compound types; folds identical nodes).
    #[allow(clippy::should_implement_trait)]
    pub fn eq(self, other: Expr) -> Expr {
        if self.same_node(&other) {
            return Expr::bool(true);
        }
        Expr::new(ExprKind::Eq(self, other))
    }

    /// Disequality.
    pub fn ne(self, other: Expr) -> Expr {
        self.eq(other).not()
    }

    /// Strictly less-than (`Int` or unsigned `BitVec`).
    pub fn lt(self, other: Expr) -> Expr {
        Expr::new(ExprKind::Lt(self, other))
    }

    /// Less-or-equal (`Int` or unsigned `BitVec`).
    pub fn le(self, other: Expr) -> Expr {
        Expr::new(ExprKind::Le(self, other))
    }

    /// Strictly greater-than.
    pub fn gt(self, other: Expr) -> Expr {
        other.lt(self)
    }

    /// Greater-or-equal.
    pub fn ge(self, other: Expr) -> Expr {
        other.le(self)
    }

    // ---- arithmetic ----------------------------------------------------------

    /// Addition (`Int`, or wrapping `BitVec`).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std ops
    pub fn add(self, other: Expr) -> Expr {
        Expr::new(ExprKind::Add(self, other))
    }

    /// Subtraction (`Int`, or wrapping `BitVec`).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std ops
    pub fn sub(self, other: Expr) -> Expr {
        Expr::new(ExprKind::Sub(self, other))
    }

    /// The minimum of two numeric expressions, via `ite`.
    pub fn min(self, other: Expr) -> Expr {
        self.clone().le(other.clone()).ite(self, other)
    }

    /// The maximum of two numeric expressions, via `ite`.
    pub fn max(self, other: Expr) -> Expr {
        self.clone().le(other.clone()).ite(other, self)
    }

    // ---- options -------------------------------------------------------------

    /// Wraps this expression in `Some`.
    pub fn some(self) -> Expr {
        Expr::new(ExprKind::Some(self))
    }

    /// Is the option present?
    pub fn is_some(self) -> Expr {
        match self.kind() {
            ExprKind::Some(_) => Expr::bool(true),
            ExprKind::None(_) => Expr::bool(false),
            _ => Expr::new(ExprKind::IsSome(self)),
        }
    }

    /// Is the option absent?
    pub fn is_none(self) -> Expr {
        self.is_some().not()
    }

    /// The option payload. **Total**: evaluates to the payload type's default
    /// when the option is `None` (mirrored exactly in the SMT encoding).
    pub fn get_some(self) -> Expr {
        match self.kind() {
            ExprKind::Some(inner) => inner.clone(),
            _ => Expr::new(ExprKind::GetSome(self)),
        }
    }

    /// Case analysis on an option: `match self { Some(x) => f(x), None => d }`.
    ///
    /// The closure receives the (total) payload projection.
    pub fn match_option(self, none_case: Expr, some_case: impl FnOnce(Expr) -> Expr) -> Expr {
        let payload = self.clone().get_some();
        self.is_some().ite(some_case(payload), none_case)
    }

    // ---- records -------------------------------------------------------------

    /// Builds a record from field expressions in definition order.
    pub fn record(def: &Arc<RecordDef>, fields: Vec<Expr>) -> Expr {
        assert_eq!(
            fields.len(),
            def.fields().len(),
            "record {} expects {} fields",
            def.name(),
            def.fields().len()
        );
        Expr::new(ExprKind::MkRecord(Arc::clone(def), fields))
    }

    /// Projects a record field (folds projections of literal records).
    pub fn field(self, name: impl Into<String>) -> Expr {
        let name = name.into();
        match self.kind() {
            ExprKind::MkRecord(def, fields) => {
                if let Some(i) = def.field_index(&name) {
                    return fields[i].clone();
                }
            }
            ExprKind::WithField(base, n, v) => {
                if *n == name {
                    return v.clone();
                }
                return base.clone().field(name);
            }
            _ => {}
        }
        Expr::new(ExprKind::GetField(self, name))
    }

    /// Functional update of a record field.
    pub fn with_field(self, name: impl Into<String>, value: Expr) -> Expr {
        Expr::new(ExprKind::WithField(self, name.into(), value))
    }

    // ---- sets ----------------------------------------------------------------

    /// Set membership of a fixed tag.
    pub fn contains(self, tag: impl Into<String>) -> Expr {
        Expr::new(ExprKind::SetContains(self, tag.into()))
    }

    /// Set with a fixed tag added.
    pub fn add_tag(self, tag: impl Into<String>) -> Expr {
        Expr::new(ExprKind::SetAdd(self, tag.into()))
    }

    /// Set with a fixed tag removed.
    pub fn remove_tag(self, tag: impl Into<String>) -> Expr {
        Expr::new(ExprKind::SetRemove(self, tag.into()))
    }

    /// Set union.
    pub fn union(self, other: Expr) -> Expr {
        Expr::new(ExprKind::SetUnion(self, other))
    }

    /// Set intersection.
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::new(ExprKind::SetInter(self, other))
    }

    // ---- analysis ------------------------------------------------------------

    /// Collects the free variables of this term.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InconsistentVar`] if the same name occurs with two
    /// different types.
    pub fn free_vars(&self) -> Result<BTreeMap<String, Type>, TypeError> {
        let mut out = BTreeMap::new();
        let mut seen = std::collections::HashSet::new();
        self.collect_vars(&mut out, &mut seen)?;
        Ok(out)
    }

    fn collect_vars(
        &self,
        out: &mut BTreeMap<String, Type>,
        seen: &mut std::collections::HashSet<InternId>,
    ) -> Result<(), TypeError> {
        if !seen.insert(self.node_id()) {
            return Ok(());
        }
        if let ExprKind::Var(name, ty) = self.kind() {
            if let Some(prev) = out.get(name) {
                if prev != ty {
                    return Err(TypeError::InconsistentVar {
                        name: name.clone(),
                        first: prev.clone(),
                        second: ty.clone(),
                    });
                }
            } else {
                out.insert(name.clone(), ty.clone());
            }
        }
        for child in self.children() {
            child.collect_vars(out, seen)?;
        }
        Ok(())
    }

    /// The direct subterms of this node.
    pub fn children(&self) -> Vec<&Expr> {
        match self.kind() {
            ExprKind::Var(..) | ExprKind::Const(_) | ExprKind::None(_) => vec![],
            ExprKind::Not(a)
            | ExprKind::Some(a)
            | ExprKind::IsSome(a)
            | ExprKind::GetSome(a)
            | ExprKind::GetField(a, _)
            | ExprKind::SetContains(a, _)
            | ExprKind::SetAdd(a, _)
            | ExprKind::SetRemove(a, _) => vec![a],
            ExprKind::Implies(a, b)
            | ExprKind::Eq(a, b)
            | ExprKind::Lt(a, b)
            | ExprKind::Le(a, b)
            | ExprKind::Add(a, b)
            | ExprKind::Sub(a, b)
            | ExprKind::SetUnion(a, b)
            | ExprKind::SetInter(a, b)
            | ExprKind::WithField(a, _, b) => vec![a, b],
            ExprKind::Ite(a, b, c) => vec![a, b, c],
            ExprKind::And(xs) | ExprKind::Or(xs) => xs.iter().collect(),
            ExprKind::MkRecord(_, xs) => xs.iter().collect(),
        }
    }

    /// The number of distinct nodes in this term (DAG size).
    pub fn dag_size(&self) -> usize {
        fn walk(e: &Expr, seen: &mut std::collections::HashSet<InternId>) {
            if !seen.insert(e.node_id()) {
                return;
            }
            for c in e.children() {
                walk(c, seen);
            }
        }
        let mut seen = std::collections::HashSet::new();
        walk(self, &mut seen);
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_bools() {
        let t = Expr::bool(true);
        let f = Expr::bool(false);
        assert_eq!(t.clone().not().as_const_bool(), Some(false));
        assert_eq!(t.clone().and(f.clone()).as_const_bool(), Some(false));
        assert_eq!(t.clone().or(f.clone()).as_const_bool(), Some(true));
        assert_eq!(f.clone().implies(t.clone()).as_const_bool(), Some(true));
        let x = Expr::var("x", Type::Bool);
        assert!(x.clone().and(t.clone()).same_node(&x));
        assert!(x.clone().or(f.clone()).same_node(&x));
        assert!(x.clone().not().not().same_node(&x));
    }

    #[test]
    fn and_or_flatten() {
        let x = Expr::var("x", Type::Bool);
        let y = Expr::var("y", Type::Bool);
        let z = Expr::var("z", Type::Bool);
        let e = x.clone().and(y.clone()).and(z.clone());
        match e.kind() {
            ExprKind::And(v) => assert_eq!(v.len(), 3),
            k => panic!("expected flat And, got {k:?}"),
        }
        let e = Expr::or_all([x.clone().or(y), z]);
        match e.kind() {
            ExprKind::Or(v) => assert_eq!(v.len(), 3),
            k => panic!("expected flat Or, got {k:?}"),
        }
    }

    #[test]
    fn ite_folds() {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        assert!(Expr::bool(true).ite(x.clone(), y.clone()).same_node(&x));
        assert!(Expr::bool(false).ite(x.clone(), y.clone()).same_node(&y));
        let c = Expr::var("c", Type::Bool);
        assert!(c.ite(x.clone(), x.clone()).same_node(&x));
    }

    #[test]
    fn eq_identical_folds() {
        let x = Expr::var("x", Type::Int);
        assert_eq!(x.clone().eq(x.clone()).as_const_bool(), Some(true));
    }

    #[test]
    fn option_folds() {
        let x = Expr::var("x", Type::Int);
        assert_eq!(x.clone().some().is_some().as_const_bool(), Some(true));
        assert_eq!(Expr::none(Type::Int).is_some().as_const_bool(), Some(false));
        assert!(x.clone().some().get_some().same_node(&x));
    }

    #[test]
    fn record_projection_folds() {
        let def = Arc::new(RecordDef::new("R", [("a", Type::Int), ("b", Type::Bool)]));
        let a = Expr::var("a", Type::Int);
        let b = Expr::var("b", Type::Bool);
        let r = Expr::record(&def, vec![a.clone(), b.clone()]);
        assert!(r.clone().field("a").same_node(&a));
        assert!(r.clone().field("b").same_node(&b));
        let updated = r.clone().with_field("a", Expr::int(3));
        assert_eq!(updated.clone().field("a").as_const(), Some(&Value::Int(3)));
        assert!(updated.field("b").same_node(&b));
    }

    #[test]
    fn free_vars_collects_and_checks() {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Bool);
        let e = y.clone().ite(x.clone(), x.clone().add(Expr::int(1)));
        let fv = e.free_vars().unwrap();
        assert_eq!(fv.len(), 2);
        assert_eq!(fv["x"], Type::Int);

        let bad = Expr::var("x", Type::Bool).and(Expr::var("x", Type::Int).gt(Expr::int(0)));
        assert!(bad.free_vars().is_err());
    }

    #[test]
    fn dag_size_counts_shared_nodes_once() {
        let x = Expr::var("x", Type::Int);
        let sum = x.clone().add(x.clone());
        // nodes: x, add
        assert_eq!(sum.dag_size(), 2);
    }

    #[test]
    fn min_max() {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        // structure only; semantics tested in eval
        assert!(matches!(x.clone().min(y.clone()).kind(), ExprKind::Ite(..)));
        assert!(matches!(x.min(y).kind(), ExprKind::Ite(..)));
    }
}
