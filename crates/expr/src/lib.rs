//! A small typed expression IR for modelling network routes and policies.
//!
//! This crate is the modelling substrate of the Timepiece reproduction: routing
//! state (routes), policy functions (transfer, merge) and logical interfaces
//! are all represented as [`Expr`] terms over a small type system ([`Type`]).
//!
//! The same term is given meaning twice:
//!
//! * **concretely**, by the interpreter in [`eval`], which drives the network
//!   simulator, and
//! * **symbolically**, by the Z3 compiler in the `timepiece-smt` crate, which
//!   drives the verifier.
//!
//! Because both backends consume the identical term, the simulator and the
//! verifier cannot disagree about the semantics of a policy.
//!
//! # Example
//!
//! ```
//! use timepiece_expr::{Expr, Type, Value, eval::Env};
//!
//! // a route is an optional record with a local preference and a path length
//! let route_ty = Type::option(Type::record(
//!     "Route",
//!     [("lp", Type::BitVec(32)), ("len", Type::Int)],
//! ));
//! let r = Expr::var("r", route_ty.clone());
//!
//! // "if a route is present, its path length is at most 4"
//! let better = r.clone().get_some().field("len").le(Expr::int(4));
//! let phi = r.is_some().implies(better);
//!
//! let mut env = Env::new();
//! env.bind("r", Value::none(route_ty.option_payload().unwrap().clone()));
//! assert_eq!(phi.eval(&env).unwrap(), Value::Bool(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod error;
pub mod eval;
pub mod expr;
pub mod typecheck;
pub mod types;
pub mod value;

mod display;

pub use arena::{ArenaStats, InternId};
pub use error::{EvalError, TypeError};
pub use eval::Env;
pub use expr::{Expr, ExprKind};
pub use types::{EnumDef, RecordDef, SetDef, Type};
pub use value::Value;
