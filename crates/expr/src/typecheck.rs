//! Type checking for expression terms.

use std::collections::HashMap;

use crate::arena::InternId;
use crate::error::TypeError;
use crate::expr::{Expr, ExprKind};
use crate::types::Type;

impl Expr {
    /// Computes the type of this term.
    ///
    /// Shared subterms are checked once (the checker caches by node identity).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] describing the first ill-typed node found.
    ///
    /// # Example
    ///
    /// ```
    /// use timepiece_expr::{Expr, Type};
    /// let e = Expr::int(1).add(Expr::int(2));
    /// assert_eq!(e.type_of().unwrap(), Type::Int);
    /// assert!(Expr::int(1).add(Expr::bool(true)).type_of().is_err());
    /// ```
    pub fn type_of(&self) -> Result<Type, TypeError> {
        let mut checker = Checker { cache: HashMap::new() };
        checker.check(self)
    }
}

struct Checker {
    cache: HashMap<InternId, Type>,
}

impl Checker {
    fn check(&mut self, e: &Expr) -> Result<Type, TypeError> {
        if let Some(t) = self.cache.get(&e.node_id()) {
            return Ok(t.clone());
        }
        let ty = self.check_uncached(e)?;
        self.cache.insert(e.node_id(), ty.clone());
        Ok(ty)
    }

    fn expect(
        &mut self,
        e: &Expr,
        expected: &Type,
        context: &'static str,
    ) -> Result<(), TypeError> {
        let found = self.check(e)?;
        if &found == expected {
            Ok(())
        } else {
            Err(TypeError::Mismatch { context, expected: expected.clone(), found })
        }
    }

    fn check_numeric_pair(
        &mut self,
        a: &Expr,
        b: &Expr,
        context: &'static str,
    ) -> Result<Type, TypeError> {
        let ta = self.check(a)?;
        if !ta.is_numeric() {
            return Err(TypeError::Unsupported { context, found: ta });
        }
        self.expect(b, &ta, context)?;
        Ok(ta)
    }

    fn check_uncached(&mut self, e: &Expr) -> Result<Type, TypeError> {
        match e.kind() {
            ExprKind::Var(_, ty) => Ok(ty.clone()),
            ExprKind::Const(v) => Ok(v.type_of()),
            ExprKind::Not(a) => {
                self.expect(a, &Type::Bool, "not")?;
                Ok(Type::Bool)
            }
            ExprKind::And(xs) => {
                for x in xs {
                    self.expect(x, &Type::Bool, "and")?;
                }
                Ok(Type::Bool)
            }
            ExprKind::Or(xs) => {
                for x in xs {
                    self.expect(x, &Type::Bool, "or")?;
                }
                Ok(Type::Bool)
            }
            ExprKind::Implies(a, b) => {
                self.expect(a, &Type::Bool, "implies")?;
                self.expect(b, &Type::Bool, "implies")?;
                Ok(Type::Bool)
            }
            ExprKind::Ite(c, t, f) => {
                self.expect(c, &Type::Bool, "ite condition")?;
                let tt = self.check(t)?;
                self.expect(f, &tt, "ite branches")?;
                Ok(tt)
            }
            ExprKind::Eq(a, b) => {
                let ta = self.check(a)?;
                self.expect(b, &ta, "eq")?;
                Ok(Type::Bool)
            }
            ExprKind::Lt(a, b) => {
                self.check_numeric_pair(a, b, "lt")?;
                Ok(Type::Bool)
            }
            ExprKind::Le(a, b) => {
                self.check_numeric_pair(a, b, "le")?;
                Ok(Type::Bool)
            }
            ExprKind::Add(a, b) => self.check_numeric_pair(a, b, "add"),
            ExprKind::Sub(a, b) => self.check_numeric_pair(a, b, "sub"),
            ExprKind::None(payload) => Ok(Type::option(payload.clone())),
            ExprKind::Some(a) => Ok(Type::option(self.check(a)?)),
            ExprKind::IsSome(a) => {
                let ta = self.check(a)?;
                if ta.is_option() {
                    Ok(Type::Bool)
                } else {
                    Err(TypeError::Unsupported { context: "is_some", found: ta })
                }
            }
            ExprKind::GetSome(a) => {
                let ta = self.check(a)?;
                match ta.option_payload() {
                    Some(p) => Ok(p.clone()),
                    None => Err(TypeError::Unsupported { context: "get_some", found: ta }),
                }
            }
            ExprKind::MkRecord(def, fields) => {
                for ((_, ft), fe) in def.fields().iter().zip(fields) {
                    let found = self.check(fe)?;
                    if &found != ft {
                        return Err(TypeError::Mismatch {
                            context: "record field",
                            expected: ft.clone(),
                            found,
                        });
                    }
                }
                Ok(Type::Record(std::sync::Arc::clone(def)))
            }
            ExprKind::GetField(a, name) => {
                let ta = self.check(a)?;
                let def = ta
                    .record_def()
                    .ok_or(TypeError::Unsupported { context: "get_field", found: ta.clone() })?;
                def.field_type(name).cloned().ok_or_else(|| TypeError::NoSuchField {
                    record: def.name().to_owned(),
                    field: name.clone(),
                })
            }
            ExprKind::WithField(a, name, v) => {
                let ta = self.check(a)?;
                let def = ta
                    .record_def()
                    .ok_or(TypeError::Unsupported { context: "with_field", found: ta.clone() })?
                    .clone();
                let ft = def.field_type(name).cloned().ok_or_else(|| TypeError::NoSuchField {
                    record: def.name().to_owned(),
                    field: name.clone(),
                })?;
                self.expect(v, &ft, "with_field")?;
                Ok(ta)
            }
            ExprKind::SetContains(a, tag) => {
                let def = self.set_def(a, "set_contains")?;
                if def.tag_index(tag).is_none() {
                    return Err(TypeError::NoSuchTag {
                        set: def.name().to_owned(),
                        tag: tag.clone(),
                    });
                }
                Ok(Type::Bool)
            }
            ExprKind::SetAdd(a, tag) | ExprKind::SetRemove(a, tag) => {
                let def = self.set_def(a, "set_add/remove")?;
                if def.tag_index(tag).is_none() {
                    return Err(TypeError::NoSuchTag {
                        set: def.name().to_owned(),
                        tag: tag.clone(),
                    });
                }
                Ok(Type::Set(def))
            }
            ExprKind::SetUnion(a, b) | ExprKind::SetInter(a, b) => {
                let def = self.set_def(a, "set_union/inter")?;
                self.expect(b, &Type::Set(def.clone()), "set_union/inter")?;
                Ok(Type::Set(def))
            }
        }
    }

    fn set_def(
        &mut self,
        e: &Expr,
        context: &'static str,
    ) -> Result<std::sync::Arc<crate::types::SetDef>, TypeError> {
        let t = self.check(e)?;
        t.set_def().cloned().ok_or(TypeError::Unsupported { context, found: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordDef;
    use std::sync::Arc;

    #[test]
    fn scalar_ops_type() {
        assert_eq!(Expr::int(1).add(Expr::int(2)).type_of().unwrap(), Type::Int);
        assert_eq!(Expr::bv(1, 8).sub(Expr::bv(2, 8)).type_of().unwrap(), Type::BitVec(8));
        assert_eq!(Expr::int(1).lt(Expr::int(2)).type_of().unwrap(), Type::Bool);
    }

    #[test]
    fn mixed_width_bv_rejected() {
        assert!(Expr::bv(1, 8).add(Expr::bv(1, 16)).type_of().is_err());
        assert!(Expr::int(1).add(Expr::bv(1, 8)).type_of().is_err());
    }

    #[test]
    fn bool_arith_rejected() {
        let e = Expr::bool(true).add(Expr::bool(false));
        assert!(matches!(e.type_of(), Err(TypeError::Unsupported { .. })));
    }

    #[test]
    fn ite_branch_mismatch_rejected() {
        let e = Expr::var("c", Type::Bool).ite(Expr::int(1), Expr::bool(true));
        assert!(matches!(e.type_of(), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn option_typing() {
        let n = Expr::none(Type::Int);
        assert_eq!(n.type_of().unwrap(), Type::option(Type::Int));
        let s = Expr::int(1).some();
        assert_eq!(s.clone().type_of().unwrap(), Type::option(Type::Int));
        // note: is_some/get_some on literal Some fold away, so use a var
        let v = Expr::var("o", Type::option(Type::Int));
        assert_eq!(v.clone().is_some().type_of().unwrap(), Type::Bool);
        assert_eq!(v.get_some().type_of().unwrap(), Type::Int);
        let not_an_option = Expr::var("i", Type::Int).is_some();
        assert!(matches!(not_an_option.type_of(), Err(TypeError::Unsupported { .. })));
    }

    #[test]
    fn record_typing() {
        let def = Arc::new(RecordDef::new("R", [("a", Type::Int), ("b", Type::Bool)]));
        let r = Expr::var("r", Type::Record(def.clone()));
        assert_eq!(r.clone().field("a").type_of().unwrap(), Type::Int);
        assert!(matches!(r.clone().field("zzz").type_of(), Err(TypeError::NoSuchField { .. })));
        assert!(r.clone().with_field("a", Expr::bool(true)).type_of().is_err());
        let built = Expr::record(&def, vec![Expr::int(0), Expr::var("x", Type::Bool)]);
        assert_eq!(built.type_of().unwrap(), Type::Record(def));
    }

    #[test]
    fn record_field_value_mismatch() {
        let def = Arc::new(RecordDef::new("R", [("a", Type::Int)]));
        let bad = Expr::record(&def, vec![Expr::bool(true)]);
        assert!(bad.type_of().is_err());
    }

    #[test]
    fn set_typing() {
        let ty = Type::set("Tags", ["x", "y"]);
        let s = Expr::var("s", ty.clone());
        assert_eq!(s.clone().contains("x").type_of().unwrap(), Type::Bool);
        assert!(matches!(s.clone().contains("zzz").type_of(), Err(TypeError::NoSuchTag { .. })));
        assert_eq!(s.clone().add_tag("y").type_of().unwrap(), ty);
        assert_eq!(s.clone().union(s.clone()).type_of().unwrap(), ty);
        let other = Expr::var("t", Type::set("Other", ["x"]));
        assert!(s.union(other).type_of().is_err());
    }

    #[test]
    fn eq_requires_same_type() {
        assert!(Expr::int(1).eq(Expr::bool(true)).type_of().is_err());
        let ty = Type::option(Type::Int);
        let a = Expr::var("a", ty.clone());
        let b = Expr::var("b", ty);
        assert_eq!(a.eq(b).type_of().unwrap(), Type::Bool);
    }
}
