//! The type system of the expression IR.
//!
//! Types are deliberately small: everything must have a straightforward
//! encoding both as a concrete Rust value ([`crate::Value`]) and as a tuple of
//! Z3 terms. Records and options are *structural*: they compile to tuples of
//! scalar terms rather than SMT datatype sorts, mirroring the encoding used by
//! Zen/Minesweeper.

use std::fmt;
use std::sync::Arc;

/// A type in the expression IR.
///
/// Cloning is cheap: compound types share their definitions via [`Arc`].
///
/// # Example
///
/// ```
/// use timepiece_expr::Type;
/// let route = Type::option(Type::record("R", [("len", Type::Int)]));
/// assert!(route.is_option());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Booleans.
    Bool,
    /// Fixed-width unsigned bitvectors (width in bits, 1..=64).
    BitVec(u32),
    /// Unbounded (mathematical) integers.
    Int,
    /// A named finite enumeration.
    Enum(Arc<EnumDef>),
    /// An optional value: either absent (the paper's `∞` route) or present.
    Option(Arc<Type>),
    /// A named record with ordered, typed fields.
    Record(Arc<RecordDef>),
    /// A set over a fixed, named universe of at most 64 tags.
    Set(Arc<SetDef>),
}

/// Definition of a finite enumeration type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumDef {
    name: String,
    variants: Vec<String>,
}

/// Definition of a record type: a name and ordered, typed fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordDef {
    name: String,
    fields: Vec<(String, Type)>,
}

/// Definition of a set type: a fixed universe of tag names (at most 64).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SetDef {
    name: String,
    universe: Vec<String>,
}

impl EnumDef {
    /// Creates an enum definition.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or contains duplicates.
    pub fn new(
        name: impl Into<String>,
        variants: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let variants: Vec<String> = variants.into_iter().map(Into::into).collect();
        assert!(!variants.is_empty(), "enum must have at least one variant");
        for (i, v) in variants.iter().enumerate() {
            assert!(!variants[..i].contains(v), "duplicate enum variant {v:?}");
        }
        Self { name: name.into(), variants }
    }

    /// The enum's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variant names, in declaration order.
    pub fn variants(&self) -> &[String] {
        &self.variants
    }

    /// Index of a variant by name.
    pub fn variant_index(&self, variant: &str) -> Option<usize> {
        self.variants.iter().position(|v| v == variant)
    }
}

impl RecordDef {
    /// Creates a record definition.
    ///
    /// # Panics
    ///
    /// Panics if `fields` contains duplicate names.
    pub fn new(
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (impl Into<String>, Type)>,
    ) -> Self {
        let fields: Vec<(String, Type)> = fields.into_iter().map(|(n, t)| (n.into(), t)).collect();
        for (i, (n, _)) in fields.iter().enumerate() {
            assert!(!fields[..i].iter().any(|(m, _)| m == n), "duplicate record field {n:?}");
        }
        Self { name: name.into(), fields }
    }

    /// The record's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[(String, Type)] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn field_index(&self, field: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == field)
    }

    /// Type of a field by name.
    pub fn field_type(&self, field: &str) -> Option<&Type> {
        self.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
    }
}

impl SetDef {
    /// Creates a set definition over a universe of tags.
    ///
    /// # Panics
    ///
    /// Panics if the universe has more than 64 tags or contains duplicates.
    pub fn new(
        name: impl Into<String>,
        universe: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let universe: Vec<String> = universe.into_iter().map(Into::into).collect();
        assert!(universe.len() <= 64, "set universe limited to 64 tags");
        for (i, v) in universe.iter().enumerate() {
            assert!(!universe[..i].contains(v), "duplicate set tag {v:?}");
        }
        Self { name: name.into(), universe }
    }

    /// The set type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The universe of tags.
    pub fn universe(&self) -> &[String] {
        &self.universe
    }

    /// Index of a tag in the universe.
    pub fn tag_index(&self, tag: &str) -> Option<usize> {
        self.universe.iter().position(|t| t == tag)
    }
}

impl Type {
    /// Shorthand for an option type.
    pub fn option(payload: Type) -> Type {
        Type::Option(Arc::new(payload))
    }

    /// Shorthand for a record type.
    pub fn record(
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (impl Into<String>, Type)>,
    ) -> Type {
        Type::Record(Arc::new(RecordDef::new(name, fields)))
    }

    /// Shorthand for an enum type.
    pub fn enumeration(
        name: impl Into<String>,
        variants: impl IntoIterator<Item = impl Into<String>>,
    ) -> Type {
        Type::Enum(Arc::new(EnumDef::new(name, variants)))
    }

    /// Shorthand for a set type.
    pub fn set(
        name: impl Into<String>,
        universe: impl IntoIterator<Item = impl Into<String>>,
    ) -> Type {
        Type::Set(Arc::new(SetDef::new(name, universe)))
    }

    /// Is this the boolean type?
    pub fn is_bool(&self) -> bool {
        matches!(self, Type::Bool)
    }

    /// Is this an option type?
    pub fn is_option(&self) -> bool {
        matches!(self, Type::Option(_))
    }

    /// Is this a numeric type (bitvector or integer)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::BitVec(_) | Type::Int)
    }

    /// The payload type if this is an option type.
    pub fn option_payload(&self) -> Option<&Type> {
        match self {
            Type::Option(p) => Some(p),
            _ => None,
        }
    }

    /// The record definition if this is a record type.
    pub fn record_def(&self) -> Option<&Arc<RecordDef>> {
        match self {
            Type::Record(d) => Some(d),
            _ => None,
        }
    }

    /// The enum definition if this is an enum type.
    pub fn enum_def(&self) -> Option<&Arc<EnumDef>> {
        match self {
            Type::Enum(d) => Some(d),
            _ => None,
        }
    }

    /// The set definition if this is a set type.
    pub fn set_def(&self) -> Option<&Arc<SetDef>> {
        match self {
            Type::Set(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::BitVec(w) => write!(f, "bv{w}"),
            Type::Int => write!(f, "int"),
            Type::Enum(d) => write!(f, "enum {}", d.name()),
            Type::Option(p) => write!(f, "option<{p}>"),
            Type::Record(d) => write!(f, "record {}", d.name()),
            Type::Set(d) => write!(f, "set {}", d.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_def_indexes_variants() {
        let d = EnumDef::new("Origin", ["egp", "igp", "unknown"]);
        assert_eq!(d.variant_index("igp"), Some(1));
        assert_eq!(d.variant_index("bgp"), None);
        assert_eq!(d.variants().len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate enum variant")]
    fn enum_def_rejects_duplicates() {
        EnumDef::new("E", ["a", "a"]);
    }

    #[test]
    fn record_def_lookup() {
        let d = RecordDef::new("R", [("lp", Type::BitVec(32)), ("len", Type::Int)]);
        assert_eq!(d.field_index("len"), Some(1));
        assert_eq!(d.field_type("lp"), Some(&Type::BitVec(32)));
        assert_eq!(d.field_type("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate record field")]
    fn record_def_rejects_duplicates() {
        RecordDef::new("R", [("a", Type::Bool), ("a", Type::Int)]);
    }

    #[test]
    fn set_def_lookup() {
        let d = SetDef::new("Tags", ["internal", "down"]);
        assert_eq!(d.tag_index("down"), Some(1));
        assert_eq!(d.tag_index("up"), None);
    }

    #[test]
    #[should_panic(expected = "limited to 64")]
    fn set_def_rejects_large_universe() {
        SetDef::new("Big", (0..65).map(|i| format!("t{i}")));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::BitVec(32).to_string(), "bv32");
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::option(Type::Int).to_string(), "option<int>");
        assert_eq!(Type::record("R", [("x", Type::Bool)]).to_string(), "record R");
    }

    #[test]
    fn accessors() {
        let r = Type::record("R", [("x", Type::Bool)]);
        let o = Type::option(r.clone());
        assert!(o.is_option());
        assert_eq!(o.option_payload(), Some(&r));
        assert!(r.record_def().is_some());
        assert!(Type::Int.is_numeric());
        assert!(Type::BitVec(8).is_numeric());
        assert!(!Type::Bool.is_numeric());
    }
}
