//! Concrete values of the expression IR.

use std::fmt;
use std::sync::Arc;

use crate::types::{EnumDef, RecordDef, SetDef, Type};

/// A concrete value, the result of evaluating an [`crate::Expr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A fixed-width unsigned bitvector value, kept truncated to its width.
    BitVec {
        /// Width in bits (1..=64).
        width: u32,
        /// The value, always `< 2^width`.
        bits: u64,
    },
    /// An unbounded integer.
    Int(i128),
    /// An enum variant, by index into its definition.
    Enum {
        /// The enum definition.
        def: Arc<EnumDef>,
        /// The variant index.
        index: usize,
    },
    /// An optional value; `None` models the absent route `∞`.
    Option {
        /// The payload type (needed to type `None`).
        payload: Arc<Type>,
        /// The value, if present.
        value: Option<Box<Value>>,
    },
    /// A record value with fields in definition order.
    Record {
        /// The record definition.
        def: Arc<RecordDef>,
        /// The field values, in definition order.
        fields: Vec<Value>,
    },
    /// A set over a fixed universe, as a bitmask.
    Set {
        /// The set definition.
        def: Arc<SetDef>,
        /// Bit `i` set ⇔ tag `i` present.
        mask: u64,
    },
}

impl Value {
    /// Creates a bitvector value, truncating to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn bv(bits: u64, width: u32) -> Value {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        Value::BitVec { width, bits: truncate(bits, width) }
    }

    /// Creates an integer value.
    pub fn int(i: impl Into<i128>) -> Value {
        Value::Int(i.into())
    }

    /// Creates a `None` option value with the given payload type.
    pub fn none(payload: Type) -> Value {
        Value::Option { payload: Arc::new(payload), value: None }
    }

    /// Wraps a value in `Some`.
    pub fn some(v: Value) -> Value {
        let payload = Arc::new(v.type_of());
        Value::Option { payload, value: Some(Box::new(v)) }
    }

    /// Creates an enum value by variant name.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is not in the definition.
    pub fn enum_variant(def: &Arc<EnumDef>, variant: &str) -> Value {
        let index = def
            .variant_index(variant)
            .unwrap_or_else(|| panic!("unknown variant {variant:?} of enum {}", def.name()));
        Value::Enum { def: Arc::clone(def), index }
    }

    /// Creates a record value.
    ///
    /// # Panics
    ///
    /// Panics if the number of fields does not match the definition.
    pub fn record(def: &Arc<RecordDef>, fields: Vec<Value>) -> Value {
        assert_eq!(
            fields.len(),
            def.fields().len(),
            "record {} expects {} fields",
            def.name(),
            def.fields().len()
        );
        Value::Record { def: Arc::clone(def), fields }
    }

    /// Creates a set value from tag names.
    ///
    /// # Panics
    ///
    /// Panics if any tag is not in the universe.
    pub fn set_of<'a>(def: &Arc<SetDef>, tags: impl IntoIterator<Item = &'a str>) -> Value {
        let mut mask = 0u64;
        for tag in tags {
            let i = def
                .tag_index(tag)
                .unwrap_or_else(|| panic!("unknown tag {tag:?} in set {}", def.name()));
            mask |= 1 << i;
        }
        Value::Set { def: Arc::clone(def), mask }
    }

    /// The canonical default value of a type: `false`, zero, the first
    /// variant, `None`, all-defaults, or the empty set.
    ///
    /// Used to give `get_some(None)` a total (arbitrary but fixed) meaning.
    pub fn default_of(ty: &Type) -> Value {
        match ty {
            Type::Bool => Value::Bool(false),
            Type::BitVec(w) => Value::bv(0, *w),
            Type::Int => Value::Int(0),
            Type::Enum(d) => Value::Enum { def: Arc::clone(d), index: 0 },
            Type::Option(p) => Value::Option { payload: Arc::clone(p), value: None },
            Type::Record(d) => {
                let fields = d.fields().iter().map(|(_, t)| Value::default_of(t)).collect();
                Value::Record { def: Arc::clone(d), fields }
            }
            Type::Set(d) => Value::Set { def: Arc::clone(d), mask: 0 },
        }
    }

    /// The type of this value.
    pub fn type_of(&self) -> Type {
        match self {
            Value::Bool(_) => Type::Bool,
            Value::BitVec { width, .. } => Type::BitVec(*width),
            Value::Int(_) => Type::Int,
            Value::Enum { def, .. } => Type::Enum(Arc::clone(def)),
            Value::Option { payload, .. } => Type::Option(Arc::clone(payload)),
            Value::Record { def, .. } => Type::Record(Arc::clone(def)),
            Value::Set { def, .. } => Type::Set(Arc::clone(def)),
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts bitvector bits, if this is a bitvector.
    pub fn as_bv(&self) -> Option<u64> {
        match self {
            Value::BitVec { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Is this an option holding a value?
    pub fn is_some_option(&self) -> Option<bool> {
        match self {
            Value::Option { value, .. } => Some(value.is_some()),
            _ => None,
        }
    }

    /// The payload of an option, or the payload type's default when `None`.
    ///
    /// Mirrors the total semantics of `Expr::get_some`.
    pub fn unwrap_or_default(&self) -> Option<Value> {
        match self {
            Value::Option { payload, value } => Some(match value {
                Some(v) => (**v).clone(),
                None => Value::default_of(payload),
            }),
            _ => None,
        }
    }

    /// Looks up a record field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record { def, fields } => def.field_index(name).map(|i| &fields[i]),
            _ => None,
        }
    }

    /// Tests set membership by tag name.
    pub fn contains_tag(&self, tag: &str) -> Option<bool> {
        match self {
            Value::Set { def, mask } => def.tag_index(tag).map(|i| mask & (1 << i) != 0),
            _ => None,
        }
    }
}

/// Truncates `bits` to the low `width` bits.
pub(crate) fn truncate(bits: u64, width: u32) -> u64 {
    if width >= 64 {
        bits
    } else {
        bits & ((1u64 << width) - 1)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::BitVec { width, bits } => write!(f, "{bits}bv{width}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Enum { def, index } => write!(f, "{}", def.variants()[*index]),
            Value::Option { value: None, .. } => write!(f, "∞"),
            Value::Option { value: Some(v), .. } => write!(f, "⟨{v}⟩"),
            Value::Record { def, fields } => {
                write!(f, "{}{{", def.name())?;
                for (i, ((name, _), v)) in def.fields().iter().zip(fields).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Set { def, mask } => {
                write!(f, "{{")?;
                let mut first = true;
                for (i, tag) in def.universe().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "{tag}")?;
                        first = false;
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_truncates() {
        assert_eq!(Value::bv(0x1ff, 8).as_bv(), Some(0xff));
        assert_eq!(Value::bv(u64::MAX, 64).as_bv(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn bv_rejects_zero_width() {
        Value::bv(0, 0);
    }

    #[test]
    fn default_values() {
        let ty = Type::record("R", [("a", Type::Bool), ("b", Type::option(Type::Int))]);
        let v = Value::default_of(&ty);
        assert_eq!(v.field("a").and_then(Value::as_bool), Some(false));
        assert_eq!(v.field("b").and_then(Value::is_some_option), Some(false));
    }

    #[test]
    fn option_roundtrip() {
        let v = Value::some(Value::int(7));
        assert_eq!(v.is_some_option(), Some(true));
        assert_eq!(v.unwrap_or_default().unwrap().as_int(), Some(7));
        let n = Value::none(Type::Int);
        assert_eq!(n.is_some_option(), Some(false));
        assert_eq!(n.unwrap_or_default().unwrap().as_int(), Some(0));
    }

    #[test]
    fn set_membership() {
        let def = Arc::new(SetDef::new("T", ["a", "b", "c"]));
        let v = Value::set_of(&def, ["a", "c"]);
        assert_eq!(v.contains_tag("a"), Some(true));
        assert_eq!(v.contains_tag("b"), Some(false));
        assert_eq!(v.contains_tag("c"), Some(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::none(Type::Int).to_string(), "∞");
        assert_eq!(Value::some(Value::int(3)).to_string(), "⟨3⟩");
        let def = Arc::new(SetDef::new("T", ["x", "y"]));
        assert_eq!(Value::set_of(&def, ["x", "y"]).to_string(), "{x, y}");
    }

    #[test]
    fn type_of_roundtrip() {
        let ty = Type::option(Type::record("R", [("a", Type::Bool)]));
        assert_eq!(Value::default_of(&ty).type_of(), ty);
    }

    #[test]
    fn enum_values() {
        let def = Arc::new(EnumDef::new("Origin", ["egp", "igp"]));
        let v = Value::enum_variant(&def, "igp");
        assert_eq!(v.to_string(), "igp");
        assert_eq!(Value::default_of(&Type::Enum(def)).to_string(), "egp");
    }
}
