//! Property tests for the hash-consing arena: interning must be invisible
//! to the language semantics (evaluation and typing), and visible only as
//! the O(1)-equality guarantee — structurally equal terms share one
//! canonical node with one stable id, from any number of threads.

use proptest::prelude::*;
use timepiece_expr::{Env, Expr, InternId, Type, Value};

/// Builds a well-typed random boolean term from `seed`, deterministically:
/// the same seed always describes the same structure, so building twice is
/// exactly the "rebuild an identical term" scenario interning must collapse.
fn build(seed: u64) -> Expr {
    let mut rng = TestRng::deterministic(seed, "interning-gen");
    gen_bool(&mut rng, 4)
}

/// A random integer-typed term over the `pi0..pi3` variables.
fn gen_int(rng: &mut TestRng, depth: u32) -> Expr {
    let choice = if depth == 0 { rng.below(2) } else { rng.below(7) };
    match choice {
        0 => Expr::int(rng.below(16) as i64 - 8),
        1 => Expr::var(format!("pi{}", rng.below(4)), Type::Int),
        2 => gen_int(rng, depth - 1).add(gen_int(rng, depth - 1)),
        3 => gen_int(rng, depth - 1).sub(gen_int(rng, depth - 1)),
        4 => gen_int(rng, depth - 1).min(gen_int(rng, depth - 1)),
        5 => gen_int(rng, depth - 1).max(gen_int(rng, depth - 1)),
        _ => gen_bool(rng, depth - 1).ite(gen_int(rng, depth - 1), gen_int(rng, depth - 1)),
    }
}

/// A random boolean-typed term over the `pb0..pb2` and `pi0..pi3` variables.
fn gen_bool(rng: &mut TestRng, depth: u32) -> Expr {
    let choice = if depth == 0 { rng.below(2) } else { rng.below(8) };
    match choice {
        0 => Expr::bool(rng.below(2) == 0),
        1 => Expr::var(format!("pb{}", rng.below(3)), Type::Bool),
        2 => gen_bool(rng, depth - 1).not(),
        3 => gen_bool(rng, depth - 1).and(gen_bool(rng, depth - 1)),
        4 => gen_bool(rng, depth - 1).or(gen_bool(rng, depth - 1)),
        5 => gen_bool(rng, depth - 1).implies(gen_bool(rng, depth - 1)),
        6 => gen_int(rng, depth - 1).le(gen_int(rng, depth - 1)),
        _ => gen_int(rng, depth - 1).eq(gen_int(rng, depth - 1)),
    }
}

/// One concrete binding for every variable the generators mention.
fn test_env() -> Env {
    let mut env = Env::new();
    for (i, v) in [3i64, -1, 0, 7].into_iter().enumerate() {
        env.bind(format!("pi{i}"), Value::int(v));
    }
    for (i, b) in [true, false, true].into_iter().enumerate() {
        env.bind(format!("pb{i}"), Value::Bool(b));
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Rebuilding a structure yields the *same* canonical node: same stable
    /// intern id, pointer-equal, same stored structural hash.
    #[test]
    fn rebuilding_a_term_reuses_the_canonical_node(seed in 0u64..u64::MAX) {
        let a = build(seed);
        let b = build(seed);
        prop_assert_eq!(a.node_id(), b.node_id());
        prop_assert!(a.same_node(&b));
        prop_assert_eq!(a.structural_hash(), b.structural_hash());
    }

    /// Interning is semantically invisible: a term and its rebuild have the
    /// same type and evaluate to the same value.
    #[test]
    fn interning_preserves_eval_and_typing(seed in 0u64..u64::MAX) {
        let a = build(seed);
        let b = build(seed);
        let ty = a.type_of().expect("generated terms are well-typed");
        prop_assert_eq!(ty, b.type_of().expect("rebuild is well-typed"));
        let env = test_env();
        let va = a.eval(&env).expect("generated terms close over the test env");
        prop_assert_eq!(va, b.eval(&env).expect("rebuild evaluates"));
    }

    /// Structural equality and intern-id equality are the same relation —
    /// in both directions, for independently generated term pairs.
    #[test]
    fn structural_equality_iff_same_intern_id(sa in 0u64..u64::MAX, sb in 0u64..u64::MAX) {
        let a = build(sa);
        let b = build(sb);
        prop_assert_eq!(a == b, a.node_id() == b.node_id());
        // ExprKind equality is shallow (children by identity), which on
        // canonical children is exactly deep structural equality
        prop_assert_eq!(a.kind() == b.kind(), a.node_id() == b.node_id());
    }
}

/// Racing threads interning the same term set must converge on one
/// canonical node per term — the double-checked probe cannot hand two
/// threads two different ids for one structure.
#[test]
fn concurrent_interning_converges_on_one_id_per_term() {
    const THREADS: usize = 8;
    let seeds: Vec<u64> = (0..32u64).map(|i| 0xC0_FFEE ^ (i.wrapping_mul(0x9E37_79B9))).collect();
    let per_thread: Vec<Vec<InternId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(|| seeds.iter().map(|&s| build(s).node_id()).collect()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("interning thread panicked")).collect()
    });
    for ids in &per_thread[1..] {
        assert_eq!(ids, &per_thread[0], "threads disagreed on canonical intern ids");
    }
}
