//! Atomic route predicates, the building blocks of inferred interfaces.
//!
//! An [`Atom`] is a small predicate over a route — "the route is present",
//! "the `lp` field is 100", "the AS-path length is at most 3", "the `down`
//! community is absent" — that can be both *evaluated* on the concrete
//! values a simulation produces and *compiled* to an expression the SMT
//! backend understands. Inferred interface candidates are conjunctions of
//! atoms; the CEGIS loop strengthens a candidate by adding an atom that
//! separates the observed traces from a counterexample, and weakens it by
//! dropping atoms a counterexample step violates.
//!
//! Atoms are generated from *observations*: [`atoms_for`] produces every
//! atom of the fixed grammar that holds on all given values, and
//! [`separating_atoms`] filters those down to atoms that additionally rule
//! out one bad value.

use timepiece_expr::{Expr, Type, Value};

/// A test applied to one (possibly nested) component of a route.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldTest {
    /// The component equals the value.
    Eq(Value),
    /// The component is at most the value (numeric components).
    Le(Value),
    /// The component is at least the value (numeric components).
    Ge(Value),
    /// The component (a set) contains the tag.
    Has(String),
    /// The component (a set) lacks the tag.
    Lacks(String),
}

impl FieldTest {
    fn holds(&self, v: &Value) -> bool {
        match self {
            FieldTest::Eq(c) => v == c,
            FieldTest::Le(c) => cmp_numeric(v, c).is_some_and(|o| o.is_le()),
            FieldTest::Ge(c) => cmp_numeric(v, c).is_some_and(|o| o.is_ge()),
            FieldTest::Has(tag) => v.contains_tag(tag) == Some(true),
            FieldTest::Lacks(tag) => v.contains_tag(tag) == Some(false),
        }
    }

    fn expr(&self, component: Expr) -> Expr {
        match self {
            FieldTest::Eq(c) => component.eq(Expr::constant(c.clone())),
            FieldTest::Le(c) => component.le(Expr::constant(c.clone())),
            FieldTest::Ge(c) => component.ge(Expr::constant(c.clone())),
            FieldTest::Has(tag) => component.contains(tag.clone()),
            FieldTest::Lacks(tag) => component.contains(tag.clone()).not(),
        }
    }
}

/// Compares two numeric values of the same type, `None` otherwise.
fn cmp_numeric(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::BitVec { width: wa, bits: x }, Value::BitVec { width: wb, bits: y })
            if wa == wb =>
        {
            Some(x.cmp(y))
        }
        _ => None,
    }
}

/// An atomic predicate over a route value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// The route equals a value exactly.
    EqRoute(Value),
    /// The (option-typed) route is present.
    IsSome,
    /// The (option-typed) route is absent.
    IsNone,
    /// For option-typed routes: absent, **or** the payload component at
    /// `path` passes the test. The guard makes the atom hold vacuously on
    /// `∞`, which is what interface conjuncts that constrain "whatever route
    /// you might have" need (compare the paper's `s = ∞ ∨ …` interfaces).
    Guarded {
        /// Record field path into the payload (empty: the payload itself).
        path: Vec<String>,
        /// The test applied to the addressed component.
        test: FieldTest,
    },
    /// For non-option routes: the component at `path` passes the test
    /// (empty path: the route itself).
    Direct {
        /// Record field path into the route (empty: the route itself).
        path: Vec<String>,
        /// The test applied to the addressed component.
        test: FieldTest,
    },
}

fn project<'v>(mut v: &'v Value, path: &[String]) -> Option<&'v Value> {
    for f in path {
        v = v.field(f)?;
    }
    Some(v)
}

fn project_expr(mut e: Expr, path: &[String]) -> Expr {
    for f in path {
        e = e.field(f.clone());
    }
    e
}

impl Atom {
    /// Does the atom hold on a concrete route value?
    pub fn holds(&self, route: &Value) -> bool {
        match self {
            Atom::EqRoute(v) => route == v,
            Atom::IsSome => route.is_some_option() == Some(true),
            Atom::IsNone => route.is_some_option() == Some(false),
            Atom::Guarded { path, test } => match route.is_some_option() {
                Some(false) => true,
                Some(true) => {
                    let payload = route.unwrap_or_default().expect("present option");
                    project(&payload, path).is_some_and(|c| test.holds(c))
                }
                None => false,
            },
            Atom::Direct { path, test } => project(route, path).is_some_and(|c| test.holds(c)),
        }
    }

    /// The atom as a boolean expression over a route term.
    pub fn expr(&self, route: &Expr) -> Expr {
        match self {
            Atom::EqRoute(v) => route.clone().eq(Expr::constant(v.clone())),
            Atom::IsSome => route.clone().is_some(),
            Atom::IsNone => route.clone().is_none(),
            Atom::Guarded { path, test } => {
                let component = project_expr(route.clone().get_some(), path);
                route.clone().is_none().or(test.expr(component))
            }
            Atom::Direct { path, test } => test.expr(project_expr(route.clone(), path)),
        }
    }

    /// A human-readable rendering (used in reports).
    pub fn describe(&self) -> String {
        let test = |t: &FieldTest, path: &[String]| {
            let at = if path.is_empty() { ".".to_owned() } else { path.join(".") };
            match t {
                FieldTest::Eq(v) => format!("{at} = {v}"),
                FieldTest::Le(v) => format!("{at} ≤ {v}"),
                FieldTest::Ge(v) => format!("{at} ≥ {v}"),
                FieldTest::Has(tag) => format!("{tag} ∈ {at}"),
                FieldTest::Lacks(tag) => format!("{tag} ∉ {at}"),
            }
        };
        match self {
            Atom::EqRoute(v) => format!("route = {v}"),
            Atom::IsSome => "route ≠ ∞".to_owned(),
            Atom::IsNone => "route = ∞".to_owned(),
            Atom::Guarded { path, test: t } => format!("(route = ∞ ∨ {})", test(t, path)),
            Atom::Direct { path, test: t } => test(t, path),
        }
    }
}

/// The conjunction of a set of atoms over a route term (`true` when empty).
pub fn conjunction(atoms: &[Atom], route: &Expr) -> Expr {
    Expr::and_all(atoms.iter().map(|a| a.expr(route)))
}

/// Generates every atom of the grammar that holds on **all** of `values`.
///
/// The grammar, driven by the route type:
///
/// * exact equality, when all values coincide;
/// * `IsSome`/`IsNone` for option routes with uniform presence;
/// * per-component tests (recursing through records): equality when a
///   component is constant across observations, `Le(max)`/`Ge(min)` bounds
///   for numeric components, membership/absence per set tag. For option
///   routes the component tests are guarded (`∞ ∨ …`) and range over the
///   *present* observations only.
///
/// Returns an empty vector for an empty observation set (nothing can be
/// justified by no evidence).
pub fn atoms_for(values: &[&Value]) -> Vec<Atom> {
    let Some(first) = values.first() else { return Vec::new() };
    let mut atoms = Vec::new();
    if values.iter().all(|v| v == first) {
        atoms.push(Atom::EqRoute((*first).clone()));
    }
    match first.is_some_option() {
        Some(_) => {
            // option route: uniform-presence atoms + guarded payload tests
            if values.iter().all(|v| v.is_some_option() == Some(true)) {
                atoms.push(Atom::IsSome);
            }
            if values.iter().all(|v| v.is_some_option() == Some(false)) {
                atoms.push(Atom::IsNone);
            }
            let payloads: Vec<Value> = values
                .iter()
                .filter(|v| v.is_some_option() == Some(true))
                .filter_map(|v| v.unwrap_or_default())
                .collect();
            if !payloads.is_empty() {
                let refs: Vec<&Value> = payloads.iter().collect();
                component_atoms(&refs, &mut Vec::new(), &mut |path, test| {
                    atoms.push(Atom::Guarded { path, test });
                });
            }
        }
        None => {
            component_atoms(values, &mut Vec::new(), &mut |path, test| {
                atoms.push(Atom::Direct { path, test });
            });
        }
    }
    atoms
}

/// Emits every component test consistent with all of `values` (which share a
/// type), recursing through record fields.
fn component_atoms(
    values: &[&Value],
    path: &mut Vec<String>,
    emit: &mut impl FnMut(Vec<String>, FieldTest),
) {
    let first = values[0];
    match first {
        Value::Record { def, .. } => {
            for (name, _) in def.fields() {
                let fields: Vec<&Value> = values.iter().filter_map(|v| v.field(name)).collect();
                if fields.len() == values.len() {
                    path.push(name.clone());
                    component_atoms(&fields, path, emit);
                    path.pop();
                }
            }
        }
        Value::Set { def, .. } => {
            let def = def.clone();
            for tag in def.universe() {
                if values.iter().all(|v| v.contains_tag(tag) == Some(true)) {
                    emit(path.clone(), FieldTest::Has(tag.clone()));
                }
                if values.iter().all(|v| v.contains_tag(tag) == Some(false)) {
                    emit(path.clone(), FieldTest::Lacks(tag.clone()));
                }
            }
        }
        Value::Int(_) | Value::BitVec { .. } => {
            // equality when constant, PLUS the interval bounds either way:
            // the bounds are deliberately redundant so that when a repair
            // drops the (too-strong) equality, the one-sided bounds survive
            // — e.g. "len = 2" weakens to "len ≥ 2", not to nothing
            if values.iter().all(|v| v == &first) {
                emit(path.clone(), FieldTest::Eq(first.clone()));
            }
            let mut lo = first;
            let mut hi = first;
            for v in values {
                if cmp_numeric(v, lo).is_some_and(|o| o.is_lt()) {
                    lo = v;
                }
                if cmp_numeric(v, hi).is_some_and(|o| o.is_gt()) {
                    hi = v;
                }
            }
            emit(path.clone(), FieldTest::Le(hi.clone()));
            emit(path.clone(), FieldTest::Ge(lo.clone()));
        }
        Value::Bool(_) | Value::Enum { .. } => {
            if values.iter().all(|v| v == &first) {
                emit(path.clone(), FieldTest::Eq(first.clone()));
            }
        }
        Value::Option { .. } => {
            // nested options do not occur in the benchmark schemas; pin
            // exactly when constant
            if values.iter().all(|v| v == &first) {
                emit(path.clone(), FieldTest::Eq(first.clone()));
            }
        }
    }
}

/// Atoms consistent with all of `values` that additionally **rule out**
/// `bad`: the strengthening moves available to the CEGIS loop when a
/// counterexample exhibits a route the observations never showed.
pub fn separating_atoms(values: &[&Value], bad: &Value) -> Vec<Atom> {
    atoms_for(values).into_iter().filter(|a| !a.holds(bad)).collect()
}

/// Whether `ty` is a route type the atom grammar can describe (everything the
/// expression IR can type, in practice).
pub fn supported_route_type(_ty: &Type) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::Env;

    fn eval(atom: &Atom, v: &Value) -> bool {
        let r = Expr::var("r", v.type_of());
        let mut env = Env::new();
        env.bind("r", v.clone());
        atom.expr(&r).eval_bool(&env).unwrap()
    }

    #[test]
    fn bool_route_atoms() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        let atoms = atoms_for(&[&t]);
        assert!(atoms.contains(&Atom::EqRoute(t.clone())));
        for a in &atoms {
            assert!(a.holds(&t));
            assert_eq!(a.holds(&t), eval(a, &t), "{a:?}");
            assert_eq!(a.holds(&f), eval(a, &f), "{a:?}");
        }
        // mixed observations: no equality atom survives
        let atoms = atoms_for(&[&t, &f]);
        assert!(atoms.iter().all(|a| a.holds(&t) && a.holds(&f)));
        assert!(!atoms.contains(&Atom::EqRoute(t)));
    }

    #[test]
    fn option_int_atoms_guard_absence() {
        let none = Value::none(Type::Int);
        let two = Value::some(Value::int(2));
        let three = Value::some(Value::int(3));
        let atoms = atoms_for(&[&none, &two, &three]);
        // every generated atom holds on every observation
        for a in &atoms {
            for v in [&none, &two, &three] {
                assert!(a.holds(v), "{a:?} on {v:?}");
                assert_eq!(a.holds(v), eval(a, v), "{a:?} on {v:?}");
            }
        }
        // the numeric bounds are over the present payloads
        assert!(atoms.contains(&Atom::Guarded { path: vec![], test: FieldTest::Le(Value::int(3)) }));
        assert!(atoms.contains(&Atom::Guarded { path: vec![], test: FieldTest::Ge(Value::int(2)) }));
        // a spuriously short route is ruled out by the lower bound
        let one = Value::some(Value::int(1));
        let sep = separating_atoms(&[&none, &two, &three], &one);
        assert!(sep.contains(&Atom::Guarded { path: vec![], test: FieldTest::Ge(Value::int(2)) }));
        // but `none` cannot be separated from guarded atoms — only IsSome-style
        let sep_none = separating_atoms(&[&two, &three], &none);
        assert!(sep_none.contains(&Atom::IsSome));
    }

    #[test]
    fn record_atoms_recurse_and_separate() {
        let ty = Type::record("R", [("lp", Type::BitVec(32)), ("len", Type::Int)]);
        let def = ty.record_def().unwrap().clone();
        let mk = |lp: u64, len: i64| {
            Value::some(Value::record(&def, vec![Value::bv(lp, 32), Value::int(len)]))
        };
        let a = mk(100, 2);
        let b = mk(100, 3);
        let atoms = atoms_for(&[&a, &b]);
        let lp_eq =
            Atom::Guarded { path: vec!["lp".into()], test: FieldTest::Eq(Value::bv(100, 32)) };
        let len_le = Atom::Guarded { path: vec!["len".into()], test: FieldTest::Le(Value::int(3)) };
        assert!(atoms.contains(&lp_eq));
        assert!(atoms.contains(&len_le));
        // a higher-lp "better" route is separated by the lp pin
        let better = mk(200, 1);
        let sep = separating_atoms(&[&a, &b], &better);
        assert!(sep.contains(&lp_eq));
        assert!(!sep.contains(&len_le) || !len_le.holds(&better));
        // semantics agree with the interpreter on all atoms and values
        for atom in &atoms {
            for v in [&a, &b, &better] {
                assert_eq!(atom.holds(v), eval(atom, v), "{atom:?} on {v}");
            }
        }
    }

    #[test]
    fn set_atoms_track_membership() {
        let ty = Type::set("T", ["down", "bte"]);
        let def = ty.set_def().unwrap().clone();
        let with_down = Value::set_of(&def, ["down"]);
        let empty = Value::set_of(&def, []);
        let atoms = atoms_for(&[&with_down]);
        assert!(atoms.contains(&Atom::Direct { path: vec![], test: FieldTest::Has("down".into()) }));
        assert!(
            atoms.contains(&Atom::Direct { path: vec![], test: FieldTest::Lacks("bte".into()) })
        );
        let sep = separating_atoms(&[&empty], &with_down);
        assert!(sep.contains(&Atom::Direct { path: vec![], test: FieldTest::Lacks("down".into()) }));
    }

    #[test]
    fn conjunction_is_true_when_empty() {
        let r = Expr::var("r", Type::Bool);
        let e = conjunction(&[], &r);
        let mut env = Env::new();
        env.bind("r", Value::Bool(false));
        assert!(e.eval_bool(&env).unwrap());
    }

    #[test]
    fn describe_is_total() {
        let atoms = [
            Atom::IsSome,
            Atom::IsNone,
            Atom::EqRoute(Value::Bool(true)),
            Atom::Guarded { path: vec!["lp".into()], test: FieldTest::Le(Value::bv(100, 32)) },
            Atom::Direct { path: vec![], test: FieldTest::Has("down".into()) },
            Atom::Direct { path: vec!["comms".into()], test: FieldTest::Lacks("bte".into()) },
            Atom::Guarded { path: vec![], test: FieldTest::Ge(Value::int(1)) },
            Atom::Direct { path: vec![], test: FieldTest::Eq(Value::int(0)) },
        ];
        for a in atoms {
            assert!(!a.describe().is_empty());
        }
    }
}
