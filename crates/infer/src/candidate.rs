//! Interface candidates: a witness time plus two conjunctions of atoms.
//!
//! A [`Candidate`] denotes the temporal operator
//!
//! ```text
//! G(always₁ ∧ … ∧ alwaysₘ)  ⊓  F^τ G(after₁ ∧ … ∧ afterₙ)
//! ```
//!
//! — "the `always` atoms hold at every time; from the witness time `τ` on,
//! the `after` atoms hold too". This is the `finally_at(τ, G φ)` shape the
//! paper uses for its hand-written fattree interfaces, generalized with a
//! global guard (compare `A_Len`'s `G(s = ∞ ∨ attrs-default)` conjunct).
//!
//! Candidates form a lattice the CEGIS loop moves through monotonically:
//! *strengthening* adds an atom to `always`, *weakening* drops atoms from
//! `after`/`always` or raises `τ`. All three moves are bounded (atoms come
//! from a finite observation-derived pool; `τ` is capped by the simulated
//! stabilization time), so repair terminates.

use timepiece_core::Temporal;
use timepiece_expr::Expr;

use crate::atoms::{conjunction, Atom};

/// One node's (or one role's) inferred interface candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Witness time: the `after` atoms hold from `tau` on.
    pub tau: u64,
    /// Atoms holding at *every* time (the global guard).
    pub always: Vec<Atom>,
    /// Atoms holding from `tau` on.
    pub after: Vec<Atom>,
}

impl Candidate {
    /// The trivial candidate `G(true)` (admits anything, forever).
    pub fn any() -> Candidate {
        Candidate { tau: 0, always: Vec::new(), after: Vec::new() }
    }

    /// Adds an atom to the global guard, if not already present. Returns
    /// whether the candidate changed.
    pub fn strengthen_always(&mut self, atom: Atom) -> bool {
        if self.always.contains(&atom) {
            return false;
        }
        self.always.push(atom);
        true
    }

    /// Adds an atom to the post-witness conjunction, if not already present.
    /// Returns whether the candidate changed.
    pub fn strengthen_after(&mut self, atom: Atom) -> bool {
        if self.after.contains(&atom) {
            return false;
        }
        self.after.push(atom);
        true
    }

    /// Drops every atom the observed bad route violates — always from the
    /// global guard, and from the post-witness conjunction too when the
    /// failing time is at or past `tau`. Returns the dropped atoms, per
    /// conjunction, so callers can blocklist them.
    pub fn weaken_against(
        &mut self,
        bad: &timepiece_expr::Value,
        at_or_after_tau: bool,
    ) -> (Vec<Atom>, Vec<Atom>) {
        let mut dropped_always = Vec::new();
        self.always.retain(|a| {
            let keep = a.holds(bad);
            if !keep {
                dropped_always.push(a.clone());
            }
            keep
        });
        let mut dropped_after = Vec::new();
        if at_or_after_tau {
            self.after.retain(|a| {
                let keep = a.holds(bad);
                if !keep {
                    dropped_after.push(a.clone());
                }
                keep
            });
        }
        (dropped_always, dropped_after)
    }

    /// Raises the witness time. Returns whether it changed.
    pub fn raise_tau(&mut self, tau: u64) -> bool {
        if tau > self.tau {
            self.tau = tau;
            true
        } else {
            false
        }
    }

    /// The candidate as a [`Temporal`] operator.
    pub fn temporal(&self) -> Temporal {
        let after = self.after.clone();
        let tail = Temporal::globally(move |r: &Expr| conjunction(&after, r));
        let timed =
            if self.tau == 0 { tail } else { Temporal::finally(Expr::int(self.tau as i64), tail) };
        if self.always.is_empty() {
            timed
        } else {
            let always = self.always.clone();
            Temporal::globally(move |r: &Expr| conjunction(&always, r)).and(timed)
        }
    }

    /// A human-readable rendering (used in reports).
    pub fn describe(&self) -> String {
        let join = |atoms: &[Atom]| {
            if atoms.is_empty() {
                "true".to_owned()
            } else {
                atoms.iter().map(Atom::describe).collect::<Vec<_>>().join(" ∧ ")
            }
        };
        match (self.always.is_empty(), self.tau) {
            (true, 0) => format!("G({})", join(&self.after)),
            (true, t) => format!("F^{t} G({})", join(&self.after)),
            (false, 0) => format!("G({}) ⊓ G({})", join(&self.always), join(&self.after)),
            (false, t) => format!("G({}) ⊓ F^{t} G({})", join(&self.always), join(&self.after)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::FieldTest;
    use timepiece_expr::{Env, Type, Value};

    fn holds(op: &Temporal, t: i64, route: Value) -> bool {
        let r = Expr::var("r", route.type_of());
        let tv = Expr::var("t", Type::Int);
        let e = op.at(&tv, &r);
        let mut env = Env::new();
        env.bind("r", route);
        env.bind("t", Value::int(t));
        e.eval_bool(&env).unwrap()
    }

    fn ge_atom(n: i64) -> Atom {
        Atom::Direct { path: vec![], test: FieldTest::Ge(Value::int(n)) }
    }

    #[test]
    fn temporal_switches_at_tau() {
        let cand = Candidate { tau: 3, always: vec![ge_atom(0)], after: vec![ge_atom(5)] };
        let op = cand.temporal();
        // before tau only the guard applies
        assert!(holds(&op, 0, Value::int(1)));
        assert!(!holds(&op, 0, Value::int(-1)));
        // from tau on both apply
        assert!(holds(&op, 3, Value::int(7)));
        assert!(!holds(&op, 3, Value::int(4)));
    }

    #[test]
    fn tau_zero_has_no_until() {
        let cand = Candidate { tau: 0, always: Vec::new(), after: vec![ge_atom(5)] };
        assert!(holds(&cand.temporal(), 0, Value::int(5)));
        assert!(!holds(&cand.temporal(), 0, Value::int(4)));
    }

    #[test]
    fn lattice_moves() {
        let mut cand = Candidate::any();
        assert!(cand.strengthen_after(ge_atom(5)));
        assert!(!cand.strengthen_after(ge_atom(5)), "no duplicate atoms");
        assert!(cand.strengthen_always(ge_atom(0)));
        assert!(cand.raise_tau(2));
        assert!(!cand.raise_tau(1), "tau only rises");
        // a bad route at/after tau drops both violated conjuncts
        let (dropped_always, dropped_after) = cand.weaken_against(&Value::int(-3), true);
        assert_eq!(dropped_always, vec![ge_atom(0)]);
        assert_eq!(dropped_after, vec![ge_atom(5)]);
        assert!(cand.always.is_empty() && cand.after.is_empty());
    }

    #[test]
    fn weaken_before_tau_spares_after() {
        let mut cand = Candidate { tau: 2, always: vec![ge_atom(0)], after: vec![ge_atom(5)] };
        let (dropped_always, dropped_after) = cand.weaken_against(&Value::int(1), false);
        assert!(dropped_always.is_empty(), "guard holds on the bad route");
        assert!(dropped_after.is_empty());
        let (dropped_always, dropped_after) = cand.weaken_against(&Value::int(-1), false);
        assert_eq!(dropped_always, vec![ge_atom(0)]);
        assert!(dropped_after.is_empty());
        assert_eq!(cand.after.len(), 1, "after conjunct untouched before tau");
    }

    #[test]
    fn describe_shapes() {
        assert_eq!(Candidate::any().describe(), "G(true)");
        let c = Candidate { tau: 4, always: vec![ge_atom(0)], after: vec![ge_atom(5)] };
        let s = c.describe();
        assert!(s.contains("F^4"), "{s}");
        assert!(s.contains("⊓"), "{s}");
    }
}
