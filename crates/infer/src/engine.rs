//! The inference engine: simulate, lift, generalize, check, repair.
//!
//! The pipeline (see the crate docs for the full story):
//!
//! 1. **Simulate** the network to convergence with the reference simulator,
//!    once per closing input environment.
//! 2. **Lift** each node's trace into a candidate `G(always) ⊓ F^τ G(after)`
//!    interface: `τ` is the observed stabilization time, `always`/`after`
//!    are every atom of the grammar consistent with the whole trace /
//!    the stable tail (cf. [`timepiece_core::Temporal::from_trace`], which
//!    is the exact, single-node version of this lifting).
//! 3. **Generalize** across a [`RoleMap`]: one candidate per symmetry role,
//!    justified by the union of the members' observations.
//! 4. **Check** the candidates with the modular checker and **repair**
//!    CEGIS-style on counterexamples — strengthen a neighbor whose
//!    falsifying route the simulation never exhibited, weaken the failing
//!    node (raise `τ` toward the simulated stabilization time, drop violated
//!    atoms) otherwise — re-checking only the nodes a repair affects, until
//!    a fixpoint or a bounded give-up.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use timepiece_algebra::Network;
use timepiece_core::check::{CheckOptions, Failure, FailureReason, ModularChecker};
use timepiece_core::stats::TimingStats;
use timepiece_core::{CoreError, NodeAnnotations, Temporal, VcKind};
use timepiece_expr::{Env, Expr, Value};
use timepiece_sim::{simulate, SimError};
use timepiece_topology::NodeId;

use crate::atoms::Atom;
use crate::candidate::Candidate;
use crate::roles::RoleMap;
use crate::schema::AtomGrammar;

/// Options controlling inference.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Simulation step budget; inference fails on non-convergent networks.
    pub max_steps: usize,
    /// Bound on CEGIS repair rounds before giving up.
    pub max_rounds: usize,
    /// Checker options used for candidate validation (delay, timeout, …).
    pub check: CheckOptions,
}

impl Default for InferOptions {
    fn default() -> InferOptions {
        InferOptions { max_steps: 64, max_rounds: 64, check: CheckOptions::default() }
    }
}

/// An error that aborts inference entirely (per-node trouble is reported as
/// a give-up instead).
#[derive(Debug)]
pub enum InferError {
    /// The reference simulator failed (unbound symbolic input, ill-typed
    /// network function).
    Sim(SimError),
    /// The simulation did not converge within the step budget.
    Unconverged {
        /// The exhausted budget.
        steps: usize,
    },
    /// A verification condition could not be encoded.
    Check(CoreError),
    /// Inference needs at least one closing input environment.
    NoInputs,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Sim(e) => write!(f, "simulation failed: {e}"),
            InferError::Unconverged { steps } => {
                write!(f, "simulation did not converge within {steps} steps")
            }
            InferError::Check(e) => write!(f, "candidate validation failed: {e}"),
            InferError::NoInputs => write!(f, "inference requires at least one input environment"),
        }
    }
}

impl std::error::Error for InferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferError::Sim(e) => Some(e),
            InferError::Check(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for InferError {
    fn from(e: SimError) -> InferError {
        InferError::Sim(e)
    }
}

impl From<CoreError> for InferError {
    fn from(e: CoreError) -> InferError {
        InferError::Check(e)
    }
}

/// One role's final inferred template, for reporting and quality
/// comparisons against hand-written interfaces.
#[derive(Debug, Clone)]
pub struct RoleTemplate {
    /// The role's display name.
    pub role: String,
    /// How many nodes share the template.
    pub members: usize,
    /// The inferred witness time `τ`.
    pub tau: u64,
    /// Conjuncts in the global guard.
    pub always_atoms: usize,
    /// Conjuncts in the post-witness predicate.
    pub after_atoms: usize,
    /// A human-readable rendering of the whole template.
    pub rendering: String,
}

/// What the CEGIS loop did to arrive at the final annotations.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Did the modular checker verify the final annotations?
    pub verified: bool,
    /// Repair rounds performed (0: the seeded candidates verified as-is).
    pub rounds: usize,
    /// Per-node repair counts (only nodes that triggered at least one).
    pub node_repairs: Vec<(NodeId, usize)>,
    /// Nodes whose failures no available repair could address.
    pub gave_up: Vec<NodeId>,
    /// Failures outstanding at the end (empty when verified).
    pub failures: Vec<Failure>,
    /// One final template per role.
    pub role_templates: Vec<RoleTemplate>,
    /// Wall time of the simulations.
    pub sim_wall: Duration,
    /// Cumulative wall time of all node checks (initial + incremental).
    pub check_wall: Duration,
    /// Total node checks performed across all rounds.
    pub checks: usize,
    /// End-to-end inference wall time.
    pub wall: Duration,
    /// Statistics over the *final* per-node check durations.
    pub stats: TimingStats,
}

impl InferenceReport {
    /// Total repairs across all nodes.
    pub fn total_repairs(&self) -> usize {
        self.node_repairs.iter().map(|(_, n)| n).sum()
    }
}

/// The outcome of inference: annotations plus the report.
#[derive(Debug, Clone)]
pub struct Inferred {
    /// The inferred per-node interfaces.
    pub interface: NodeAnnotations,
    /// How inference went.
    pub report: InferenceReport,
}

/// Synthesizes [`NodeAnnotations`] from simulation and counterexamples.
#[derive(Debug, Clone, Default)]
pub struct InferenceEngine {
    options: InferOptions,
}

impl InferenceEngine {
    /// Creates an engine with the given options.
    pub fn new(options: InferOptions) -> InferenceEngine {
        InferenceEngine { options }
    }

    /// Runs the full pipeline: [`InferenceEngine::prepare`] then
    /// [`Inference::solve`].
    ///
    /// # Errors
    ///
    /// See [`InferenceEngine::prepare`] and [`Inference::solve`].
    pub fn infer(
        &self,
        net: &Network,
        property: &NodeAnnotations,
        roles: RoleMap,
        inputs: &[Env],
    ) -> Result<Inferred, InferError> {
        self.prepare(net, property, roles, inputs)?.solve()
    }

    /// Simulates the network and seeds one candidate per role, without
    /// validating anything yet. The returned [`Inference`] exposes the seeds
    /// for inspection (or deliberate sabotage, in tests) before
    /// [`Inference::solve`] runs the check/repair loop.
    ///
    /// `inputs` must close the network: one environment binding every
    /// symbolic per scenario to cover (pass `&[Env::new()]` for networks
    /// without symbolics). Candidates are justified against *all* scenarios.
    ///
    /// # Errors
    ///
    /// * [`InferError::NoInputs`] for an empty input slice;
    /// * [`InferError::Sim`] / [`InferError::Unconverged`] when simulation
    ///   fails or exhausts its budget.
    pub fn prepare<'n>(
        &self,
        net: &'n Network,
        property: &'n NodeAnnotations,
        roles: RoleMap,
        inputs: &[Env],
    ) -> Result<Inference<'n>, InferError> {
        if inputs.is_empty() {
            return Err(InferError::NoInputs);
        }
        let sim_start = Instant::now();
        let mut traces = Vec::with_capacity(inputs.len());
        {
            let mut sim_span = timepiece_trace::span(timepiece_trace::Phase::Sim, "simulate");
            sim_span.arg("scenarios", inputs.len().to_string());
            for env in inputs {
                let trace = simulate(net, env, self.options.max_steps)?;
                if trace.converged_at().is_none() {
                    return Err(InferError::Unconverged { steps: self.options.max_steps });
                }
                traces.push(trace);
            }
        }
        let sim_wall = sim_start.elapsed();

        let g = net.topology();
        // per-node stabilization time: the first step from which the trace
        // no longer changes, maximized over scenarios
        let mut stab = vec![0u64; g.node_count()];
        for trace in &traces {
            let states = trace.states();
            let last = states.last().expect("nonempty trace");
            for v in g.nodes() {
                let i = v.index();
                let mut s = 0;
                for t in (0..states.len() - 1).rev() {
                    if states[t][i] != last[i] {
                        s = (t + 1) as u64;
                        break;
                    }
                }
                stab[i] = stab[i].max(s);
            }
        }

        // per-role observation sets and seeded candidates
        let mut role_all: Vec<Vec<&Value>> = vec![Vec::new(); roles.role_count()];
        let mut role_stable: Vec<Vec<&Value>> = vec![Vec::new(); roles.role_count()];
        let mut role_stab = vec![0u64; roles.role_count()];
        for v in g.nodes() {
            let role = roles.role_of(v);
            for trace in &traces {
                for state in trace.states() {
                    role_all[role].push(&state[v.index()]);
                }
                role_stable[role].push(&trace.states().last().expect("nonempty")[v.index()]);
            }
            role_stab[role] = role_stab[role].max(stab[v.index()]);
        }
        // inference-guided delay (§4): the simulator is synchronous, but the
        // bounded-delay inductive condition lets every hop take up to
        // `1 + delay` time units — so a value observed to stabilize at time
        // `s` (i.e. after `s` propagation hops) is only guaranteed stable by
        // `s·(1 + delay)`. Widening the witness-time ceiling keeps the
        // inferred interfaces inductive under delay; with `delay = 0` this
        // is the identity.
        let widen = self.options.check.delay.saturating_add(1);
        for stab in &mut role_stab {
            *stab = stab.saturating_mul(widen);
        }
        // the justified atom pools are fixed from here on: compute them once
        // per role, seed the candidates from them, and let repairs filter the
        // pools per counterexample instead of re-deriving them. The grammar
        // comes from the network's route schema when it carries the policy
        // IR (field paths and tag universes are then schema facts, not
        // observation artifacts), with the value-recursive grammar as the
        // fallback for closure-built networks.
        let grammar = AtomGrammar::for_network(net);
        let pool_always: Vec<Vec<Atom>> = role_all.iter().map(|vs| grammar.atoms(vs)).collect();
        let pool_after: Vec<Vec<Atom>> = role_stable.iter().map(|vs| grammar.atoms(vs)).collect();
        let candidates: Vec<Candidate> = (0..roles.role_count())
            .map(|role| Candidate {
                tau: role_stab[role],
                always: pool_always[role].clone(),
                after: pool_after[role].clone(),
            })
            .collect();
        let roles_count = roles.role_count();

        Ok(Inference {
            options: self.options.clone(),
            net,
            property,
            roles,
            candidates,
            pool_always,
            pool_after,
            role_stab,
            blocked_always: vec![HashSet::new(); roles_count],
            blocked_after: vec![HashSet::new(); roles_count],
            sim_wall,
        })
    }
}

/// A prepared inference problem: seeded candidates awaiting the check/repair
/// loop. Produced by [`InferenceEngine::prepare`].
#[derive(Debug)]
pub struct Inference<'n> {
    options: InferOptions,
    net: &'n Network,
    property: &'n NodeAnnotations,
    roles: RoleMap,
    candidates: Vec<Candidate>,
    /// Per role, every atom justified by all the members ever exhibited
    /// (the `always` strengthening pool — fixed after [`prepare`]).
    ///
    /// [`prepare`]: InferenceEngine::prepare
    pool_always: Vec<Vec<Atom>>,
    /// Per role, every atom justified by the members' stable tails (the
    /// `after` strengthening pool).
    pool_after: Vec<Vec<Atom>>,
    /// The maximal member stabilization time per role (the `τ` ceiling).
    role_stab: Vec<u64>,
    /// Atoms weakening dropped from a role's `always` guard; strengthening
    /// never re-adds them there (termination of the add/drop interplay).
    blocked_always: Vec<HashSet<Atom>>,
    /// Likewise for the post-witness conjunction.
    blocked_after: Vec<HashSet<Atom>>,
    sim_wall: Duration,
}

impl Inference<'_> {
    /// The seeded (or current) candidate of a role.
    pub fn candidate(&self, role: usize) -> &Candidate {
        &self.candidates[role]
    }

    /// Replaces a role's candidate — the hook tests use to plant a
    /// deliberately broken seed and watch the repair loop fix it.
    pub fn set_candidate(&mut self, role: usize, candidate: Candidate) {
        self.candidates[role] = candidate;
    }

    /// The role map.
    pub fn roles(&self) -> &RoleMap {
        &self.roles
    }

    /// The current candidates as annotations.
    pub fn annotations(&self) -> NodeAnnotations {
        NodeAnnotations::from_fn(self.net.topology(), |v| {
            self.candidates[self.roles.role_of(v)].temporal()
        })
    }

    /// Runs the counterexample-guided check/repair loop to a fixpoint (every
    /// node verified) or a bounded give-up, and assembles the result.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::Check`] if a verification condition cannot be
    /// encoded — candidate atoms compile by construction, so this indicates
    /// an ill-typed network or property.
    pub fn solve(mut self) -> Result<Inferred, InferError> {
        let start = Instant::now();
        let g = self.net.topology();
        let checker = ModularChecker::new(self.options.check.clone());

        let mut interface = self.annotations();
        // latest check result per node; a node's conditions depend only on
        // its own and its predecessors' annotations, so results stay valid
        // until one of those changes
        let mut latest: BTreeMap<NodeId, (Vec<Failure>, Duration)> = BTreeMap::new();
        let mut pending: BTreeSet<NodeId> = g.nodes().collect();
        let mut repairs: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut gave_up: BTreeSet<NodeId> = BTreeSet::new();
        let mut check_wall = Duration::ZERO;
        let mut checks = 0usize;
        let mut rounds = 0usize;

        loop {
            let mut round_span =
                timepiece_trace::span(timepiece_trace::Phase::Round, format!("round{rounds}"));
            round_span.arg("pending", pending.len().to_string());
            for v in std::mem::take(&mut pending) {
                let t0 = Instant::now();
                let result = checker.check_node(self.net, &interface, self.property, v)?;
                check_wall += t0.elapsed();
                checks += 1;
                latest.insert(v, result);
            }
            let failing: Vec<NodeId> =
                latest.iter().filter(|(_, (fs, _))| !fs.is_empty()).map(|(&v, _)| v).collect();
            round_span.arg("failing", failing.len().to_string());
            if failing.is_empty() || rounds >= self.options.max_rounds {
                break;
            }
            rounds += 1;

            let mut changed_roles: BTreeSet<usize> = BTreeSet::new();
            gave_up.clear();
            for v in failing {
                // a repair this round may have already invalidated the
                // counterexample; skip and let the re-check decide
                let stale = changed_roles.contains(&self.roles.role_of(v))
                    || g.preds(v).iter().any(|&u| changed_roles.contains(&self.roles.role_of(u)));
                if stale {
                    continue;
                }
                let failure = latest[&v].0.first().expect("failing node has a failure").clone();
                match self.repair(&failure) {
                    Some(roles) if !roles.is_empty() => {
                        *repairs.entry(v).or_insert(0) += 1;
                        changed_roles.extend(roles);
                    }
                    _ => {
                        gave_up.insert(v);
                    }
                }
            }
            if changed_roles.is_empty() {
                break;
            }
            interface = self.annotations();
            // re-check the members of every modified role and their
            // successors (whose inductive conditions assumed the old
            // interfaces); everything else keeps its latest result
            for &role in &changed_roles {
                for m in self.roles.members(role) {
                    pending.insert(m);
                    pending.extend(g.succs(m).iter().copied());
                }
            }
        }

        let failures: Vec<Failure> =
            latest.values().flat_map(|(fs, _)| fs.iter().cloned()).collect();
        let durations: Vec<Duration> = latest.values().map(|(_, d)| *d).collect();
        let verified = failures.is_empty();
        let report = InferenceReport {
            verified,
            rounds,
            node_repairs: repairs.into_iter().collect(),
            gave_up: gave_up.into_iter().collect(),
            failures,
            role_templates: (0..self.roles.role_count())
                .map(|r| RoleTemplate {
                    role: self.roles.name(r).to_owned(),
                    members: self.roles.members(r).count(),
                    tau: self.candidates[r].tau,
                    always_atoms: self.candidates[r].always.len(),
                    after_atoms: self.candidates[r].after.len(),
                    rendering: self.candidates[r].describe(),
                })
                .collect(),
            sim_wall: self.sim_wall,
            check_wall,
            checks,
            wall: start.elapsed(),
            stats: TimingStats::from_durations(&durations),
        };
        Ok(Inferred { interface, report })
    }

    /// Attempts one repair for a failure, returning the modified roles
    /// (`None`/empty: nothing this loop can do about it).
    fn repair(&mut self, failure: &Failure) -> Option<Vec<usize>> {
        let env = match &failure.reason {
            FailureReason::CounterExample(cex) => cex.assignment.clone(),
            // solver gave up: no counterexample to learn from
            FailureReason::Unknown(_) => return None,
        };
        let v = failure.node;
        let role = self.roles.role_of(v);
        match failure.vc {
            VcKind::Initial => self.repair_initial(v, role, &env),
            VcKind::Inductive => self.repair_inductive(v, role, &env),
            VcKind::Safety => self.repair_safety(v, role, &env),
        }
    }

    /// Initial condition: `I(v) ∈ A(v)(0)`. The initial value is (by
    /// construction of the seeds) in every trace, so a failure means a
    /// sabotaged or over-generalized candidate: raise `τ` back to the
    /// simulated stabilization time, then drop atoms `I(v)` violates.
    fn repair_initial(&mut self, v: NodeId, role: usize, env: &Env) -> Option<Vec<usize>> {
        let init = self.net.init(v).eval(env).ok()?;
        let cand = &mut self.candidates[role];
        let mut changed = false;
        if cand.tau == 0 && cand.raise_tau(self.role_stab[role]) {
            changed = true;
        }
        if cand.tau == 0 || !cand.always.iter().all(|a| a.holds(&init)) {
            let at_zero = cand.tau == 0;
            let dropped = self.weaken(role, &init, at_zero);
            changed |= dropped > 0;
        }
        changed.then(|| vec![role])
    }

    /// Inductive condition: merged neighbor routes drawn from the interfaces
    /// at `t` must land in `A(v)(t + delay + 1)`. Prefer *strengthening* a
    /// neighbor whose falsifying route the simulation never exhibited (the
    /// counterexample is spurious noise the neighbor's candidate is too weak
    /// to exclude); otherwise *weaken* `v` itself.
    fn repair_inductive(&mut self, v: NodeId, role: usize, env: &Env) -> Option<Vec<usize>> {
        let g = self.net.topology();
        let t_val = env.get("t").and_then(|t| t.as_int()).unwrap_or(0);
        let mut modified = Vec::new();
        for &u in g.preds(v) {
            let Some(r_u) = env.get(&self.net.route_var_name(u)) else { continue };
            let r_u = r_u.clone();
            let u_role = self.roles.role_of(u);
            if let Some(atom) = self.pick_strengthening(u_role, &r_u) {
                if self.candidates[u_role].strengthen_always(atom) {
                    modified.push(u_role);
                    continue;
                }
            }
            // the counterexample time is past `u`'s simulated stabilization,
            // yet the route differs from everything the stable tail showed:
            // `u`'s post-witness conjunction is too weak (or its witness time
            // was sabotaged below the stabilization time)
            if t_val >= i128::from(self.role_stab[u_role]) {
                if let Some(atom) = self.pick_after_strengthening(u_role, &r_u) {
                    if self.strengthen_after_role(u_role, atom) {
                        modified.push(u_role);
                    }
                }
            }
        }
        if !modified.is_empty() {
            modified.sort_unstable();
            modified.dedup();
            return Some(modified);
        }

        // no neighbor to blame: weaken v
        let t_goal = t_val + i128::from(self.options.check.delay) + 1;
        let cand = &self.candidates[role];
        let at_or_after = t_goal >= i128::from(cand.tau);
        if at_or_after && cand.tau < self.role_stab[role] {
            // the candidate claims stability earlier than the simulation
            // ever showed: push the witness time back out
            self.candidates[role].raise_tau(self.role_stab[role]);
            return Some(vec![role]);
        }
        let neighbor_routes: Vec<Expr> =
            g.preds(v).iter().map(|&u| self.net.route_var(u)).collect();
        let stepped = self.net.step(v, &neighbor_routes).eval(env).ok()?;
        let dropped = self.weaken(role, &stepped, at_or_after);
        (dropped > 0).then(|| vec![role])
    }

    /// Safety condition: `A(v)(t) ⊆ P(v)(t)`. The candidate admits a route
    /// the property rejects; the only sound move is to strengthen the
    /// candidate with an atom the observations justify. If none separates
    /// the counterexample, the property disagrees with the simulated
    /// behavior itself and the node is beyond repair.
    fn repair_safety(&mut self, v: NodeId, role: usize, env: &Env) -> Option<Vec<usize>> {
        // read exactly the failing node's own route variable: the shared
        // solver session decodes *every* variable earlier conditions
        // declared, so the counterexample also carries arbitrary completion
        // values for predecessor routes — which may belong to this role too
        let r = env.get(&self.net.route_var_name(v))?.clone();
        let t = env.get("t").and_then(|t| t.as_int()).unwrap_or(0);
        let at_or_after = t >= i128::from(self.candidates[role].tau);
        if at_or_after {
            let atom = self.pick_after_strengthening(role, &r)?;
            self.strengthen_after_role(role, atom).then(|| vec![role])
        } else {
            let atom = self.pick_strengthening(role, &r)?;
            self.candidates[role].strengthen_always(atom).then(|| vec![role])
        }
    }

    /// An atom consistent with the stable tails of `role`'s members that
    /// rules out `bad`, if any separator is still available.
    fn pick_after_strengthening(&self, role: usize, bad: &Value) -> Option<Atom> {
        self.pool_after[role]
            .iter()
            .find(|a| {
                !a.holds(bad)
                    && !self.blocked_after[role].contains(*a)
                    && !self.candidates[role].after.contains(*a)
            })
            .cloned()
    }

    /// Adds an atom to a role's post-witness conjunction and restores the
    /// witness time to the simulated stabilization time (the atom is only
    /// justified from there on).
    fn strengthen_after_role(&mut self, role: usize, atom: Atom) -> bool {
        let stab = self.role_stab[role];
        let cand = &mut self.candidates[role];
        let added = cand.strengthen_after(atom);
        let raised = cand.raise_tau(stab);
        added || raised
    }

    /// An atom consistent with everything `role`'s members ever exhibited
    /// that rules out `bad` — `None` when `bad` is itself consistent with
    /// the observations (nothing to learn) or every separator was already
    /// spent.
    fn pick_strengthening(&self, role: usize, bad: &Value) -> Option<Atom> {
        self.pool_always[role]
            .iter()
            .find(|a| {
                !a.holds(bad)
                    && !self.blocked_always[role].contains(*a)
                    && !self.candidates[role].always.contains(*a)
            })
            .cloned()
    }

    /// Drops every atom of `role`'s candidate that `bad` violates,
    /// blocklisting them per conjunction so later strengthening cannot
    /// reintroduce them there (guaranteeing termination of the add/drop
    /// interplay).
    fn weaken(&mut self, role: usize, bad: &Value, at_or_after_tau: bool) -> usize {
        let (dropped_always, dropped_after) =
            self.candidates[role].weaken_against(bad, at_or_after_tau);
        let dropped = dropped_always.len() + dropped_after.len();
        self.blocked_always[role].extend(dropped_always);
        self.blocked_after[role].extend(dropped_after);
        dropped
    }
}

/// The exact stepwise interface of Theorem 3.3, per node, via
/// [`Temporal::from_trace`]: `A(v)(t) = {σ(v)(t)}` with the stable value
/// pinned globally from the end of the trace. Maximally precise and valid
/// for the closed synchronous semantics, but tied to one input environment
/// and one node — the generalizing pipeline above is what scales.
///
/// # Errors
///
/// [`InferError::Sim`] / [`InferError::Unconverged`] as for inference.
pub fn exact_interface(
    net: &Network,
    input: &Env,
    max_steps: usize,
) -> Result<NodeAnnotations, InferError> {
    let trace = simulate(net, input, max_steps)?;
    if trace.converged_at().is_none() {
        return Err(InferError::Unconverged { steps: max_steps });
    }
    Ok(NodeAnnotations::from_fn(net.topology(), |v| {
        let values: Vec<Value> =
            trace.states().iter().map(|state| state[v.index()].clone()).collect();
        Temporal::from_trace(&values)
    }))
}
