//! `timepiece-infer`: simulation-guided inference of temporal interfaces.
//!
//! The paper's modular checker (Algorithm 1) needs a per-node temporal
//! interface `A : V → N → 2^S` — and writing one is the human bottleneck:
//! every benchmark in `timepiece-nets` ships a hand-proved annotation. This
//! crate synthesizes the annotations automatically from the two ingredients
//! the codebase already has:
//!
//! * the **reference simulator** (`timepiece-sim`), which produces per-node
//!   traces `σ(v)(0), σ(v)(1), …` and convergence times for any closed
//!   network instance, and
//! * the **modular checker** (`timepiece-core`), whose counterexamples are
//!   decodable assignments the inference loop can learn from.
//!
//! # Pipeline
//!
//! 1. **Simulate and lift.** Run the network to convergence; lift each
//!    node's trace into a candidate interface of shape
//!    `G(always) ⊓ F^τ G(after)` — `τ` the observed stabilization time,
//!    `always`/`after` conjunctions of [`Atom`]s justified by the whole
//!    trace / its stable tail. (The exact single-trace version of this
//!    lifting is `Temporal::from_trace`, Theorem 3.3; see
//!    [`exact_interface`].)
//! 2. **Generalize.** Group symmetric nodes with a [`RoleMap`] (for
//!    fattrees: the six destination-relative symmetry classes of
//!    `FatTree::symmetry_class`) and keep one candidate per role, justified
//!    by the union of the members' observations. Annotation size becomes
//!    independent of the topology parameter `k`.
//! 3. **Check and repair (CEGIS).** Validate candidates with the modular
//!    checker. On a counterexample at node `v`: *strengthen* a neighbor
//!    whose falsifying route the simulation never exhibited (add a
//!    separating atom to its `always` guard), else *weaken* `v` (raise
//!    `τ` toward the simulated stabilization time, drop the atoms the
//!    counterexample's step violates). Only the modified roles' members and
//!    their successors are re-checked. Atoms move through a finite,
//!    blocklisted lattice, so the loop reaches a fixpoint or a bounded
//!    give-up, summarized in an [`InferenceReport`].
//!
//! # Example
//!
//! Infer interfaces for boolean reachability on a 3-node path, with zero
//! hand-written annotations:
//!
//! ```
//! use timepiece_algebra::NetworkBuilder;
//! use timepiece_core::{NodeAnnotations, Temporal};
//! use timepiece_expr::{Env, Expr, Type};
//! use timepiece_infer::{InferenceEngine, RoleMap};
//! use timepiece_topology::gen;
//!
//! let g = gen::undirected_path(3);
//! let v0 = g.node_by_name("v0").unwrap();
//! let net = NetworkBuilder::new(g, Type::Bool)
//!     .merge(|a, b| a.clone().or(b.clone()))
//!     .default_transfer(|r| r.clone())
//!     .init(v0, Expr::bool(true))
//!     .build()?;
//! // property: every node eventually holds the route, forever
//! let property = NodeAnnotations::new(
//!     net.topology(),
//!     Temporal::finally_at(2, Temporal::globally(|r| r.clone())),
//! );
//! let roles = RoleMap::singleton(net.topology());
//! let result = InferenceEngine::default().infer(&net, &property, roles, &[Env::new()])?;
//! assert!(result.report.verified);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atoms;
pub mod candidate;
pub mod engine;
pub mod roles;
pub mod schema;

pub use atoms::{atoms_for, separating_atoms, Atom, FieldTest};
pub use candidate::Candidate;
pub use engine::{
    exact_interface, InferError, InferOptions, Inference, InferenceEngine, InferenceReport,
    Inferred, RoleTemplate,
};
pub use roles::RoleMap;
pub use schema::{grammar, AtomGrammar, AtomTemplate, TemplateKind};

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_algebra::{Network, NetworkBuilder};
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_core::{NodeAnnotations, Temporal};
    use timepiece_expr::{Env, Expr, Type, Value};
    use timepiece_topology::gen;

    /// Boolean reachability on an undirected path: v0 originates, everyone
    /// else eventually learns the route.
    fn reach_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let v0 = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(v0, Expr::bool(true))
            .build()
            .unwrap()
    }

    fn reach_property(net: &Network) -> NodeAnnotations {
        let horizon = (net.topology().node_count() - 1) as u64;
        NodeAnnotations::new(
            net.topology(),
            Temporal::finally_at(horizon, Temporal::globally(|r| r.clone())),
        )
    }

    #[test]
    fn infers_path_reachability_without_annotations() {
        let net = reach_net(5);
        let property = reach_property(&net);
        let roles = RoleMap::singleton(net.topology());
        let result =
            InferenceEngine::default().infer(&net, &property, roles, &[Env::new()]).unwrap();
        assert!(result.report.verified, "failures: {:?}", result.report.failures);
        // the checker agrees with the engine's own verdict
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &result.interface, &property)
            .unwrap();
        assert!(report.is_verified());
        // witness times match the simulated arrival times exactly
        let mut env = Env::new();
        env.bind("t", Value::int(0));
        env.bind("r", Value::Bool(false));
        for v in net.topology().nodes() {
            let holds_nothing_at_0 = result
                .interface
                .get(v)
                .at(&Expr::var("t", Type::Int), &Expr::var("r", Type::Bool))
                .eval_bool(&env)
                .unwrap();
            // only the origin pins the route at time 0
            assert_eq!(holds_nothing_at_0, v.index() != 0, "node {v}");
        }
    }

    #[test]
    fn cegis_repairs_a_deliberately_weakened_seed() {
        let net = reach_net(4);
        let property = reach_property(&net);
        let roles = RoleMap::singleton(net.topology());
        let engine = InferenceEngine::default();
        let mut prepared = engine.prepare(&net, &property, roles, &[Env::new()]).unwrap();
        // sabotage node v2's seed: claim the route arrives at time 0 and
        // throw away every learned atom — the candidate now admits
        // everything, so its successor's induction and its own safety break
        let v2 = net.topology().node_by_name("v2").unwrap();
        let role = prepared.roles().role_of(v2);
        prepared.set_candidate(role, Candidate::any());
        let result = prepared.solve().unwrap();
        assert!(result.report.verified, "failures: {:?}", result.report.failures);
        assert!(result.report.rounds >= 1, "repair must take at least one round");
        assert!(
            result.report.total_repairs() >= 1,
            "the weakened seed must be repaired: {:?}",
            result.report.node_repairs
        );
        // and the repaired annotations really verify
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &result.interface, &property)
            .unwrap();
        assert!(report.is_verified());
    }

    #[test]
    fn cegis_repairs_a_too_early_witness_time() {
        let net = reach_net(4);
        let property = reach_property(&net);
        let engine = InferenceEngine::default();
        let mut prepared = engine
            .prepare(&net, &property, RoleMap::singleton(net.topology()), &[Env::new()])
            .unwrap();
        // claim v3 stabilizes at time 1; the simulation says 3
        let v3 = net.topology().node_by_name("v3").unwrap();
        let role = prepared.roles().role_of(v3);
        let mut sabotaged = prepared.candidate(role).clone();
        sabotaged.tau = 1;
        prepared.set_candidate(role, sabotaged);
        let result = prepared.solve().unwrap();
        assert!(result.report.verified, "failures: {:?}", result.report.failures);
        // the repair raised the witness time back to the simulated value
        assert!(result.report.total_repairs() >= 1);
    }

    #[test]
    fn unconverged_simulation_is_an_error() {
        let net = reach_net(8);
        let property = reach_property(&net);
        let engine = InferenceEngine::new(InferOptions {
            max_steps: 2, // too few for a 7-hop path
            ..InferOptions::default()
        });
        let err = engine
            .infer(&net, &property, RoleMap::singleton(net.topology()), &[Env::new()])
            .unwrap_err();
        assert!(matches!(err, InferError::Unconverged { steps: 2 }), "{err}");
        assert!(err.to_string().contains("converge"));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let net = reach_net(2);
        let property = reach_property(&net);
        let err = InferenceEngine::default()
            .infer(&net, &property, RoleMap::singleton(net.topology()), &[])
            .unwrap_err();
        assert!(matches!(err, InferError::NoInputs));
    }

    #[test]
    fn unsatisfiable_property_gives_up_instead_of_looping() {
        let net = reach_net(3);
        // property demands the route is *never* held — contradicts v0's
        // origination, so no trace-justified strengthening can help
        let property =
            NodeAnnotations::new(net.topology(), Temporal::globally(|r| r.clone().not()));
        let result = InferenceEngine::default()
            .infer(&net, &property, RoleMap::singleton(net.topology()), &[Env::new()])
            .unwrap();
        assert!(!result.report.verified);
        assert!(!result.report.gave_up.is_empty());
        assert!(!result.report.failures.is_empty());
    }

    #[test]
    fn exact_interface_reproduces_theorem_3_3() {
        let net = reach_net(4);
        let interface = exact_interface(&net, &Env::new(), 16).unwrap();
        // the exact stepwise interface is self-inductive and safe for the
        // anything-goes property
        let property = NodeAnnotations::new(net.topology(), Temporal::any());
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn report_renders_role_templates() {
        let net = reach_net(3);
        let property = reach_property(&net);
        let result = InferenceEngine::default()
            .infer(&net, &property, RoleMap::singleton(net.topology()), &[Env::new()])
            .unwrap();
        assert_eq!(result.report.role_templates.len(), 3);
        for template in &result.report.role_templates {
            assert!(!template.role.is_empty());
            assert!(!template.rendering.is_empty());
            assert_eq!(template.members, 1);
        }
        assert!(result.report.checks >= net.topology().node_count());
        assert!(result.report.stats.count == net.topology().node_count());
    }
}
