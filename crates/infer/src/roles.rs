//! Role maps: grouping symmetric nodes under one interface template.
//!
//! Inference scales to large topologies by exploiting symmetry: nodes
//! related by a destination-fixing automorphism satisfy the same temporal
//! interface, so one *template* per role both shrinks the candidate space
//! and yields annotations whose size is independent of the topology
//! parameter (six templates cover a fattree of any `k`).
//!
//! A [`RoleMap`] assigns every node a role index. Candidates are maintained
//! per role; a CEGIS repair triggered at one member applies to the whole
//! role, and re-checking visits all members.

use timepiece_topology::{FatTree, NodeId, Topology};

/// A partition of the node set into symmetry roles.
#[derive(Debug, Clone)]
pub struct RoleMap {
    role_of: Vec<usize>,
    names: Vec<String>,
}

impl RoleMap {
    /// The discrete partition: every node is its own role (no
    /// generalization). Always sound; the fallback for topologies without
    /// known symmetry.
    pub fn singleton(topology: &Topology) -> RoleMap {
        RoleMap {
            role_of: (0..topology.node_count()).collect(),
            names: topology.nodes().map(|v| topology.name(v).to_owned()).collect(),
        }
    }

    /// The fattree partition relative to a destination edge node: the six
    /// classes of [`FatTree::symmetry_class`] (destination, same-pod
    /// aggregation/edge, core, other-pod aggregation/edge).
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not an edge node of `ft`.
    pub fn fattree(ft: &FatTree, dest: NodeId) -> RoleMap {
        use timepiece_topology::FatTreeClass;
        let class_index =
            |c: FatTreeClass| FatTreeClass::ALL.iter().position(|&x| x == c).expect("class in ALL");
        let role_of: Vec<usize> =
            ft.topology().nodes().map(|v| class_index(ft.symmetry_class(v, dest))).collect();
        let names = FatTreeClass::ALL.iter().map(|c| format!("{c:?}")).collect();
        RoleMap { role_of, names }
    }

    /// Builds a role map from an arbitrary keying function; nodes with equal
    /// keys share a role.
    pub fn by_key<K: Eq + std::hash::Hash + std::fmt::Debug>(
        topology: &Topology,
        mut key: impl FnMut(NodeId) -> K,
    ) -> RoleMap {
        let mut index = std::collections::HashMap::new();
        let mut names = Vec::new();
        let role_of = topology
            .nodes()
            .map(|v| {
                let k = key(v);
                *index.entry(k).or_insert_with_key(|k| {
                    names.push(format!("{k:?}"));
                    names.len() - 1
                })
            })
            .collect();
        RoleMap { role_of, names }
    }

    /// The number of roles.
    pub fn role_count(&self) -> usize {
        self.names.len()
    }

    /// The role of a node.
    pub fn role_of(&self, v: NodeId) -> usize {
        self.role_of[v.index()]
    }

    /// A display name for a role.
    pub fn name(&self, role: usize) -> &str {
        &self.names[role]
    }

    /// All members of a role.
    pub fn members(&self, role: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.role_of
            .iter()
            .enumerate()
            .filter(move |(_, &r)| r == role)
            .map(|(i, _)| NodeId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_topology::gen;

    #[test]
    fn singleton_partition() {
        let g = gen::path(4);
        let roles = RoleMap::singleton(&g);
        assert_eq!(roles.role_count(), 4);
        for v in g.nodes() {
            assert_eq!(roles.members(roles.role_of(v)).collect::<Vec<_>>(), vec![v]);
            assert_eq!(roles.name(roles.role_of(v)), g.name(v));
        }
    }

    #[test]
    fn fattree_partition_covers_and_agrees_with_classes() {
        let ft = FatTree::new(4);
        let dest = ft.edge_nodes().next().unwrap();
        let roles = RoleMap::fattree(&ft, dest);
        assert_eq!(roles.role_count(), 6);
        let mut seen = 0;
        for role in 0..roles.role_count() {
            for v in roles.members(role) {
                seen += 1;
                assert_eq!(roles.role_of(v), role);
                // all members share the witness distance
                assert_eq!(
                    ft.dist(v, dest),
                    ft.symmetry_class(v, dest).dist(),
                    "member {}",
                    ft.topology().name(v)
                );
            }
        }
        assert_eq!(seen, ft.topology().node_count());
    }

    #[test]
    fn by_key_groups_equal_keys() {
        let g = gen::path(5);
        let roles = RoleMap::by_key(&g, |v| v.index() % 2);
        assert_eq!(roles.role_count(), 2);
        assert_eq!(roles.members(roles.role_of(g.node_by_name("v0").unwrap())).count(), 3);
    }
}
