//! Schema-derived atom grammars.
//!
//! [`crate::atoms::atoms_for`] discovers its grammar by recursing through
//! *observed values* — fine when all one has is a trace, but blind to the
//! policy structure a declaratively-built network carries. For networks
//! built through the policy IR, this module derives the grammar from the
//! [`RouteSchema`] itself: the template set (which field paths exist, which
//! admit bounds, which tags can be pinned) is a function of the *schema*,
//! fixed before any observation arrives, and observations only fill in the
//! constants.
//!
//! The two grammars agree on every route type both can express (see the
//! tests); the schema-derived one additionally guarantees that tag
//! atoms cover the schema's whole community universe even when an
//! observation set never exercises a tag, and it gives the engine a stable,
//! schema-ordered atom pool independent of value shapes.

use timepiece_algebra::{Network, RouteSchema};
use timepiece_expr::{Type, Value};

use crate::atoms::{atoms_for, Atom, FieldTest};

/// One slot of a schema-derived grammar: a field path plus the kind of test
/// the field's type admits. Constants come from observations at
/// instantiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomTemplate {
    /// Record field path into the present route.
    pub path: Vec<String>,
    /// What tests the addressed component admits.
    pub kind: TemplateKind,
}

/// The test family a component's type admits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateKind {
    /// Numeric component: equality pins plus `≤ max` / `≥ min` bounds.
    Numeric,
    /// Set component: membership / absence of one universe tag.
    Tag(String),
    /// Exact-pin-only component (booleans, enums, nested options).
    Pin,
}

/// The grammar of a schema: templates in schema field order.
pub fn grammar(schema: &RouteSchema) -> Vec<AtomTemplate> {
    let mut templates = Vec::new();
    type_templates(schema.payload_type(), &mut Vec::new(), &mut templates);
    templates
}

fn type_templates(ty: &Type, path: &mut Vec<String>, out: &mut Vec<AtomTemplate>) {
    match ty {
        Type::Record(def) => {
            for (name, field_ty) in def.fields() {
                path.push(name.clone());
                type_templates(field_ty, path, out);
                path.pop();
            }
        }
        Type::Set(def) => {
            for tag in def.universe() {
                out.push(AtomTemplate { path: path.clone(), kind: TemplateKind::Tag(tag.clone()) });
            }
        }
        Type::Int | Type::BitVec(_) => {
            out.push(AtomTemplate { path: path.clone(), kind: TemplateKind::Numeric });
        }
        Type::Bool | Type::Enum(_) | Type::Option(_) => {
            out.push(AtomTemplate { path: path.clone(), kind: TemplateKind::Pin });
        }
    }
}

/// A grammar selector: schema-derived when the network carries the policy
/// IR, value-derived otherwise. This is what the inference engine holds.
#[derive(Debug, Clone, Default)]
pub struct AtomGrammar {
    templates: Option<Vec<AtomTemplate>>,
}

impl AtomGrammar {
    /// The grammar for a network: its schema's when built through the policy
    /// IR, the value-recursive fallback otherwise.
    pub fn for_network(net: &Network) -> AtomGrammar {
        AtomGrammar { templates: net.policies().map(|p| grammar(&p.schema)) }
    }

    /// Is this grammar derived from a schema?
    pub fn is_schema_derived(&self) -> bool {
        self.templates.is_some()
    }

    /// Every atom of the grammar consistent with **all** of `values` — the
    /// justified pool the engine seeds and strengthens candidates from.
    pub fn atoms(&self, values: &[&Value]) -> Vec<Atom> {
        match &self.templates {
            Some(templates) => schema_atoms(templates, values),
            None => atoms_for(values),
        }
    }
}

/// Instantiates a schema grammar against an observation set: every template
/// atom that holds on all of `values`.
fn schema_atoms(templates: &[AtomTemplate], values: &[&Value]) -> Vec<Atom> {
    let Some(first) = values.first() else { return Vec::new() };
    let mut atoms = Vec::new();
    if values.iter().all(|v| v == first) {
        atoms.push(Atom::EqRoute((*first).clone()));
    }
    // schema routes are always option-typed
    if values.iter().all(|v| v.is_some_option() == Some(true)) {
        atoms.push(Atom::IsSome);
    }
    if values.iter().all(|v| v.is_some_option() == Some(false)) {
        atoms.push(Atom::IsNone);
    }
    let payloads: Vec<Value> = values
        .iter()
        .filter(|v| v.is_some_option() == Some(true))
        .filter_map(|v| v.unwrap_or_default())
        .collect();
    if payloads.is_empty() {
        return atoms;
    }
    for template in templates {
        let components: Vec<&Value> =
            payloads.iter().filter_map(|p| project(p, &template.path)).collect();
        if components.len() != payloads.len() {
            continue;
        }
        for test in template_tests(&template.kind, &components) {
            atoms.push(Atom::Guarded { path: template.path.clone(), test });
        }
    }
    atoms
}

fn project<'v>(mut v: &'v Value, path: &[String]) -> Option<&'v Value> {
    for f in path {
        v = v.field(f)?;
    }
    Some(v)
}

/// The tests of one template justified by `components` (all observations of
/// that field).
fn template_tests(kind: &TemplateKind, components: &[&Value]) -> Vec<FieldTest> {
    let first = components[0];
    let constant = components.iter().all(|v| v == &first);
    match kind {
        TemplateKind::Pin => constant.then(|| FieldTest::Eq(first.clone())).into_iter().collect(),
        TemplateKind::Tag(tag) => {
            let mut tests = Vec::new();
            if components.iter().all(|v| v.contains_tag(tag) == Some(true)) {
                tests.push(FieldTest::Has(tag.clone()));
            }
            if components.iter().all(|v| v.contains_tag(tag) == Some(false)) {
                tests.push(FieldTest::Lacks(tag.clone()));
            }
            tests
        }
        TemplateKind::Numeric => {
            // equality when constant, PLUS the interval bounds either way,
            // mirroring the value-derived grammar: when a repair drops the
            // (too-strong) equality, the one-sided bounds survive
            let mut tests = Vec::new();
            if constant {
                tests.push(FieldTest::Eq(first.clone()));
            }
            let mut lo = first;
            let mut hi = first;
            for v in components {
                if numeric(v) < numeric(lo) {
                    lo = v;
                }
                if numeric(v) > numeric(hi) {
                    hi = v;
                }
            }
            tests.push(FieldTest::Le((*hi).clone()));
            tests.push(FieldTest::Ge((*lo).clone()));
            tests
        }
    }
}

fn numeric(v: &Value) -> i128 {
    v.as_int().or_else(|| v.as_bv().map(i128::from)).expect("numeric template component")
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_algebra::MergeKey;

    fn bgp_like_schema() -> RouteSchema {
        RouteSchema::new(
            "R",
            [
                ("lp".to_owned(), Type::BitVec(32)),
                ("len".to_owned(), Type::Int),
                ("comms".to_owned(), Type::set("C", ["down", "bte"])),
                ("tag".to_owned(), Type::Bool),
            ],
            [MergeKey::Higher("lp".into()), MergeKey::Lower("len".into())],
        )
    }

    fn route(s: &RouteSchema, lp: u64, len: i64, comms: &[&str], tag: bool) -> Value {
        let comm_def = s.field_type("comms").set_def().unwrap().clone();
        Value::some(Value::record(
            s.record_def(),
            vec![
                Value::bv(lp, 32),
                Value::int(len),
                Value::set_of(&comm_def, comms.iter().copied()),
                Value::Bool(tag),
            ],
        ))
    }

    #[test]
    fn grammar_enumerates_schema_fields() {
        let g = grammar(&bgp_like_schema());
        assert_eq!(
            g,
            vec![
                AtomTemplate { path: vec!["lp".into()], kind: TemplateKind::Numeric },
                AtomTemplate { path: vec!["len".into()], kind: TemplateKind::Numeric },
                AtomTemplate { path: vec!["comms".into()], kind: TemplateKind::Tag("down".into()) },
                AtomTemplate { path: vec!["comms".into()], kind: TemplateKind::Tag("bte".into()) },
                AtomTemplate { path: vec!["tag".into()], kind: TemplateKind::Pin },
            ]
        );
    }

    #[test]
    fn schema_and_value_grammars_agree_on_expressible_routes() {
        let s = bgp_like_schema();
        let templates = grammar(&s);
        let none = s.none_value();
        let observation_sets: Vec<Vec<Value>> = vec![
            vec![route(&s, 100, 2, &["down"], false)],
            vec![route(&s, 100, 2, &[], false), route(&s, 100, 3, &["down"], false)],
            vec![none.clone(), route(&s, 200, 0, &["bte"], true)],
            vec![none.clone()],
            vec![],
        ];
        for set in observation_sets {
            let refs: Vec<&Value> = set.iter().collect();
            let from_schema = schema_atoms(&templates, &refs);
            let from_values = atoms_for(&refs);
            assert_eq!(from_schema, from_values, "observations {set:?}");
        }
    }

    #[test]
    fn every_schema_atom_holds_on_its_observations() {
        let s = bgp_like_schema();
        let templates = grammar(&s);
        let a = route(&s, 100, 2, &["down"], false);
        let b = route(&s, 150, 4, &["down", "bte"], false);
        let n = s.none_value();
        let values = [&a, &b, &n];
        for atom in schema_atoms(&templates, &values) {
            for v in values {
                assert!(atom.holds(v), "{atom:?} on {v}");
            }
        }
    }

    #[test]
    fn grammar_selector_prefers_the_schema() {
        use timepiece_algebra::{NetworkBuilder, RoutePolicy};
        use timepiece_expr::Expr;
        use timepiece_topology::gen;
        let s = bgp_like_schema();
        let g = gen::path(2);
        let dest = g.node_by_name("v0").unwrap();
        let origin = route(&s, 100, 0, &[], false);
        let net = NetworkBuilder::from_schema(g, s.clone())
            .default_policy(RoutePolicy::new().increment("len"))
            .init(dest, Expr::constant(origin.clone()))
            .build()
            .unwrap();
        let schema_grammar = AtomGrammar::for_network(&net);
        assert!(schema_grammar.is_schema_derived());
        // a closure-built network falls back to the value-derived grammar
        let closure_net = NetworkBuilder::new(gen::path(2), Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .build()
            .unwrap();
        let fallback = AtomGrammar::for_network(&closure_net);
        assert!(!fallback.is_schema_derived());
        // both produce a justified pool for the same observations
        let atoms = schema_grammar.atoms(&[&origin]);
        assert!(atoms.contains(&Atom::IsSome));
    }
}
