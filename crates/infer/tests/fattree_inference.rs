//! End-to-end acceptance: `timepiece-infer` synthesizes interfaces for the
//! `SpReach` and `SpLen` fattree benchmarks — from the property-only form,
//! with **zero** hand-written annotations — and the modular checker verifies
//! the result.

use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_infer::{InferenceEngine, RoleMap};
use timepiece_nets::len::LenBench;
use timepiece_nets::reach::ReachBench;
use timepiece_nets::PropertySpec;
use timepiece_topology::{FatTree, NodeId};

fn infer_and_verify(name: &str, spec: &PropertySpec, ft: &FatTree, dest: NodeId) {
    let roles = RoleMap::fattree(ft, dest);
    let result = InferenceEngine::default()
        .infer(&spec.network, &spec.property, roles, &[timepiece_expr::Env::new()])
        .unwrap_or_else(|e| panic!("{name}: inference aborted: {e}"));
    assert!(
        result.report.verified,
        "{name}: inferred interfaces must verify; failures: {:?}\ntemplates: {:#?}",
        result.report.failures, result.report.role_templates
    );
    // the engine's verdict is not taken on faith: re-check from scratch
    let report = ModularChecker::new(CheckOptions::default())
        .check(&spec.network, &result.interface, &spec.property)
        .unwrap_or_else(|e| panic!("{name}: re-check failed to encode: {e}"));
    assert!(report.is_verified(), "{name}: re-check failures: {:?}", report.failures());
    // role generalization really happened: six templates regardless of k
    assert_eq!(result.report.role_templates.len(), 6, "{name}");
}

fn reach_at(k: usize) {
    let bench = ReachBench::single_dest(k, 0);
    let dest = bench.dest_node().expect("fixed destination");
    infer_and_verify(&format!("SpReach k={k}"), &bench.spec(), &bench.fattree().clone(), dest);
}

fn len_at(k: usize) {
    let bench = LenBench::single_dest(k, 0);
    let dest = bench.dest_node().expect("fixed destination");
    infer_and_verify(&format!("SpLen k={k}"), &bench.spec(), &bench.fattree().clone(), dest);
}

#[test]
fn infers_sp_reach_k4() {
    reach_at(4);
}

#[test]
fn infers_sp_reach_k6() {
    reach_at(6);
}

#[test]
fn infers_sp_reach_k8() {
    reach_at(8);
}

#[test]
fn infers_sp_len_k4() {
    len_at(4);
}

#[test]
fn infers_sp_len_k6() {
    len_at(6);
}

#[test]
fn infers_sp_len_k8() {
    len_at(8);
}

/// Inference-guided delay: under a bounded-delay semantics the synchronous
/// witness times are too tight — the engine must widen them by the delay
/// budget for the inferred interfaces to stay inductive. Each hop may now
/// take up to `1 + delay` units, so the property deadline scales from the
/// diameter 4 to `4 · (1 + delay)` as well.
#[test]
fn infers_sp_reach_k4_under_delay() {
    use timepiece_core::{NodeAnnotations, Temporal};
    use timepiece_infer::{InferOptions, InferenceEngine};

    let bench = ReachBench::single_dest(4, 0);
    let dest = bench.dest_node().expect("fixed destination");
    let spec = bench.spec();
    let delayed = CheckOptions { delay: 1, ..CheckOptions::default() };
    let wide_property = NodeAnnotations::new(
        bench.fattree().topology(),
        Temporal::finally_at(8, Temporal::globally(|r| r.clone().is_some())),
    );

    // the paper's hand-written interface pins the *synchronous* witness
    // times, and is NOT inductive once one unit of delay is allowed — even
    // against the delay-widened deadline…
    let inst = bench.build();
    let hand = ModularChecker::new(delayed.clone())
        .check(&inst.network, &inst.interface, &wide_property)
        .expect("hand-written interfaces encode");
    assert!(!hand.is_verified(), "synchronous witness times must break under delay");

    // …while inference with the same delay budget widens the witness-time
    // ceilings (dist(v) → dist(v)·(1+delay)) and verifies.
    let engine =
        InferenceEngine::new(InferOptions { check: delayed.clone(), ..InferOptions::default() });
    let roles = RoleMap::fattree(bench.fattree(), dest);
    let node_role = roles.clone();
    let result = engine
        .infer(&spec.network, &wide_property, roles, &[timepiece_expr::Env::new()])
        .expect("inference runs");
    assert!(
        result.report.verified,
        "delay-widened inference must verify; failures: {:?}\ntemplates: {:#?}",
        result.report.failures, result.report.role_templates
    );
    // the verdict re-checked from scratch, under the same delay
    let recheck = ModularChecker::new(delayed)
        .check(&spec.network, &result.interface, &wide_property)
        .expect("inferred interfaces encode");
    assert!(recheck.is_verified(), "re-check failures: {:?}", recheck.failures());
    // witness times really are the widened dist: τ(v) = dist(v) · 2
    let ft = bench.fattree();
    for v in ft.topology().nodes() {
        let tau = result.report.role_templates[node_role.role_of(v)].tau;
        assert_eq!(tau, ft.dist(v, dest) * 2, "τ at {}", ft.topology().name(v));
    }
}
