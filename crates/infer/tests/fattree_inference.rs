//! End-to-end acceptance: `timepiece-infer` synthesizes interfaces for the
//! `SpReach` and `SpLen` fattree benchmarks — from the property-only form,
//! with **zero** hand-written annotations — and the modular checker verifies
//! the result.

use timepiece_core::check::{CheckOptions, ModularChecker};
use timepiece_infer::{InferenceEngine, RoleMap};
use timepiece_nets::len::LenBench;
use timepiece_nets::reach::ReachBench;
use timepiece_nets::PropertySpec;
use timepiece_topology::{FatTree, NodeId};

fn infer_and_verify(name: &str, spec: &PropertySpec, ft: &FatTree, dest: NodeId) {
    let roles = RoleMap::fattree(ft, dest);
    let result = InferenceEngine::default()
        .infer(&spec.network, &spec.property, roles, &[timepiece_expr::Env::new()])
        .unwrap_or_else(|e| panic!("{name}: inference aborted: {e}"));
    assert!(
        result.report.verified,
        "{name}: inferred interfaces must verify; failures: {:?}\ntemplates: {:#?}",
        result.report.failures, result.report.role_templates
    );
    // the engine's verdict is not taken on faith: re-check from scratch
    let report = ModularChecker::new(CheckOptions::default())
        .check(&spec.network, &result.interface, &spec.property)
        .unwrap_or_else(|e| panic!("{name}: re-check failed to encode: {e}"));
    assert!(report.is_verified(), "{name}: re-check failures: {:?}", report.failures());
    // role generalization really happened: six templates regardless of k
    assert_eq!(result.report.role_templates.len(), 6, "{name}");
}

fn reach_at(k: usize) {
    let bench = ReachBench::single_dest(k, 0);
    let dest = bench.dest_node().expect("fixed destination");
    infer_and_verify(&format!("SpReach k={k}"), &bench.spec(), &bench.fattree().clone(), dest);
}

fn len_at(k: usize) {
    let bench = LenBench::single_dest(k, 0);
    let dest = bench.dest_node().expect("fixed destination");
    infer_and_verify(&format!("SpLen k={k}"), &bench.spec(), &bench.fattree().clone(), dest);
}

#[test]
fn infers_sp_reach_k4() {
    reach_at(4);
}

#[test]
fn infers_sp_reach_k6() {
    reach_at(6);
}

#[test]
fn infers_sp_reach_k8() {
    reach_at(8);
}

#[test]
fn infers_sp_len_k4() {
    len_at(4);
}

#[test]
fn infers_sp_len_k6() {
    len_at(6);
}

#[test]
fn infers_sp_len_k8() {
    len_at(8);
}
