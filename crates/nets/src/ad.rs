//! The `Ad` benchmark: IGP/EGP interaction through administrative distance.
//!
//! The destination pod runs an interior protocol alongside eBGP: its
//! aggregation switches *start* with an IGP-learned route to the destination
//! (administrative distance 110, origin `igp`), while the destination itself
//! originates the eBGP route (AD 20, origin `egp`). Both protocols' routes
//! flood the fattree — transfers preserve the distance of the protocol that
//! introduced a route — so at every node the AD step of the decision process
//! must resolve the product: the eBGP route wins the moment it arrives,
//! *regardless* of the IGP route's other attributes.
//!
//! Property: the network converges to the exterior protocol everywhere —
//! `P_Ad(v) ≡ F^4 G(s ≠ ∞ ∧ s.ad = 20 ∧ s.origin = egp)`. The interface
//! captures the protocol race exactly:
//!
//! `A_Ad(v) ≡ (s = ∞ ∨ (s.ad = 110 ∧ s.origin = igp)) U^{dist(v)}
//!            G(s.ad = 20 ∧ s.origin = egp ∧ attrs ∧ len = dist(v))`
//!
//! — before its witness time a node holds nothing or an IGP route; from
//! `dist(v)` on, exactly the eBGP route.

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::{FatTree, FatTreeRole};

use crate::bgp::{BgpSchema, Origin, DEFAULT_LP, DEFAULT_MED};
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// The administrative distance of eBGP-learned routes.
pub const EBGP_AD: u64 = 20;
/// The administrative distance of IGP-learned routes (OSPF-style).
pub const IGP_AD: u64 = 110;

/// Builder for `SpAd`/`ApAd` instances.
#[derive(Debug, Clone)]
pub struct AdBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
}

impl AdBench {
    /// `SpAd`: route to the `dest_index`-th edge node of a `k`-fattree.
    pub fn single_dest(k: usize, dest_index: usize) -> AdBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        AdBench { fattree, dest: DestSpec::Fixed(dest), schema: BgpSchema::new([], []) }
    }

    /// `ApAd`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> AdBench {
        AdBench {
            fattree: FatTree::new(k),
            dest: DestSpec::Symbolic,
            schema: BgpSchema::new([], []),
        }
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The fixed destination node (`None` for the all-pairs variant).
    pub fn dest_node(&self) -> Option<timepiece_topology::NodeId> {
        match self.dest {
            DestSpec::Fixed(d) => Some(d),
            DestSpec::Symbolic => None,
        }
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// The network: plain eBGP transfers; the destination originates the
    /// eBGP route, its pod's aggregation switches start with IGP routes.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let ft = &self.fattree;
        let mut builder = NetworkBuilder::from_schema(ft.topology().clone(), schema.ir().clone())
            .default_policy(schema.increment_policy());
        for v in ft.topology().nodes() {
            let init = match ft.role(v) {
                FatTreeRole::Aggregation { pod } => {
                    // one IGP hop from the destination when it is in our pod
                    let igp = schema.originate_with(Expr::bv(0, 32), IGP_AD, Origin::Igp, 1);
                    self.dest.dest_in_pod(ft, pod).ite(igp, schema.none_route())
                }
                _ => {
                    let ebgp = schema.originate_with(Expr::bv(0, 32), EBGP_AD, Origin::Egp, 0);
                    self.dest.is_dest(v).ite(ebgp, schema.none_route())
                }
            };
            builder = builder.init(v, init);
        }
        if let Some(c) = self.dest.constraint(ft) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("ad network is well-typed")
    }

    /// `A_Ad(v)`: nothing or an IGP route before `dist(v)`, exactly the
    /// eBGP route after.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let dist = self.dest.dist(&self.fattree, v);
            let dist2 = dist.clone();
            let before_schema = schema.clone();
            let after_schema = schema.clone();
            Temporal::until(
                dist,
                move |r| {
                    let payload = r.clone().get_some();
                    let igp = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(IGP_AD, 32))
                        .and(before_schema.origin_is(&payload, Origin::Igp));
                    r.clone().is_none().or(igp)
                },
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let ebgp = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(EBGP_AD, 32))
                        .and(after_schema.origin_is(&payload, Origin::Egp));
                    let attrs = after_schema
                        .lp(&payload)
                        .eq(Expr::bv(DEFAULT_LP, 32))
                        .and(payload.clone().field("med").eq(Expr::bv(DEFAULT_MED, 32)));
                    let exact_len = after_schema.len(&payload).eq(dist2.clone());
                    r.clone().is_some().and(ebgp).and(attrs).and(exact_len)
                }),
            )
        })
    }

    /// `P_Ad(v) ≡ F^4 G(s ≠ ∞ ∧ s.ad = 20 ∧ s.origin = egp)`.
    pub fn property(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::new(
            self.fattree.topology(),
            Temporal::finally_at(
                4,
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let ebgp = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(EBGP_AD, 32))
                        .and(schema.origin_is(&payload, Origin::Egp));
                    r.clone().is_some().and(ebgp)
                }),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_expr::Env;

    #[test]
    fn sp_ad_verifies_at_k4() {
        let inst = AdBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_ad_verifies_at_k4() {
        let inst = AdBench::all_pairs(4).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn simulation_shows_the_protocol_handover() {
        let bench = AdBench::single_dest(4, 0);
        let inst = bench.build();
        let trace = timepiece_sim::simulate(&inst.network, &Env::new(), 16).unwrap();
        let g = inst.network.topology();
        // at t = 0 the destination pod's aggregation switches hold IGP routes
        let dest_pod_aggs: Vec<_> = bench
            .fattree
            .aggregation_nodes()
            .filter(|&v| matches!(bench.fattree.role(v), FatTreeRole::Aggregation { pod: 0 }))
            .collect();
        for &a in &dest_pod_aggs {
            let r0 = trace.state(a, 0).unwrap_or_default().unwrap();
            assert_eq!(r0.field("ad").unwrap().as_bv(), Some(IGP_AD), "{} at t=0", g.name(a));
            // one step later eBGP has taken over (AD 20 < 110)
            let r1 = trace.state(a, 1).unwrap_or_default().unwrap();
            assert_eq!(r1.field("ad").unwrap().as_bv(), Some(EBGP_AD), "{} at t=1", g.name(a));
        }
        // and the stable state is eBGP everywhere
        for v in g.nodes() {
            let stable = trace.state(v, 8).unwrap_or_default().unwrap();
            assert_eq!(stable.field("ad").unwrap().as_bv(), Some(EBGP_AD), "{}", g.name(v));
            assert_eq!(stable.field("origin").unwrap().to_string(), "egp");
        }
    }

    #[test]
    fn property_fails_without_the_ebgp_origination() {
        // a network where the destination also originates via IGP only:
        // nothing ever has AD 20, the safety condition must reject
        let bench = AdBench::single_dest(4, 0);
        let schema = bench.schema.clone();
        let ft = bench.fattree.clone();
        let mut builder = NetworkBuilder::from_schema(ft.topology().clone(), schema.ir().clone())
            .default_policy(schema.increment_policy());
        for v in ft.topology().nodes() {
            let igp = schema.originate_with(Expr::bv(0, 32), IGP_AD, Origin::Igp, 0);
            builder = builder.init(v, bench.dest.is_dest(v).ite(igp, schema.none_route()));
        }
        let igp_only = builder.build().unwrap();
        // interface that matches the IGP-only behavior exactly…
        let loose = NodeAnnotations::from_fn(ft.topology(), |v| {
            let dist = bench.dest.dist(&bench.fattree, v);
            Temporal::finally(dist, Temporal::globally(|r| r.clone().is_some()))
        });
        // …still cannot prove the eBGP property
        let report = ModularChecker::new(CheckOptions::default())
            .check(&igp_only, &loose, &bench.property())
            .unwrap();
        assert!(!report.is_verified());
        assert!(report.failures().iter().all(|f| f.vc == timepiece_core::VcKind::Safety));
    }
}
