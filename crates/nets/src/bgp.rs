//! The eBGP route schema of Table 3, built on the declarative policy IR.
//!
//! A route is `Option<Record>` (with `None` as the paper's `∞`), where the
//! record models the fields the paper lists:
//!
//! | field | SMT type |
//! |---|---|
//! | `destination` (IPv4 prefix) | bitvector(32) |
//! | `ad` (administrative distance) | bitvector(32) |
//! | `lp` (local preference) | bitvector(32) |
//! | `med` (multi-exit discriminator) | bitvector(32) |
//! | `origin` | enum {egp, igp, unknown} |
//! | `len` (AS-path length) | unbounded integer |
//! | `comms` (communities) | fixed-universe set |
//!
//! Extra boolean *ghost* fields (e.g. `Hijack`'s external-origin tag) can be
//! appended without touching the protocol logic.
//!
//! [`BgpSchema`] wraps a [`RouteSchema`] whose merge keys spell out the full
//! BGP decision process — administrative distance ≺ local preference ≺
//! AS-path length ≺ MED ≺ origin — so one declarative definition drives the
//! simulator's value semantics, the SMT encoding, solver-session keying and
//! inference's atom grammar alike. Benchmarks with extra selection steps
//! (e.g. `Hijack`'s per-prefix RIB slots) prepend [`MergeKey`]s via
//! [`BgpSchema::with_leading_keys`].

use std::sync::Arc;

pub use timepiece_algebra::Origin;
use timepiece_algebra::{MergeKey, RoutePolicy, RouteSchema};
use timepiece_expr::{Expr, RecordDef, Type};

/// Default administrative distance for eBGP.
pub const DEFAULT_AD: u64 = 20;
/// Default local preference.
pub const DEFAULT_LP: u64 = 100;
/// Default multi-exit discriminator.
pub const DEFAULT_MED: u64 = 0;

/// A configured eBGP route schema: community universe plus ghost fields.
///
/// # Example
///
/// ```
/// use timepiece_nets::bgp::BgpSchema;
///
/// let schema = BgpSchema::new(["down"], ["tag"]);
/// let r = schema.route_var("r");
/// let originated = schema.originate(timepiece_expr::Expr::bv(0, 32));
/// assert_eq!(originated.type_of().unwrap(), schema.route_type());
/// let _pred = schema.len(&r.clone().get_some());
/// // the decision process is declarative data, not a closure:
/// assert_eq!(schema.ir().merge_keys().len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BgpSchema {
    ir: RouteSchema,
    ghost_fields: Vec<String>,
}

impl BgpSchema {
    /// Builds a schema with the given community universe and extra boolean
    /// ghost fields, merging by the standard decision process.
    pub fn new<'a, 'b>(
        communities: impl IntoIterator<Item = &'a str>,
        ghost_bools: impl IntoIterator<Item = &'b str>,
    ) -> BgpSchema {
        BgpSchema::with_leading_keys(communities, ghost_bools, [])
    }

    /// As [`BgpSchema::new`], with extra merge keys applied *before* the
    /// decision process (e.g. `Hijack`'s prefix-class preference).
    pub fn with_leading_keys<'a, 'b>(
        communities: impl IntoIterator<Item = &'a str>,
        ghost_bools: impl IntoIterator<Item = &'b str>,
        leading_keys: impl IntoIterator<Item = MergeKey>,
    ) -> BgpSchema {
        let comm_ty = Type::set("Communities", communities.into_iter().collect::<Vec<_>>());
        let origin_ty = Type::enumeration("Origin", ["egp", "igp", "unknown"]);
        let mut fields: Vec<(String, Type)> = vec![
            ("destination".into(), Type::BitVec(32)),
            ("ad".into(), Type::BitVec(32)),
            ("lp".into(), Type::BitVec(32)),
            ("med".into(), Type::BitVec(32)),
            ("origin".into(), origin_ty),
            ("len".into(), Type::Int),
            ("comms".into(), comm_ty),
        ];
        let ghost_fields: Vec<String> = ghost_bools.into_iter().map(str::to_owned).collect();
        for g in &ghost_fields {
            fields.push((g.clone(), Type::Bool));
        }
        // the full decision process: AD ≺ lp ≺ AS-path length ≺ MED ≺ origin
        let mut keys: Vec<MergeKey> = leading_keys.into_iter().collect();
        keys.extend([
            MergeKey::Lower("ad".into()),
            MergeKey::Higher("lp".into()),
            MergeKey::Lower("len".into()),
            MergeKey::Lower("med".into()),
            MergeKey::RankEnum("origin".into(), vec!["igp".into(), "egp".into(), "unknown".into()]),
        ]);
        BgpSchema { ir: RouteSchema::new("BgpRoute", fields, keys), ghost_fields }
    }

    /// The underlying declarative schema (record shape + merge keys).
    pub fn ir(&self) -> &RouteSchema {
        &self.ir
    }

    /// The record definition of a present route.
    pub fn record_def(&self) -> &Arc<RecordDef> {
        self.ir.record_def()
    }

    /// The route type `S = Option<BgpRoute>`.
    pub fn route_type(&self) -> Type {
        self.ir.route_type()
    }

    /// The names of the ghost fields.
    pub fn ghost_fields(&self) -> &[String] {
        &self.ghost_fields
    }

    /// A route variable of this schema's type.
    pub fn route_var(&self, name: &str) -> Expr {
        Expr::var(name, self.route_type())
    }

    /// A freshly-originated route for `destination`: default attributes,
    /// zero length, no communities, ghost fields false.
    pub fn originate(&self, destination: Expr) -> Expr {
        self.originate_with(destination, DEFAULT_AD, Origin::Igp, 0)
    }

    /// A route for `destination` with chosen administrative distance,
    /// origin and length — the dual-protocol scenarios (IGP/EGP) originate
    /// both kinds. Other attributes stay at their defaults.
    pub fn originate_with(&self, destination: Expr, ad: u64, origin: Origin, len: i64) -> Expr {
        let origin_def =
            self.record_def().field_type("origin").unwrap().enum_def().unwrap().clone();
        let mut fields = vec![
            destination,
            Expr::bv(ad, 32),
            Expr::bv(DEFAULT_LP, 32),
            Expr::bv(DEFAULT_MED, 32),
            Expr::constant(timepiece_expr::Value::enum_variant(&origin_def, origin.variant())),
            Expr::int(len),
            Expr::constant(timepiece_expr::Value::default_of(
                self.record_def().field_type("comms").unwrap(),
            )),
        ];
        for _ in &self.ghost_fields {
            fields.push(Expr::bool(false));
        }
        Expr::record(self.record_def(), fields).some()
    }

    /// The `∞` route as a term.
    pub fn none_route(&self) -> Expr {
        self.ir.none_route()
    }

    // -- field projections over a *present* route (a record term) -----------

    /// The destination prefix of a present route.
    pub fn destination(&self, route: &Expr) -> Expr {
        route.clone().field("destination")
    }

    /// The local preference of a present route.
    pub fn lp(&self, route: &Expr) -> Expr {
        route.clone().field("lp")
    }

    /// The AS-path length of a present route.
    pub fn len(&self, route: &Expr) -> Expr {
        route.clone().field("len")
    }

    /// The multi-exit discriminator of a present route.
    pub fn med(&self, route: &Expr) -> Expr {
        route.clone().field("med")
    }

    /// Community membership of a present route.
    pub fn has_community(&self, route: &Expr, tag: &str) -> Expr {
        route.clone().field("comms").contains(tag)
    }

    /// A ghost boolean of a present route.
    pub fn ghost(&self, route: &Expr, field: &str) -> Expr {
        route.clone().field(field)
    }

    /// `origin = variant` over a present route.
    pub fn origin_is(&self, route: &Expr, origin: Origin) -> Expr {
        let def = self.record_def().field_type("origin").unwrap().enum_def().unwrap().clone();
        route
            .clone()
            .field("origin")
            .eq(Expr::constant(timepiece_expr::Value::enum_variant(&def, origin.variant())))
    }

    // -- protocol functions, as declarative policies -------------------------

    /// The default transfer policy: increment the AS-path length, preserve
    /// all other fields; `∞` stays `∞`.
    pub fn increment_policy(&self) -> RoutePolicy {
        RoutePolicy::new().increment("len")
    }

    // -- term-level conveniences (interfaces and tests) ----------------------

    /// The default transfer as a term (compiled [`BgpSchema::increment_policy`]).
    pub fn transfer_increment(&self, route: &Expr) -> Expr {
        self.increment_policy().compile(&self.ir, route)
    }

    /// The selection `⊕` as a term (compiled from the schema's merge keys):
    /// prefer a present route, then the decision process; the first argument
    /// wins ties.
    pub fn merge(&self, a: &Expr, b: &Expr) -> Expr {
        self.ir.merge_expr(a, b)
    }

    /// Is present route `x` strictly preferred to present route `y`?
    pub fn prefer(&self, x: &Expr, y: &Expr) -> Expr {
        self.ir.prefer_expr(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::{Env, Value};

    fn schema() -> BgpSchema {
        BgpSchema::new(["down", "bte"], ["tag"])
    }

    fn route(s: &BgpSchema, lp: u64, len: i64, comms: &[&str], tag: bool) -> Value {
        let def = s.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        Value::some(Value::record(
            def,
            vec![
                Value::bv(0, 32),
                Value::bv(DEFAULT_AD, 32),
                Value::bv(lp, 32),
                Value::bv(DEFAULT_MED, 32),
                Value::enum_variant(&origin_def, "igp"),
                Value::int(len),
                Value::set_of(&comm_def, comms.iter().copied()),
                Value::Bool(tag),
            ],
        ))
    }

    fn eval_merge(s: &BgpSchema, a: Value, b: Value) -> Value {
        let va = Expr::var("a", s.route_type());
        let vb = Expr::var("b", s.route_type());
        let m = s.merge(&va, &vb);
        let mut env = Env::new();
        env.bind("a", a);
        env.bind("b", b);
        m.eval(&env).unwrap()
    }

    #[test]
    fn schema_shape() {
        let s = schema();
        assert_eq!(s.record_def().fields().len(), 8);
        assert_eq!(s.ghost_fields(), ["tag"]);
        assert!(s.route_type().is_option());
        assert_eq!(s.ir().merge_keys().len(), 5, "full decision process");
    }

    #[test]
    fn originate_is_well_typed_and_fresh() {
        let s = schema();
        let o = s.originate(Expr::bv(42, 32));
        assert_eq!(o.type_of().unwrap(), s.route_type());
        let v = o.eval(&Env::new()).unwrap();
        let r = v.unwrap_or_default().unwrap();
        assert_eq!(r.field("len").unwrap().as_int(), Some(0));
        assert_eq!(r.field("lp").unwrap().as_bv(), Some(DEFAULT_LP));
        assert_eq!(r.field("tag").unwrap().as_bool(), Some(false));
        assert_eq!(r.field("destination").unwrap().as_bv(), Some(42));
    }

    #[test]
    fn originate_with_sets_protocol_attributes() {
        let s = schema();
        let o = s.originate_with(Expr::bv(1, 32), 110, Origin::Egp, 1);
        let r = o.eval(&Env::new()).unwrap().unwrap_or_default().unwrap();
        assert_eq!(r.field("ad").unwrap().as_bv(), Some(110));
        assert_eq!(r.field("len").unwrap().as_int(), Some(1));
        assert_eq!(r.field("origin").unwrap().to_string(), "egp");
    }

    #[test]
    fn transfer_increments_len_only() {
        let s = schema();
        let r = route(&s, 100, 3, &["down"], true);
        let v = Expr::var("r", s.route_type());
        let out = s.transfer_increment(&v);
        let mut env = Env::new();
        env.bind("r", r);
        let result = out.eval(&env).unwrap().unwrap_or_default().unwrap();
        assert_eq!(result.field("len").unwrap().as_int(), Some(4));
        assert_eq!(result.field("lp").unwrap().as_bv(), Some(100));
        assert_eq!(result.field("comms").unwrap().contains_tag("down"), Some(true));
        assert_eq!(result.field("tag").unwrap().as_bool(), Some(true));
        // ∞ stays ∞
        env.bind("r", Value::default_of(&s.route_type()));
        assert_eq!(out.eval(&env).unwrap().is_some_option(), Some(false));
    }

    #[test]
    fn merge_prefers_presence_lp_then_len() {
        let s = schema();
        let none = Value::default_of(&s.route_type());
        let low = route(&s, 100, 2, &[], false);
        let high = route(&s, 200, 5, &[], false);
        let short = route(&s, 200, 1, &[], false);
        assert_eq!(eval_merge(&s, none.clone(), low.clone()), low);
        assert_eq!(eval_merge(&s, low.clone(), none.clone()), low);
        assert_eq!(eval_merge(&s, low.clone(), high.clone()), high);
        assert_eq!(eval_merge(&s, high.clone(), short.clone()), short);
        assert_eq!(eval_merge(&s, none.clone(), none.clone()), none);
    }

    #[test]
    fn merge_ties_keep_first_argument() {
        let s = schema();
        let a = route(&s, 100, 2, &["down"], false);
        let b = route(&s, 100, 2, &[], true);
        assert_eq!(eval_merge(&s, a.clone(), b.clone()), a);
        assert_eq!(eval_merge(&s, b.clone(), a), b);
    }

    #[test]
    fn origin_breaks_final_ties() {
        // equal ad/lp/len/med: the igp-origin route wins over egp
        let s = schema();
        let def = s.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        let mk = |origin: &str| {
            Value::some(Value::record(
                def,
                vec![
                    Value::bv(0, 32),
                    Value::bv(DEFAULT_AD, 32),
                    Value::bv(DEFAULT_LP, 32),
                    Value::bv(DEFAULT_MED, 32),
                    Value::enum_variant(&origin_def, origin),
                    Value::int(2),
                    Value::set_of(&comm_def, []),
                    Value::Bool(false),
                ],
            ))
        };
        let igp = mk("igp");
        let egp = mk("egp");
        assert_eq!(eval_merge(&s, egp.clone(), igp.clone()), igp);
        assert_eq!(eval_merge(&s, igp.clone(), egp), igp);
    }

    #[test]
    fn merge_agrees_with_concrete_bgp_on_lp_len() {
        use timepiece_algebra::{Bgp, BgpRoute, RoutingAlgebra};
        let s = schema();
        let concrete = Bgp::new();
        for (lp_a, len_a) in [(100u64, 0i64), (100, 3), (200, 5)] {
            for (lp_b, len_b) in [(100u64, 1i64), (200, 2), (100, 3)] {
                let ca = BgpRoute { lp: lp_a, len: len_a as u64, tags: Default::default() };
                let cb = BgpRoute { lp: lp_b, len: len_b as u64, tags: Default::default() };
                let winner = concrete.merge(&Some(ca.clone()), &Some(cb.clone())).unwrap();
                let ea = route(&s, lp_a, len_a, &[], false);
                let eb = route(&s, lp_b, len_b, &[], false);
                let got = eval_merge(&s, ea, eb).unwrap_or_default().unwrap();
                assert_eq!(
                    got.field("lp").unwrap().as_bv(),
                    Some(winner.lp),
                    "{lp_a},{len_a} vs {lp_b},{len_b}"
                );
                assert_eq!(got.field("len").unwrap().as_int(), Some(winner.len as i128));
            }
        }
    }

    #[test]
    fn merge_agrees_with_full_decision_process() {
        use timepiece_algebra::{DecisionBgp, DecisionRoute, RoutingAlgebra};
        let s = schema();
        let def = s.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        let symbolic = |r: &DecisionRoute| {
            let origin = r.origin.variant();
            Value::some(Value::record(
                def,
                vec![
                    Value::bv(0, 32),
                    Value::bv(DEFAULT_AD, 32),
                    Value::bv(r.lp, 32),
                    Value::bv(r.med, 32),
                    Value::enum_variant(&origin_def, origin),
                    Value::int(r.len as i64),
                    Value::set_of(&comm_def, []),
                    Value::Bool(false),
                ],
            ))
        };
        let concrete = DecisionBgp::new();
        let samples = [
            DecisionRoute { lp: 100, len: 2, med: 0, origin: Origin::Igp },
            DecisionRoute { lp: 100, len: 2, med: 5, origin: Origin::Igp },
            DecisionRoute { lp: 100, len: 2, med: 0, origin: Origin::Egp },
            DecisionRoute { lp: 200, len: 9, med: 9, origin: Origin::Unknown },
            DecisionRoute { lp: 100, len: 1, med: 9, origin: Origin::Unknown },
        ];
        for a in &samples {
            for b in &samples {
                let winner = concrete.merge(&Some(*a), &Some(*b)).unwrap();
                let got = eval_merge(&s, symbolic(a), symbolic(b));
                assert_eq!(got, symbolic(&winner), "{a:?} vs {b:?}");
            }
        }
    }
}
