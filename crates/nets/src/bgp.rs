//! The eBGP route schema of Table 3, at the expression level.
//!
//! A route is `Option<Record>` (with `None` as the paper's `∞`), where the
//! record models the fields the paper lists:
//!
//! | field | SMT type |
//! |---|---|
//! | `destination` (IPv4 prefix) | bitvector(32) |
//! | `ad` (administrative distance) | bitvector(32) |
//! | `lp` (local preference) | bitvector(32) |
//! | `med` (multi-exit discriminator) | bitvector(32) |
//! | `origin` | enum {egp, igp, unknown} |
//! | `len` (AS-path length) | unbounded integer |
//! | `comms` (communities) | fixed-universe set |
//!
//! Extra boolean *ghost* fields (e.g. `Hijack`'s external-origin tag) can be
//! appended without touching the protocol logic.

use std::sync::Arc;

use timepiece_expr::{Expr, RecordDef, Type};

/// Default administrative distance for eBGP.
pub const DEFAULT_AD: u64 = 20;
/// Default local preference.
pub const DEFAULT_LP: u64 = 100;
/// Default multi-exit discriminator.
pub const DEFAULT_MED: u64 = 0;

/// A configured eBGP route schema: community universe plus ghost fields.
///
/// # Example
///
/// ```
/// use timepiece_nets::bgp::BgpSchema;
///
/// let schema = BgpSchema::new(["down"], ["tag"]);
/// let r = schema.route_var("r");
/// let originated = schema.originate(timepiece_expr::Expr::bv(0, 32));
/// assert_eq!(originated.type_of().unwrap(), schema.route_type());
/// let _pred = schema.len(&r.clone().get_some());
/// ```
#[derive(Debug, Clone)]
pub struct BgpSchema {
    record: Arc<RecordDef>,
    route_type: Type,
    ghost_fields: Vec<String>,
}

impl BgpSchema {
    /// Builds a schema with the given community universe and extra boolean
    /// ghost fields.
    pub fn new<'a, 'b>(
        communities: impl IntoIterator<Item = &'a str>,
        ghost_bools: impl IntoIterator<Item = &'b str>,
    ) -> BgpSchema {
        let comm_ty = Type::set("Communities", communities.into_iter().collect::<Vec<_>>());
        let origin_ty = Type::enumeration("Origin", ["egp", "igp", "unknown"]);
        let mut fields: Vec<(String, Type)> = vec![
            ("destination".into(), Type::BitVec(32)),
            ("ad".into(), Type::BitVec(32)),
            ("lp".into(), Type::BitVec(32)),
            ("med".into(), Type::BitVec(32)),
            ("origin".into(), origin_ty),
            ("len".into(), Type::Int),
            ("comms".into(), comm_ty),
        ];
        let ghost_fields: Vec<String> = ghost_bools.into_iter().map(str::to_owned).collect();
        for g in &ghost_fields {
            fields.push((g.clone(), Type::Bool));
        }
        let record = Arc::new(RecordDef::new("BgpRoute", fields));
        let route_type = Type::option(Type::Record(Arc::clone(&record)));
        BgpSchema { record, route_type, ghost_fields }
    }

    /// The record definition of a present route.
    pub fn record_def(&self) -> &Arc<RecordDef> {
        &self.record
    }

    /// The route type `S = Option<BgpRoute>`.
    pub fn route_type(&self) -> Type {
        self.route_type.clone()
    }

    /// The names of the ghost fields.
    pub fn ghost_fields(&self) -> &[String] {
        &self.ghost_fields
    }

    /// A route variable of this schema's type.
    pub fn route_var(&self, name: &str) -> Expr {
        Expr::var(name, self.route_type())
    }

    /// A freshly-originated route for `destination`: default attributes,
    /// zero length, no communities, ghost fields false.
    pub fn originate(&self, destination: Expr) -> Expr {
        let mut fields = vec![
            destination,
            Expr::bv(DEFAULT_AD, 32),
            Expr::bv(DEFAULT_LP, 32),
            Expr::bv(DEFAULT_MED, 32),
            Expr::constant(timepiece_expr::Value::enum_variant(
                self.record.field_type("origin").unwrap().enum_def().unwrap(),
                "igp",
            )),
            Expr::int(0),
            Expr::constant(timepiece_expr::Value::default_of(
                self.record.field_type("comms").unwrap(),
            )),
        ];
        for _ in &self.ghost_fields {
            fields.push(Expr::bool(false));
        }
        Expr::record(&self.record, fields).some()
    }

    // -- field projections over a *present* route (a record term) -----------

    /// The destination prefix of a present route.
    pub fn destination(&self, route: &Expr) -> Expr {
        route.clone().field("destination")
    }

    /// The local preference of a present route.
    pub fn lp(&self, route: &Expr) -> Expr {
        route.clone().field("lp")
    }

    /// The AS-path length of a present route.
    pub fn len(&self, route: &Expr) -> Expr {
        route.clone().field("len")
    }

    /// Community membership of a present route.
    pub fn has_community(&self, route: &Expr, tag: &str) -> Expr {
        route.clone().field("comms").contains(tag)
    }

    /// A ghost boolean of a present route.
    pub fn ghost(&self, route: &Expr, field: &str) -> Expr {
        route.clone().field(field)
    }

    // -- protocol functions ---------------------------------------------------

    /// The default transfer: increment the AS-path length, preserve all other
    /// fields; `∞` stays `∞`.
    pub fn transfer_increment(&self, route: &Expr) -> Expr {
        let payload_ty = self.route_type.option_payload().unwrap().clone();
        route.clone().match_option(Expr::none(payload_ty), |r| {
            let bumped = self.len(&r).add(Expr::int(1));
            r.with_field("len", bumped).some()
        })
    }

    /// The standard eBGP selection `⊕`: prefer a present route; then lower
    /// administrative distance, higher local preference, shorter AS path,
    /// lower MED (communities and ghost fields are ignored, first argument
    /// wins ties).
    pub fn merge(&self, a: &Expr, b: &Expr) -> Expr {
        let ra = a.clone().get_some();
        let rb = b.clone().get_some();
        let b_strictly_better = self.prefer(&rb, &ra);
        // choose b only when present and (a absent or b strictly preferred)
        let choose_b = b.clone().is_some().and(a.clone().is_none().or(b_strictly_better));
        choose_b.ite(b.clone(), a.clone())
    }

    /// Is present route `x` strictly preferred to present route `y`?
    pub fn prefer(&self, x: &Expr, y: &Expr) -> Expr {
        let ad_lt = x.clone().field("ad").lt(y.clone().field("ad"));
        let ad_eq = x.clone().field("ad").eq(y.clone().field("ad"));
        let lp_gt = x.clone().field("lp").gt(y.clone().field("lp"));
        let lp_eq = x.clone().field("lp").eq(y.clone().field("lp"));
        let len_lt = self.len(x).lt(self.len(y));
        let len_eq = self.len(x).eq(self.len(y));
        let med_lt = x.clone().field("med").lt(y.clone().field("med"));
        ad_lt.or(ad_eq.and(lp_gt.or(lp_eq.and(len_lt.or(len_eq.and(med_lt))))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::{Env, Value};

    fn schema() -> BgpSchema {
        BgpSchema::new(["down", "bte"], ["tag"])
    }

    fn route(s: &BgpSchema, lp: u64, len: i64, comms: &[&str], tag: bool) -> Value {
        let def = s.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        Value::some(Value::record(
            def,
            vec![
                Value::bv(0, 32),
                Value::bv(DEFAULT_AD, 32),
                Value::bv(lp, 32),
                Value::bv(DEFAULT_MED, 32),
                Value::enum_variant(&origin_def, "igp"),
                Value::int(len),
                Value::set_of(&comm_def, comms.iter().copied()),
                Value::Bool(tag),
            ],
        ))
    }

    fn eval_merge(s: &BgpSchema, a: Value, b: Value) -> Value {
        let va = Expr::var("a", s.route_type());
        let vb = Expr::var("b", s.route_type());
        let m = s.merge(&va, &vb);
        let mut env = Env::new();
        env.bind("a", a);
        env.bind("b", b);
        m.eval(&env).unwrap()
    }

    #[test]
    fn schema_shape() {
        let s = schema();
        assert_eq!(s.record_def().fields().len(), 8);
        assert_eq!(s.ghost_fields(), ["tag"]);
        assert!(s.route_type().is_option());
    }

    #[test]
    fn originate_is_well_typed_and_fresh() {
        let s = schema();
        let o = s.originate(Expr::bv(42, 32));
        assert_eq!(o.type_of().unwrap(), s.route_type());
        let v = o.eval(&Env::new()).unwrap();
        let r = v.unwrap_or_default().unwrap();
        assert_eq!(r.field("len").unwrap().as_int(), Some(0));
        assert_eq!(r.field("lp").unwrap().as_bv(), Some(DEFAULT_LP));
        assert_eq!(r.field("tag").unwrap().as_bool(), Some(false));
        assert_eq!(r.field("destination").unwrap().as_bv(), Some(42));
    }

    #[test]
    fn transfer_increments_len_only() {
        let s = schema();
        let r = route(&s, 100, 3, &["down"], true);
        let v = Expr::var("r", s.route_type());
        let out = s.transfer_increment(&v);
        let mut env = Env::new();
        env.bind("r", r);
        let result = out.eval(&env).unwrap().unwrap_or_default().unwrap();
        assert_eq!(result.field("len").unwrap().as_int(), Some(4));
        assert_eq!(result.field("lp").unwrap().as_bv(), Some(100));
        assert_eq!(result.field("comms").unwrap().contains_tag("down"), Some(true));
        assert_eq!(result.field("tag").unwrap().as_bool(), Some(true));
        // ∞ stays ∞
        env.bind("r", Value::default_of(&s.route_type()));
        assert_eq!(out.eval(&env).unwrap().is_some_option(), Some(false));
    }

    #[test]
    fn merge_prefers_presence_lp_then_len() {
        let s = schema();
        let none = Value::default_of(&s.route_type());
        let low = route(&s, 100, 2, &[], false);
        let high = route(&s, 200, 5, &[], false);
        let short = route(&s, 200, 1, &[], false);
        assert_eq!(eval_merge(&s, none.clone(), low.clone()), low);
        assert_eq!(eval_merge(&s, low.clone(), none.clone()), low);
        assert_eq!(eval_merge(&s, low.clone(), high.clone()), high);
        assert_eq!(eval_merge(&s, high.clone(), short.clone()), short);
        assert_eq!(eval_merge(&s, none.clone(), none.clone()), none);
    }

    #[test]
    fn merge_ties_keep_first_argument() {
        let s = schema();
        let a = route(&s, 100, 2, &["down"], false);
        let b = route(&s, 100, 2, &[], true);
        assert_eq!(eval_merge(&s, a.clone(), b.clone()), a);
        assert_eq!(eval_merge(&s, b.clone(), a), b);
    }

    #[test]
    fn merge_agrees_with_concrete_bgp_on_lp_len() {
        use timepiece_algebra::{Bgp, BgpRoute, RoutingAlgebra};
        let s = schema();
        let concrete = Bgp::new();
        for (lp_a, len_a) in [(100u64, 0i64), (100, 3), (200, 5)] {
            for (lp_b, len_b) in [(100u64, 1i64), (200, 2), (100, 3)] {
                let ca = BgpRoute { lp: lp_a, len: len_a as u64, tags: Default::default() };
                let cb = BgpRoute { lp: lp_b, len: len_b as u64, tags: Default::default() };
                let winner = concrete.merge(&Some(ca.clone()), &Some(cb.clone())).unwrap();
                let ea = route(&s, lp_a, len_a, &[], false);
                let eb = route(&s, lp_b, len_b, &[], false);
                let got = eval_merge(&s, ea, eb).unwrap_or_default().unwrap();
                assert_eq!(
                    got.field("lp").unwrap().as_bv(),
                    Some(winner.lp),
                    "{lp_a},{len_a} vs {lp_b},{len_b}"
                );
                assert_eq!(got.field("len").unwrap().as_int(), Some(winner.len as i128));
            }
        }
    }
}
