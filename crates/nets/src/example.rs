//! The paper's running example (§2, Figs. 2–10): an idealized cloud provider
//! network.
//!
//! ```text
//!   n ──filter──▶ v ◀──tag── w          n: external neighbor (any route)
//!                 ▲│                    w: WAN origin ⟨lp=100, len=0, ¬tag⟩
//!                 │▼
//!                 d ──allow──▶ e        e: data center leaf
//! ```
//!
//! Policies: `filter` drops everything from `n`; `tag` marks routes imported
//! from `w` as internal; `allow` only lets internal-tagged routes reach `e`.
//! Merge prefers higher local preference, then shorter paths.
//!
//! This module builds the network once and each of the paper's interface
//! sets: the **tagging** interfaces of Fig. 7, the **reachability**
//! interfaces of Fig. 8, the **bad** interfaces of Fig. 9 (whose rejection
//! demonstrates the soundness of the temporal model — and whose *acceptance*
//! by the strawperson procedure demonstrates §2.2's unsoundness), and the
//! **ghost-field** interfaces of Fig. 10.

use std::sync::Arc;

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, RecordDef, Type, Value};
use timepiece_topology::{NodeId, Topology};

/// The symbolic announcement of the external neighbor `n`.
pub const EXTERNAL_ROUTE_VAR: &str = "n-route";

/// The running example network with handles to its nodes.
#[derive(Debug)]
pub struct RunningExample {
    /// The network (route type `Option<{lp, len, tag, fromw}>`).
    pub network: Network,
    /// External neighbor.
    pub n: NodeId,
    /// WAN origin.
    pub w: NodeId,
    /// WAN router.
    pub v: NodeId,
    /// Data center gateway.
    pub d: NodeId,
    /// Data center leaf.
    pub e: NodeId,
    record: Arc<RecordDef>,
}

impl RunningExample {
    /// The route record: local preference, path length, internal tag, and
    /// the Fig. 10 ghost bit `fromw`.
    pub fn route_record() -> Arc<RecordDef> {
        Arc::new(RecordDef::new(
            "Route",
            [
                ("lp".to_owned(), Type::BitVec(32)),
                ("len".to_owned(), Type::Int),
                ("tag".to_owned(), Type::Bool),
                ("fromw".to_owned(), Type::Bool),
            ],
        ))
    }

    /// Builds the example network. The external neighbor's initial route is
    /// the unconstrained symbolic [`EXTERNAL_ROUTE_VAR`].
    pub fn new() -> RunningExample {
        let record = RunningExample::route_record();
        let route_ty = Type::option(Type::Record(Arc::clone(&record)));

        let mut g = Topology::new();
        let n = g.add_node("n");
        let w = g.add_node("w");
        let v = g.add_node("v");
        let d = g.add_node("d");
        let e = g.add_node("e");
        g.add_edge(n, v);
        g.add_edge(w, v);
        g.add_undirected(v, d);
        g.add_edge(d, e);

        let payload_ty = route_ty.option_payload().unwrap().clone();
        let increment = {
            let payload_ty = payload_ty.clone();
            move |r: &Expr| {
                r.clone().match_option(Expr::none(payload_ty.clone()), |route| {
                    let bumped = route.clone().field("len").add(Expr::int(1));
                    route.with_field("len", bumped).some()
                })
            }
        };

        // w's fixed origin route ⟨100, 0, false⟩ (fromw ghost bit true)
        let w_route = Expr::record(
            &record,
            vec![Expr::bv(100, 32), Expr::int(0), Expr::bool(false), Expr::bool(true)],
        )
        .some();

        let network = NetworkBuilder::new(g, route_ty.clone())
            // ⊕: prefer present, then higher lp, then shorter len
            .merge(|a, b| {
                let ra = a.clone().get_some();
                let rb = b.clone().get_some();
                let lp_gt = rb.clone().field("lp").gt(ra.clone().field("lp"));
                let lp_eq = rb.clone().field("lp").eq(ra.clone().field("lp"));
                let len_lt = rb.clone().field("len").lt(ra.clone().field("len"));
                let b_better = lp_gt.or(lp_eq.and(len_lt));
                let choose_b = b.clone().is_some().and(a.clone().is_none().or(b_better));
                choose_b.ite(b.clone(), a.clone())
            })
            // filter: drop all routes from n
            .transfer((n, v), {
                let payload_ty = payload_ty.clone();
                move |_| Expr::none(payload_ty.clone())
            })
            // tag: mark imports from w internal, at default preference 100
            .transfer((w, v), {
                let increment = increment.clone();
                move |r| {
                    increment(r).match_option(Expr::none(payload_ty.clone()), |route| {
                        route
                            .with_field("tag", Expr::bool(true))
                            .with_field("lp", Expr::bv(100, 32))
                            .some()
                    })
                }
            })
            // allow: only internal-tagged routes may reach e
            .transfer((d, e), {
                let increment = increment.clone();
                let route_ty = route_ty.clone();
                move |r| {
                    let payload_ty = route_ty.option_payload().unwrap().clone();
                    let incremented = increment(r);
                    let tagged = incremented.clone().get_some().field("tag");
                    incremented
                        .clone()
                        .is_some()
                        .and(tagged.not())
                        .ite(Expr::none(payload_ty), incremented)
                }
            })
            .default_transfer(increment.clone())
            .init(w, w_route)
            .init(n, Expr::var(EXTERNAL_ROUTE_VAR, route_ty.clone()))
            // n may announce any route, but the `fromw` ghost bit is false
            // everywhere except at w by construction (Fig. 10)
            .symbolic(Symbolic::new(EXTERNAL_ROUTE_VAR, route_ty.clone(), {
                let var = Expr::var(EXTERNAL_ROUTE_VAR, route_ty);
                Some(var.clone().is_none().or(var.get_some().field("fromw").not()))
            }))
            .build()
            .expect("running example is well-typed");

        RunningExample { network, n, w, v, d, e, record }
    }

    fn pred_tagged_or_none() -> impl Fn(&Expr) -> Expr + Clone {
        |r: &Expr| r.clone().is_none().or(r.clone().get_some().field("tag"))
    }

    /// Fig. 7: `G`-only interfaces proving "if `e` has a route, it is
    /// tagged".
    pub fn tagging_interfaces(&self) -> NodeAnnotations {
        let mut a = NodeAnnotations::new(self.network.topology(), Temporal::any());
        a.set(self.w, Temporal::globally(Self::w_has_lp100()));
        let tagged = Self::pred_tagged_or_none();
        a.set(self.v, Temporal::globally(tagged.clone()));
        a.set(self.d, Temporal::globally(tagged.clone()));
        a.set(self.e, Temporal::globally(tagged));
        a
    }

    /// Fig. 7's property: if `e` has a route it is tagged internal.
    pub fn tagging_property(&self) -> NodeAnnotations {
        let mut p = NodeAnnotations::new(self.network.topology(), Temporal::any());
        p.set(self.e, Temporal::globally(Self::pred_tagged_or_none()));
        p
    }

    fn w_has_lp100() -> impl Fn(&Expr) -> Expr + Clone {
        |r: &Expr| r.clone().is_some().and(r.clone().get_some().field("lp").eq(Expr::bv(100, 32)))
    }

    fn pred_present_tagged() -> impl Fn(&Expr) -> Expr + Clone {
        |r: &Expr| r.clone().is_some().and(r.clone().get_some().field("tag"))
    }

    /// Fig. 8: timed interfaces proving `e` eventually reaches `w`.
    pub fn reachability_interfaces(&self) -> NodeAnnotations {
        let mut a = NodeAnnotations::new(self.network.topology(), Temporal::any());
        a.set(self.w, Temporal::globally(Self::w_has_lp100()));
        a.set(
            self.v,
            Temporal::until_at(
                1,
                |r| r.clone().is_none(),
                Temporal::globally(Self::pred_present_tagged()),
            ),
        );
        a.set(
            self.d,
            Temporal::until_at(
                2,
                |r| r.clone().is_none(),
                Temporal::globally(Self::pred_present_tagged()),
            ),
        );
        a.set(self.e, Temporal::finally_at(3, Temporal::globally(|r| r.clone().is_some())));
        a
    }

    /// Fig. 8's property: `e` eventually has a route (`F^3 G(s ≠ ∞)`).
    pub fn reachability_property(&self) -> NodeAnnotations {
        let mut p = NodeAnnotations::new(self.network.topology(), Temporal::any());
        p.set(self.e, Temporal::finally_at(3, Temporal::globally(|r| r.clone().is_some())));
        p
    }

    /// Fig. 9: the *bad* interfaces claiming spurious lp-200 routes at `v`
    /// and `d` (with the `∨ s = ∞` patch discussed in §2.3 applied when
    /// `patched`). The temporal checker must reject these; the §2.2
    /// strawperson procedure accepts the patched variant's erasure.
    pub fn bad_interfaces(&self, patched: bool) -> NodeAnnotations {
        let spurious = move |r: &Expr| {
            let claims = r
                .clone()
                .get_some()
                .field("lp")
                .eq(Expr::bv(200, 32))
                .and(r.clone().get_some().field("tag").not())
                .and(r.clone().is_some());
            if patched {
                claims.or(r.clone().is_none())
            } else {
                claims
            }
        };
        let mut a = NodeAnnotations::new(self.network.topology(), Temporal::any());
        a.set(self.w, Temporal::globally(Self::w_has_lp100()));
        a.set(self.v, Temporal::globally(spurious));
        a.set(self.d, Temporal::globally(spurious));
        a.set(self.e, Temporal::globally(|r: &Expr| r.clone().is_none()));
        a
    }

    /// Fig. 10: ghost-field interfaces proving `e`'s route came from `w`.
    pub fn ghost_interfaces(&self) -> NodeAnnotations {
        let fromw_tagged = |r: &Expr| {
            r.clone()
                .is_some()
                .and(r.clone().get_some().field("tag"))
                .and(r.clone().get_some().field("fromw"))
        };
        let mut a = NodeAnnotations::new(self.network.topology(), Temporal::any());
        // n never originates w's route
        a.set(
            self.n,
            Temporal::globally(|r: &Expr| {
                r.clone().is_none().or(r.clone().get_some().field("fromw").not())
            }),
        );
        a.set(
            self.w,
            Temporal::globally(|r: &Expr| {
                Self::w_has_lp100()(r).and(r.clone().get_some().field("fromw"))
            }),
        );
        a.set(
            self.v,
            Temporal::until_at(1, |r| r.clone().is_none(), Temporal::globally(fromw_tagged)),
        );
        a.set(
            self.d,
            Temporal::until_at(2, |r| r.clone().is_none(), Temporal::globally(fromw_tagged)),
        );
        a.set(
            self.e,
            Temporal::finally_at(
                3,
                Temporal::globally(|r: &Expr| {
                    r.clone().is_some().and(r.clone().get_some().field("fromw"))
                }),
            ),
        );
        a
    }

    /// Fig. 10's property: `e` eventually holds a route originated by `w`.
    pub fn ghost_property(&self) -> NodeAnnotations {
        let mut p = NodeAnnotations::new(self.network.topology(), Temporal::any());
        p.set(
            self.e,
            Temporal::finally_at(
                3,
                Temporal::globally(|r: &Expr| {
                    r.clone().is_some().and(r.clone().get_some().field("fromw"))
                }),
            ),
        );
        p
    }

    /// A concrete route value ⟨lp, len, tag⟩ (fromw false), for simulations.
    pub fn route_value(&self, lp: u64, len: i64, tag: bool) -> Value {
        Value::some(Value::record(
            &self.record,
            vec![Value::bv(lp, 32), Value::int(len), Value::Bool(tag), Value::Bool(false)],
        ))
    }

    /// The `∞` route value.
    pub fn no_route(&self) -> Value {
        Value::none(Type::Record(Arc::clone(&self.record)))
    }
}

impl Default for RunningExample {
    fn default() -> Self {
        RunningExample::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_core::strawperson::check_strawperson;
    use timepiece_expr::Env;

    fn check(ex: &RunningExample, a: &NodeAnnotations, p: &NodeAnnotations) -> bool {
        ModularChecker::new(CheckOptions::default()).check(&ex.network, a, p).unwrap().is_verified()
    }

    #[test]
    fn fig3_simulation_table() {
        let ex = RunningExample::new();
        let mut env = Env::new();
        env.bind(EXTERNAL_ROUTE_VAR, ex.no_route());
        let trace = timepiece_sim::simulate(&ex.network, &env, 16).unwrap();
        assert_eq!(trace.converged_at(), Some(3));
        // Fig. 3's stable row (with fromw ghost bit carried along)
        let expect_w = {
            let mut v = ex.route_value(100, 0, false);
            if let Value::Option { value: Some(inner), .. } = &mut v {
                if let Value::Record { def, fields } = inner.as_mut() {
                    fields[def.field_index("fromw").unwrap()] = Value::Bool(true);
                }
            }
            v
        };
        assert_eq!(trace.state(ex.w, 4), &expect_w);
        assert_eq!(trace.state(ex.n, 4), &ex.no_route());
        for (node, len) in [(ex.v, 1i64), (ex.d, 2), (ex.e, 3)] {
            let payload = trace.state(node, 4).unwrap_or_default().unwrap();
            assert_eq!(payload.field("len").unwrap().as_int(), Some(len as i128));
            assert_eq!(payload.field("tag").unwrap().as_bool(), Some(true));
        }
        // intermediate rows
        assert_eq!(trace.state(ex.e, 2), &ex.no_route());
        assert_eq!(trace.state(ex.d, 1), &ex.no_route());
    }

    #[test]
    fn fig7_tagging_interfaces_verify() {
        let ex = RunningExample::new();
        assert!(check(&ex, &ex.tagging_interfaces(), &ex.tagging_property()));
    }

    #[test]
    fn fig7_interfaces_cannot_prove_reachability() {
        let ex = RunningExample::new();
        // the weak G-interfaces do not imply e eventually has a route
        assert!(!check(&ex, &ex.tagging_interfaces(), &ex.reachability_property()));
    }

    #[test]
    fn fig8_reachability_interfaces_verify() {
        let ex = RunningExample::new();
        assert!(check(&ex, &ex.reachability_interfaces(), &ex.reachability_property()));
    }

    #[test]
    fn fig9_bad_interfaces_rejected_at_time_zero() {
        let ex = RunningExample::new();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&ex.network, &ex.bad_interfaces(false), &ex.tagging_property())
            .unwrap();
        assert!(!report.is_verified());
        // v and d fail their INITIAL condition (∞ ∉ A(v)(0))
        let initial_failures: Vec<&str> = report
            .failures()
            .iter()
            .filter(|f| f.vc == timepiece_core::VcKind::Initial)
            .map(|f| f.node_name.as_str())
            .collect();
        assert!(initial_failures.contains(&"v"));
        assert!(initial_failures.contains(&"d"));
    }

    #[test]
    fn fig9_patched_bad_interfaces_rejected_one_step_later() {
        let ex = RunningExample::new();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&ex.network, &ex.bad_interfaces(true), &ex.tagging_property())
            .unwrap();
        assert!(!report.is_verified());
        // the patch passes the initial condition but the INDUCTIVE condition
        // catches the spurious routes (the paper's "one step forward in time")
        assert!(report
            .failures()
            .iter()
            .any(|f| f.vc == timepiece_core::VcKind::Inductive && f.node_name == "v"));
        assert!(report.failures().iter().all(|f| f.vc != timepiece_core::VcKind::Initial));
    }

    #[test]
    fn strawperson_accepts_what_the_temporal_checker_rejects() {
        // §2.2's unsoundness, end to end on the paper's own example (Fig. 4):
        // the stable-state modular procedure accepts the bad interfaces even
        // though they exclude the real execution.
        let ex = RunningExample::new();
        let bad = ex.bad_interfaces(false);
        let failing = check_strawperson(&ex.network, &bad).unwrap();
        assert!(failing.is_empty(), "strawperson accepted nodes should be empty, got {failing:?}");
        // the real simulation violates the bad interfaces: v gets lp=100
        let mut env = Env::new();
        env.bind(EXTERNAL_ROUTE_VAR, ex.no_route());
        let trace = timepiece_sim::simulate(&ex.network, &env, 16).unwrap();
        let v_stable = trace.state(ex.v, 4).unwrap_or_default().unwrap();
        assert_eq!(v_stable.field("lp").unwrap().as_bv(), Some(100));
    }

    #[test]
    fn fig10_ghost_interfaces_verify() {
        let ex = RunningExample::new();
        assert!(check(&ex, &ex.ghost_interfaces(), &ex.ghost_property()));
    }

    #[test]
    fn external_neighbor_cannot_reach_e() {
        // even if n announces the best possible route, e's route is from w:
        // simulate with an aggressive announcement
        let ex = RunningExample::new();
        let mut env = Env::new();
        env.bind(EXTERNAL_ROUTE_VAR, ex.route_value(65535, 0, true));
        let trace = timepiece_sim::simulate(&ex.network, &env, 16).unwrap();
        let e_stable = trace.state(ex.e, 8).unwrap_or_default().unwrap();
        // e still holds w's (tagged, length-3) route — n's was filtered
        assert_eq!(e_stable.field("len").unwrap().as_int(), Some(3));
        assert_eq!(e_stable.field("fromw").unwrap().as_bool(), Some(true));
    }
}
