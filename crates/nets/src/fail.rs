//! The `Fail` benchmark: reachability under bounded link failures.
//!
//! Every uplink of the destination — the `k/2` links into its pod's
//! aggregation planes — gets a symbolic failure boolean, under the global
//! assumption that **at most one** of them is down
//! ([`timepiece_algebra::FailureModel`]). A failed link transfers `∞`, so
//! the plane it feeds must learn the destination's route the long way
//! round: through the pod's other edge switches, two time steps later.
//!
//! Witness times and path lengths become *failure-conditional expressions*:
//! with plane `g`'s uplink down, the plane-`g` chain (destination-pod
//! aggregation → its cores → other pods' plane-`g` aggregation) runs 2 units
//! late at path length +2, while every other node is rescued by plane
//! redundancy on schedule:
//!
//! | node | τ = len, link up | τ = len, link down |
//! |---|---|---|
//! | destination | 0 | 0 |
//! | dest-pod aggregation (plane g) | 1 | 3 |
//! | dest-pod edge | 2 | 2 |
//! | core (plane g) | 2 | 4 |
//! | other-pod aggregation (plane g) | 3 | 5 |
//! | other-pod edge | 4 | 4 |
//!
//! Property: the network still converges — `P_Fail(v) ≡ F^5 G(s ≠ ∞)` —
//! under *every* single-failure scenario at once (the failure booleans are
//! symbolic in every verification condition).
//!
//! Requires `k ≥ 4`: with a single plane (`k = 2`) one failure partitions
//! the destination.

use timepiece_algebra::{FailureModel, Network, NetworkBuilder};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::Expr;
use timepiece_topology::{FatTree, FatTreeRole, NodeId};

use crate::bgp::{BgpSchema, DEFAULT_AD, DEFAULT_LP, DEFAULT_MED};
use crate::{BenchInstance, PropertySpec};

/// Builder for `SpFail` instances.
#[derive(Debug, Clone)]
pub struct FailBench {
    fattree: FatTree,
    dest: NodeId,
    schema: BgpSchema,
}

impl FailBench {
    /// `SpFail`: route to the `dest_index`-th edge node of a `k`-fattree,
    /// tolerating one failed destination uplink.
    ///
    /// # Panics
    ///
    /// Panics for `k < 4` (no plane redundancy).
    pub fn single_dest(k: usize, dest_index: usize) -> FailBench {
        assert!(k >= 4, "failure tolerance needs k >= 4 (plane redundancy)");
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        FailBench { fattree, dest, schema: BgpSchema::new([], []) }
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The fixed destination node.
    pub fn dest_node(&self) -> NodeId {
        self.dest
    }

    /// The destination's pod.
    fn dest_pod(&self) -> usize {
        match self.fattree.role(self.dest) {
            FatTreeRole::Edge { pod } => pod,
            _ => unreachable!("destination is an edge node"),
        }
    }

    /// The tracked edges: the destination's uplinks, in plane order.
    pub fn tracked_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut uplinks: Vec<(usize, NodeId)> = self
            .fattree
            .topology()
            .succs(self.dest)
            .iter()
            .filter(|&&a| matches!(self.fattree.role(a), FatTreeRole::Aggregation { .. }))
            .map(|&a| (self.fattree.group(a), a))
            .collect();
        uplinks.sort_unstable();
        uplinks.into_iter().map(|(_, a)| (self.dest, a)).collect()
    }

    /// The failure model: at most one destination uplink down.
    pub fn failure_model(&self) -> FailureModel {
        FailureModel::at_most(1, self.tracked_edges())
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// The network: plain eBGP with the failure model on the destination's
    /// uplinks.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let ft = &self.fattree;
        let mut builder = NetworkBuilder::from_schema(ft.topology().clone(), schema.ir().clone())
            .default_policy(schema.increment_policy())
            .failures(self.failure_model());
        for v in ft.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            let init = if v == self.dest { originated } else { schema.none_route() };
            builder = builder.init(v, init);
        }
        builder.build().expect("fail network is well-typed")
    }

    /// The failure bit of the uplink into plane `g`.
    fn fail_var(&self, plane: usize) -> Expr {
        FailureModel::var(self.fattree.topology(), self.tracked_edges()[plane])
    }

    /// The failure-conditional witness time / path length of a node (they
    /// coincide on shortest-path routing): see the module table.
    pub fn witness(&self, v: NodeId) -> Expr {
        let dest_pod = self.dest_pod();
        let late = |plane: usize, on_time: i64| {
            self.fail_var(plane).ite(Expr::int(on_time + 2), Expr::int(on_time))
        };
        match self.fattree.role(v) {
            _ if v == self.dest => Expr::int(0),
            FatTreeRole::Aggregation { pod } if pod == dest_pod => late(self.fattree.group(v), 1),
            FatTreeRole::Edge { pod } if pod == dest_pod => Expr::int(2),
            FatTreeRole::Core => late(self.fattree.group(v), 2),
            FatTreeRole::Aggregation { .. } => late(self.fattree.group(v), 3),
            FatTreeRole::Edge { .. } => Expr::int(4),
        }
    }

    /// `A_Fail(v)`: no route before the failure-conditional witness time,
    /// exactly the (possibly detoured) shortest route after.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let tau = self.witness(v);
            let len = tau.clone();
            let schema = schema.clone();
            Temporal::until(
                tau,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let attrs = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(DEFAULT_AD, 32))
                        .and(schema.lp(&payload).eq(Expr::bv(DEFAULT_LP, 32)))
                        .and(payload.clone().field("med").eq(Expr::bv(DEFAULT_MED, 32)));
                    let exact_len = schema.len(&payload).eq(len.clone());
                    r.clone().is_some().and(attrs).and(exact_len)
                }),
            )
        })
    }

    /// `P_Fail(v) ≡ F^5 G(s ≠ ∞)`: reachable despite any tolerated failure
    /// (one step later than the failure-free diameter).
    pub fn property(&self) -> NodeAnnotations {
        NodeAnnotations::new(
            self.fattree.topology(),
            Temporal::finally_at(5, Temporal::globally(|r| r.clone().is_some())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_expr::Env;

    #[test]
    fn sp_fail_verifies_at_k4() {
        let inst = FailBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn failure_bits_are_symbolic_with_a_budget() {
        let bench = FailBench::single_dest(4, 0);
        let net = bench.network();
        assert_eq!(net.symbolics().len(), 2, "one bit per destination uplink");
        assert_eq!(
            net.symbolic_constraints().len(),
            2,
            "every failure bit carries the shared at-most-f constraint"
        );
        assert_eq!(bench.failure_model().budget(), 1);
    }

    #[test]
    fn simulation_matches_the_witness_table_per_scenario() {
        let bench = FailBench::single_dest(4, 0);
        let inst = bench.build();
        let g = inst.network.topology();
        let model = bench.failure_model();
        let scenarios: Vec<Vec<(NodeId, NodeId)>> = std::iter::once(Vec::new())
            .chain(bench.tracked_edges().into_iter().map(|e| vec![e]))
            .collect();
        for down in scenarios {
            let mut env = Env::new();
            model.bind_failures(g, &mut env, &down);
            let trace = timepiece_sim::simulate(&inst.network, &env, 16).unwrap();
            for v in g.nodes() {
                let stable = trace.state(v, 10);
                assert_eq!(stable.is_some_option(), Some(true), "{} unreachable", g.name(v));
                let expected = bench.witness(v).eval(&env).unwrap().as_int().unwrap();
                let len =
                    stable.unwrap_or_default().unwrap().field("len").unwrap().as_int().unwrap();
                assert_eq!(len, expected, "stable len at {} under {down:?}", g.name(v));
                // the route also *arrives* exactly at the witness time
                let before = trace.state(v, (expected.max(1) - 1) as usize);
                if expected > 0 {
                    assert_eq!(
                        before.is_some_option(),
                        Some(false),
                        "{} had an early route under {down:?}",
                        g.name(v)
                    );
                }
            }
        }
    }

    #[test]
    fn two_failures_break_the_budget_and_the_interface() {
        // the interface is only sound under the at-most-1 assumption: a
        // network with budget 2 admits a double failure that partitions the
        // plane chain past the promised witness times
        let bench = FailBench::single_dest(4, 0);
        let schema = bench.schema.clone();
        let ft = bench.fattree.clone();
        let mut builder = NetworkBuilder::from_schema(ft.topology().clone(), schema.ir().clone())
            .default_policy(schema.increment_policy())
            .failures(FailureModel::at_most(2, bench.tracked_edges()));
        for v in ft.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            let init = if v == bench.dest { originated } else { schema.none_route() };
            builder = builder.init(v, init);
        }
        let loose_budget = builder.build().unwrap();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&loose_budget, &bench.interface(), &bench.property())
            .unwrap();
        assert!(!report.is_verified(), "budget 2 must break the single-failure interface");
    }
}
