//! Shared machinery for the fattree benchmarks: fixed vs. symbolic
//! destinations, and the `dist(v)` witness-time function as an expression.

use timepiece_expr::{Expr, Type};
use timepiece_topology::{FatTree, FatTreeRole, NodeId};

/// The name of the symbolic destination variable in all-pairs benchmarks.
pub const DEST_VAR: &str = "dest";

/// How a benchmark picks the destination edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestSpec {
    /// A fixed destination (the paper's `Sp` benchmarks).
    Fixed(NodeId),
    /// A symbolic destination ranging over all edge nodes (`Ap` benchmarks).
    Symbolic,
}

/// The 32-bit node id literal used to compare against the symbolic
/// destination.
pub fn node_id_expr(v: NodeId) -> Expr {
    Expr::bv(v.index() as u64, 32)
}

/// The symbolic destination variable.
pub fn dest_var() -> Expr {
    Expr::var(DEST_VAR, Type::BitVec(32))
}

impl DestSpec {
    /// Is node `v` the destination? Constant for fixed destinations, a
    /// comparison against the symbolic variable otherwise.
    pub fn is_dest(&self, v: NodeId) -> Expr {
        match self {
            DestSpec::Fixed(d) => Expr::bool(v == *d),
            DestSpec::Symbolic => dest_var().eq(node_id_expr(v)),
        }
    }

    /// The constraint pinning the symbolic destination to edge nodes
    /// (`None` for fixed destinations).
    pub fn constraint(&self, ft: &FatTree) -> Option<Expr> {
        match self {
            DestSpec::Fixed(_) => None,
            DestSpec::Symbolic => {
                Some(Expr::or_all(ft.edge_nodes().map(|e| dest_var().eq(node_id_expr(e)))))
            }
        }
    }

    /// Is the destination inside pod `pod`? (Expression for symbolic.)
    pub fn dest_in_pod(&self, ft: &FatTree, pod: usize) -> Expr {
        match self {
            DestSpec::Fixed(d) => {
                Expr::bool(matches!(ft.role(*d), FatTreeRole::Edge { pod: p } if p == pod))
            }
            DestSpec::Symbolic => Expr::or_all(ft.edge_nodes().filter_map(|e| match ft.role(e) {
                FatTreeRole::Edge { pod: p } if p == pod => Some(dest_var().eq(node_id_expr(e))),
                _ => None,
            })),
        }
    }

    /// The paper's `dist(v)` as an integer expression (§6, "Witness times"):
    /// 0 at the destination, 1 for same-pod aggregation, 2 for cores and
    /// same-pod edges, 3/4 for other-pod aggregation/edge nodes.
    pub fn dist(&self, ft: &FatTree, v: NodeId) -> Expr {
        match ft.role(v) {
            FatTreeRole::Core => Expr::int(2),
            FatTreeRole::Aggregation { pod } => {
                self.dest_in_pod(ft, pod).ite(Expr::int(1), Expr::int(3))
            }
            FatTreeRole::Edge { pod } => self
                .is_dest(v)
                .ite(Expr::int(0), self.dest_in_pod(ft, pod).ite(Expr::int(2), Expr::int(4))),
        }
    }

    /// The paper's `adj(v)`: the destination itself and the aggregation
    /// switches of its pod (the nodes that share routes upward first).
    pub fn adjacent(&self, ft: &FatTree, v: NodeId) -> Expr {
        match ft.role(v) {
            FatTreeRole::Core => Expr::bool(false),
            FatTreeRole::Aggregation { pod } => self.dest_in_pod(ft, pod),
            FatTreeRole::Edge { .. } => self.is_dest(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::{Env, Value};

    fn eval_int(e: &Expr, dest: Option<NodeId>) -> i128 {
        let mut env = Env::new();
        if let Some(d) = dest {
            env.bind(DEST_VAR, Value::bv(d.index() as u64, 32));
        }
        e.eval(&env).unwrap().as_int().unwrap()
    }

    #[test]
    fn fixed_dist_matches_topology_dist() {
        let ft = FatTree::new(4);
        for dest in ft.edge_nodes() {
            let spec = DestSpec::Fixed(dest);
            for v in ft.topology().nodes() {
                assert_eq!(
                    eval_int(&spec.dist(&ft, v), None) as u64,
                    ft.dist(v, dest),
                    "node {}",
                    ft.topology().name(v)
                );
            }
        }
    }

    #[test]
    fn symbolic_dist_matches_fixed_dist_under_binding() {
        let ft = FatTree::new(4);
        let spec = DestSpec::Symbolic;
        for dest in ft.edge_nodes() {
            for v in ft.topology().nodes() {
                assert_eq!(
                    eval_int(&spec.dist(&ft, v), Some(dest)) as u64,
                    ft.dist(v, dest),
                    "node {} dest {}",
                    ft.topology().name(v),
                    ft.topology().name(dest)
                );
            }
        }
    }

    #[test]
    fn symbolic_constraint_allows_exactly_edge_nodes() {
        let ft = FatTree::new(4);
        let c = DestSpec::Symbolic.constraint(&ft).unwrap();
        for v in ft.topology().nodes() {
            let mut env = Env::new();
            env.bind(DEST_VAR, Value::bv(v.index() as u64, 32));
            let ok = c.eval_bool(&env).unwrap();
            let is_edge = matches!(ft.role(v), FatTreeRole::Edge { .. });
            assert_eq!(ok, is_edge, "node {}", ft.topology().name(v));
        }
    }

    #[test]
    fn adjacency_expr_matches_topology_adjacency() {
        let ft = FatTree::new(4);
        for dest in ft.edge_nodes().take(2) {
            for spec in [DestSpec::Fixed(dest), DestSpec::Symbolic] {
                for v in ft.topology().nodes() {
                    let e = spec.adjacent(&ft, v);
                    let mut env = Env::new();
                    env.bind(DEST_VAR, Value::bv(dest.index() as u64, 32));
                    assert_eq!(
                        e.eval_bool(&env).unwrap(),
                        ft.is_adjacent(v, dest),
                        "node {} dest {} spec {spec:?}",
                        ft.topology().name(v),
                        ft.topology().name(dest)
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_constraint_is_none() {
        let ft = FatTree::new(4);
        let dest = ft.edge_nodes().next().unwrap();
        assert!(DestSpec::Fixed(dest).constraint(&ft).is_none());
    }
}
