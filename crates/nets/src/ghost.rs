//! Ghost-state property encodings (Table 1).
//!
//! Ghost fields ride along with routes — transfer functions may set them but
//! they never influence selection — and let node-local invariants capture
//! end-to-end properties. This module implements four of the paper's Table 1
//! rows as small, checkable networks:
//!
//! * **isolation** — one bit per isolation domain; a route records which
//!   domain originated it, and domain-A nodes must never hold domain-B
//!   routes;
//! * **unordered waypoints** — `k` bits; each waypoint sets its bit, and the
//!   monitored node requires all bits set;
//! * **no-transit** — a `{peer, prov, cust}` mark; routes learned from one
//!   peer must not be exported to another peer;
//! * **fault tolerance** — one symbolic failure bit per tracked edge;
//!   reachability is proved under the assumption that not all paths fail.
//!
//! (The reachability-origin bit of Table 1 is the `fromw` field of
//! [`crate::example`]; bounded path length is the `len` field used by
//! [`crate::len`]; routing-loop tracking is exercised in the integration
//! tests.)

use std::sync::Arc;

use timepiece_algebra::{NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, RecordDef, Type};
use timepiece_topology::Topology;

use crate::BenchInstance;

/// **Isolation**: two chains `a0 → a1` (domain A) and `b0 → b1` (domain B)
/// joined by a cross link `a1 → b1` that *should* be filtered. Routes carry
/// one ghost bit per domain; the property says B-domain state never reaches
/// A-domain nodes and vice versa.
///
/// With `filtered = false` the cross-domain filter is missing and the check
/// must fail at `b1`.
pub fn isolation(filtered: bool) -> BenchInstance {
    let record = Arc::new(RecordDef::new(
        "IsoRoute",
        [("from_a".to_owned(), Type::Bool), ("from_b".to_owned(), Type::Bool)],
    ));
    let ty = Type::option(Type::Record(Arc::clone(&record)));
    let payload_ty = ty.option_payload().unwrap().clone();

    let mut g = Topology::new();
    let a0 = g.add_node("a0");
    let a1 = g.add_node("a1");
    let b0 = g.add_node("b0");
    let b1 = g.add_node("b1");
    g.add_edge(a0, a1);
    g.add_edge(b0, b1);
    g.add_edge(a1, b1); // the cross-domain link

    let originate =
        |a: bool, b: bool| Expr::record(&record, vec![Expr::bool(a), Expr::bool(b)]).some();

    let mut builder = NetworkBuilder::new(g, ty.clone())
        .merge(|a, b| a.clone().is_some().ite(a.clone(), b.clone()))
        .default_transfer(|r| r.clone())
        .init(a0, originate(true, false))
        .init(b0, originate(false, true));
    if filtered {
        let payload_ty = payload_ty.clone();
        builder = builder.transfer((a1, b1), move |_| Expr::none(payload_ty.clone()));
    }
    let network = builder.build().expect("isolation network is well-typed");

    let in_domain = |field: &'static str| {
        Temporal::globally(move |r: &Expr| {
            r.clone().is_none().or(r.clone().get_some().field(field))
        })
    };
    let mut interface = NodeAnnotations::new(network.topology(), Temporal::any());
    interface.set(a0, in_domain("from_a"));
    interface.set(a1, in_domain("from_a"));
    interface.set(b0, in_domain("from_b"));
    interface.set(b1, in_domain("from_b"));
    let property = interface.clone();
    BenchInstance { network, interface, property }
}

/// **Unordered waypoints**: a chain `src → w1 → w2 → dst` where `w1`/`w2`
/// set their waypoint bits. The property at `dst`: once a route arrives (3
/// hops), it has traversed *both* waypoints.
///
/// With `skip_w2 = true` the chain bypasses `w2` (`src → w1 → dst`), and the
/// check must fail.
pub fn unordered_waypoints(skip_w2: bool) -> BenchInstance {
    let record = Arc::new(RecordDef::new(
        "WpRoute",
        [("w1".to_owned(), Type::Bool), ("w2".to_owned(), Type::Bool)],
    ));
    let ty = Type::option(Type::Record(Arc::clone(&record)));
    let payload_ty = ty.option_payload().unwrap().clone();

    let mut g = Topology::new();
    let src = g.add_node("src");
    let w1 = g.add_node("w1");
    let w2 = g.add_node("w2");
    let dst = g.add_node("dst");
    g.add_edge(src, w1);
    let dist_dst: u64 = if skip_w2 {
        g.add_edge(w1, dst);
        2
    } else {
        g.add_edge(w1, w2);
        g.add_edge(w2, dst);
        3
    };

    let set_bit = move |field: &'static str, payload_ty: Type| {
        move |r: &Expr| {
            r.clone().match_option(Expr::none(payload_ty.clone()), |route| {
                route.with_field(field, Expr::bool(true)).some()
            })
        }
    };

    let mut builder = NetworkBuilder::new(g, ty.clone())
        .merge(|a, b| a.clone().is_some().ite(a.clone(), b.clone()))
        .default_transfer(|r| r.clone())
        .init(src, Expr::record(&record, vec![Expr::bool(false), Expr::bool(false)]).some())
        // the waypoint marks its bit on *export*
        .transfer((src, w1), set_bit("w1", payload_ty.clone()));
    if !skip_w2 {
        builder = builder
            .transfer((w1, w2), set_bit("w2", payload_ty.clone()))
            .transfer((w2, dst), |r| r.clone());
    } else {
        builder = builder.transfer((w1, dst), |r| r.clone());
    }
    let network = builder.build().expect("waypoint network is well-typed");

    // interface: routes arrive along the chain, accumulating bits
    let arrives = |t: u64, pred: fn(&Expr) -> Expr| {
        Temporal::until_at(t, |r| r.clone().is_none(), Temporal::globally(pred))
    };
    let mut interface = NodeAnnotations::new(network.topology(), Temporal::any());
    interface.set(src, Temporal::globally(|r| r.clone().is_some()));
    interface.set(w1, arrives(1, |r| r.clone().is_some().and(r.clone().get_some().field("w1"))));
    if !skip_w2 {
        interface.set(
            w2,
            arrives(2, |r| {
                r.clone()
                    .is_some()
                    .and(r.clone().get_some().field("w1"))
                    .and(r.clone().get_some().field("w2"))
            }),
        );
    }
    let through_both = |r: &Expr| {
        r.clone()
            .is_some()
            .and(r.clone().get_some().field("w1"))
            .and(r.clone().get_some().field("w2"))
    };
    interface.set(dst, arrives(dist_dst.min(3), through_both));

    let mut property = NodeAnnotations::new(network.topology(), Temporal::any());
    property.set(dst, Temporal::finally_at(3, Temporal::globally(through_both)));
    BenchInstance { network, interface, property }
}

/// **No-transit**: a provider node `c` between two peers `p1` and `p2`.
/// Routes are marked with their business relationship on import
/// (`{cust, peer, prov}`); exports to a peer must only carry customer
/// routes. With `leaky = true` the export filter is missing and peer-learned
/// routes transit — the check fails at `p2`.
pub fn no_transit(leaky: bool) -> BenchInstance {
    let mark_ty = Type::enumeration("Mark", ["cust", "peer", "prov"]);
    let record = Arc::new(RecordDef::new("NtRoute", [("mark".to_owned(), mark_ty.clone())]));
    let ty = Type::option(Type::Record(Arc::clone(&record)));
    let payload_ty = ty.option_payload().unwrap().clone();
    let mark_def = mark_ty.enum_def().unwrap().clone();

    let mut g = Topology::new();
    let p1 = g.add_node("p1");
    let c = g.add_node("c");
    let p2 = g.add_node("p2");
    let cust = g.add_node("cust");
    g.add_edge(p1, c);
    g.add_edge(cust, c);
    g.add_edge(c, p2);

    let mark = |variant: &'static str, payload_ty: Type, mark_def: Arc<timepiece_expr::EnumDef>| {
        move |r: &Expr| {
            r.clone().match_option(Expr::none(payload_ty.clone()), |route| {
                route
                    .with_field(
                        "mark",
                        Expr::constant(timepiece_expr::Value::enum_variant(&mark_def, variant)),
                    )
                    .some()
            })
        }
    };

    let peer_mark = Expr::constant(timepiece_expr::Value::enum_variant(&mark_def, "peer"));
    let mut builder = NetworkBuilder::new(g, ty.clone())
        // prefer customer routes (cheapest), then anything present
        .merge({
            let mark_def = mark_def.clone();
            move |a, b| {
                let cust_const =
                    Expr::constant(timepiece_expr::Value::enum_variant(&mark_def, "cust"));
                let b_cust = b.clone().get_some().field("mark").eq(cust_const.clone());
                let a_cust = a.clone().get_some().field("mark").eq(cust_const);
                let choose_b =
                    b.clone().is_some().and(a.clone().is_none().or(b_cust.and(a_cust.not())));
                choose_b.ite(b.clone(), a.clone())
            }
        })
        .transfer((p1, c), mark("peer", payload_ty.clone(), mark_def.clone()))
        .transfer((cust, c), mark("cust", payload_ty.clone(), mark_def.clone()))
        .init(p1, Expr::record(&record, vec![peer_mark.clone()]).some())
        .init(
            cust,
            Expr::record(
                &record,
                vec![Expr::constant(timepiece_expr::Value::enum_variant(&mark_def, "cust"))],
            )
            .some(),
        );
    if leaky {
        builder = builder.transfer((c, p2), |r| r.clone());
    } else {
        // export to a peer: only customer routes
        let payload_ty = payload_ty.clone();
        let mark_def_f = mark_def.clone();
        builder = builder.transfer((c, p2), move |r| {
            let cust_const =
                Expr::constant(timepiece_expr::Value::enum_variant(&mark_def_f, "cust"));
            let is_cust = r.clone().get_some().field("mark").eq(cust_const);
            r.clone().is_some().and(is_cust).ite(r.clone(), Expr::none(payload_ty.clone()))
        });
    }
    let network = builder.build().expect("no-transit network is well-typed");

    // interface/property: p2 only ever sees customer routes
    let mark_def2 = mark_def.clone();
    let only_cust = Temporal::globally(move |r: &Expr| {
        let cust_const = Expr::constant(timepiece_expr::Value::enum_variant(&mark_def2, "cust"));
        r.clone().is_none().or(r.clone().get_some().field("mark").eq(cust_const))
    });
    let mut interface = NodeAnnotations::new(network.topology(), Temporal::any());
    interface.set(p2, only_cust);
    let property = interface.clone();
    BenchInstance { network, interface, property }
}

/// **Fault tolerance**: a diamond `a → {b, c} → d` with symbolic failure
/// bits on the two first-hop edges, constrained so at most one fails. The
/// property: `d` is reachable by time 2 regardless of which single link
/// failed.
///
/// With `allow_double_fault = true` the constraint permits both links to
/// fail and the property correctly becomes unprovable.
pub fn fault_tolerance(allow_double_fault: bool) -> BenchInstance {
    let ty = Type::Bool; // reachability bit
    let mut g = Topology::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);

    let fail_ab = Expr::var("fail-ab", Type::Bool);
    let fail_ac = Expr::var("fail-ac", Type::Bool);
    let constraint =
        if allow_double_fault { None } else { Some(fail_ab.clone().and(fail_ac.clone()).not()) };

    let network = NetworkBuilder::new(g, ty)
        .merge(|x, y| x.clone().or(y.clone()))
        .transfer((a, b), {
            let fail_ab = fail_ab.clone();
            move |r| r.clone().and(fail_ab.clone().not())
        })
        .transfer((a, c), {
            let fail_ac = fail_ac.clone();
            move |r| r.clone().and(fail_ac.clone().not())
        })
        .default_transfer(|r| r.clone())
        .init(a, Expr::bool(true))
        .symbolic(Symbolic::new("fail-ab", Type::Bool, constraint))
        .symbolic(Symbolic::new("fail-ac", Type::Bool, None))
        .build()
        .expect("fault tolerance network is well-typed");

    // interfaces track exactly which copies survive
    let mut interface = NodeAnnotations::new(network.topology(), Temporal::any());
    interface.set(a, Temporal::globally(|r| r.clone()));
    interface.set(
        b,
        Temporal::until_at(
            1,
            |r| r.clone().not(),
            Temporal::globally({
                let fail_ab = fail_ab.clone();
                move |r: &Expr| r.clone().iff(fail_ab.clone().not())
            }),
        ),
    );
    interface.set(
        c,
        Temporal::until_at(
            1,
            |r| r.clone().not(),
            Temporal::globally({
                let fail_ac = fail_ac.clone();
                move |r: &Expr| r.clone().iff(fail_ac.clone().not())
            }),
        ),
    );
    interface.set(
        d,
        Temporal::until_at(
            2,
            |r| r.clone().not(),
            Temporal::globally({
                let fail_ab = fail_ab.clone();
                let fail_ac = fail_ac.clone();
                move |r: &Expr| r.clone().iff(fail_ab.clone().not().or(fail_ac.clone().not()))
            }),
        ),
    );

    let mut property = NodeAnnotations::new(network.topology(), Temporal::any());
    property.set(d, Temporal::finally_at(2, Temporal::globally(|r| r.clone())));
    BenchInstance { network, interface, property }
}

#[cfg(test)]
mod tests {
    use timepiece_core::check::{CheckOptions, ModularChecker};

    use super::*;

    fn verify(inst: &BenchInstance) -> bool {
        ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap()
            .is_verified()
    }

    #[test]
    fn isolation_holds_with_filter() {
        assert!(verify(&isolation(true)));
    }

    #[test]
    fn isolation_violation_caught_without_filter() {
        let inst = isolation(false);
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(!report.is_verified());
        assert!(report.failures().iter().any(|f| f.node_name == "b1"));
    }

    #[test]
    fn waypoints_hold_on_full_chain() {
        assert!(verify(&unordered_waypoints(false)));
    }

    #[test]
    fn waypoint_bypass_caught() {
        assert!(!verify(&unordered_waypoints(true)));
    }

    #[test]
    fn no_transit_holds_with_export_filter() {
        assert!(verify(&no_transit(false)));
    }

    #[test]
    fn transit_leak_caught() {
        let inst = no_transit(true);
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(!report.is_verified());
        assert!(report.failures().iter().any(|f| f.node_name == "p2"));
    }

    #[test]
    fn single_fault_tolerated() {
        assert!(verify(&fault_tolerance(false)));
    }

    #[test]
    fn double_fault_breaks_reachability() {
        assert!(!verify(&fault_tolerance(true)));
    }
}
