//! The `Hijack` benchmark (Fig. 14d/h): route filtering against a hijacker.
//!
//! A `k`-fattree plus one *hijacker* node `h` attached to every core node.
//! `h` represents the Internet and may announce **any** route at any time
//! (its initial route is symbolic and its interface is `G(true)`). The
//! destination edge node originates a route for a *symbolic* internal prefix
//! `p`; core nodes drop routes from `h` claiming prefix `p` but let other
//! routes through. A boolean ghost field `tag` marks routes that passed
//! through `h`.
//!
//! Property: every internal node eventually has an untagged route for `p` —
//! `P_Hijack(v) ≡ F^4 G(s.prefix = p ∧ ¬s.tag)`.
//!
//! **Modelling note.** eBGP keeps a RIB entry *per prefix*; two routes for
//! different prefixes never compete. With one route per node, we reproduce
//! that by making `⊕` prefer routes whose destination is `p` (then the usual
//! attribute comparison). Allowed-through hijacker routes (for other
//! prefixes) still propagate — the ghost tag proves they never shadow `p`.

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::{FatTree, NodeId, Topology};

use crate::bgp::BgpSchema;
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// The symbolic internal prefix variable.
pub const PREFIX_VAR: &str = "prefix";
/// The symbolic initial announcement of the hijacker.
pub const HIJACK_ROUTE_VAR: &str = "hijack-route";
/// The ghost field marking externally-originated routes.
pub const EXTERNAL_TAG: &str = "tag";

/// Builder for `SpHijack`/`ApHijack` instances.
#[derive(Debug, Clone)]
pub struct HijackBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
    topology: Topology,
    hijacker: NodeId,
}

impl HijackBench {
    /// `SpHijack` on a `k`-fattree with the given destination edge node.
    pub fn single_dest(k: usize, dest_index: usize) -> HijackBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        HijackBench::new(fattree, DestSpec::Fixed(dest))
    }

    /// `ApHijack`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> HijackBench {
        let fattree = FatTree::new(k);
        HijackBench::new(fattree, DestSpec::Symbolic)
    }

    fn new(fattree: FatTree, dest: DestSpec) -> HijackBench {
        let mut topology = fattree.topology().clone();
        let hijacker = topology.add_node("hijacker");
        let cores: Vec<NodeId> = fattree.core_nodes().collect();
        for c in cores {
            topology.add_undirected(hijacker, c);
        }
        HijackBench { fattree, dest, schema: Self::schema(), topology, hijacker }
    }

    /// The hijack schema: one ghost tag, and a leading merge key modelling
    /// eBGP's per-prefix RIB slots — routes for the internal prefix `p`
    /// never compete with (and always beat) routes for other prefixes.
    fn schema() -> BgpSchema {
        use timepiece_algebra::{MergeKey, RouteGuard};
        BgpSchema::with_leading_keys(
            [],
            [EXTERNAL_TAG],
            [MergeKey::GuardFirst(RouteGuard::FieldEqVar {
                field: "destination".into(),
                var: PREFIX_VAR.into(),
            })],
        )
    }

    /// The underlying fattree (without the hijacker).
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The hijacker's node id.
    pub fn hijacker(&self) -> NodeId {
        self.hijacker
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    fn prefix() -> Expr {
        Expr::var(PREFIX_VAR, Type::BitVec(32))
    }

    /// The anti-hijack import policy applied at the cores: drop hijacker
    /// routes claiming the internal prefix, mark everything else external.
    fn import_filter() -> timepiece_algebra::RoutePolicy {
        use timepiece_algebra::{RewriteOp, RouteGuard, RoutePolicy};
        RoutePolicy::new()
            .drop_if(RouteGuard::FieldEqVar { field: "destination".into(), var: PREFIX_VAR.into() })
            .rewrite([RewriteOp::SetBool { field: EXTERNAL_TAG.into(), value: true }])
            .increment("len")
    }

    /// The network: fattree + hijacker, anti-hijack filters at the cores,
    /// prefix-aware selection (the schema's leading `GuardFirst` merge key).
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let mut builder = NetworkBuilder::from_schema(self.topology.clone(), schema.ir().clone())
            .default_policy(schema.increment_policy());
        for (u, v) in self.topology.edges() {
            if u == self.hijacker {
                builder = builder.policy((u, v), Self::import_filter());
            }
        }
        // initial routes
        for v in self.topology.nodes() {
            if v == self.hijacker {
                builder = builder.init(v, Expr::var(HIJACK_ROUTE_VAR, schema.route_type()));
            } else {
                let originated = schema.originate(Self::prefix());
                builder =
                    builder.init(v, self.dest.is_dest(v).ite(originated, schema.none_route()));
            }
        }
        // symbolics: the internal prefix, the hijacker's announcement, and
        // (for Ap) the destination
        builder = builder
            .symbolic(Symbolic::new(PREFIX_VAR, Type::BitVec(32), None))
            .symbolic(Symbolic::new(HIJACK_ROUTE_VAR, schema.route_type(), None));
        if let Some(c) = self.dest.constraint(&self.fattree) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("hijack network is well-typed")
    }

    /// `A_Hijack`: `G(true)` at the hijacker; internally, the prefix-`p`
    /// route arrives by `dist(v)` and no prefix-`p` route is ever external.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(&self.topology, |v| {
            if v == self.hijacker {
                return Temporal::any();
            }
            let dist = self.dest.dist(&self.fattree, v);
            let never_hijacked = {
                let schema = schema.clone();
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let claims_p = schema.destination(&payload).eq(Self::prefix());
                    let tagged = schema.ghost(&payload, EXTERNAL_TAG);
                    r.clone().is_none().or(claims_p.implies(tagged.not()))
                })
            };
            let arrives = {
                let schema = schema.clone();
                Temporal::finally(
                    dist,
                    Temporal::globally(move |r| {
                        let payload = r.clone().get_some();
                        let claims_p = schema.destination(&payload).eq(Self::prefix());
                        let tagged = schema.ghost(&payload, EXTERNAL_TAG);
                        r.clone().is_some().and(claims_p).and(tagged.not())
                    }),
                )
            };
            never_hijacked.and(arrives)
        })
    }

    /// `P_Hijack(v) ≡ F^4 G(s.prefix = p ∧ ¬s.tag)` internally, `G(true)` at
    /// the hijacker.
    pub fn property(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(&self.topology, |v| {
            if v == self.hijacker {
                return Temporal::any();
            }
            let schema = schema.clone();
            Temporal::finally_at(
                4,
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let claims_p = schema.destination(&payload).eq(Self::prefix());
                    let tagged = schema.ghost(&payload, EXTERNAL_TAG);
                    r.clone().is_some().and(claims_p).and(tagged.not())
                }),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_expr::{Env, Value};

    #[test]
    fn sp_hijack_verifies_at_k4() {
        let inst = HijackBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_hijack_verifies_at_k4() {
        let inst = HijackBench::all_pairs(4).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn broken_core_filter_is_caught() {
        // a buggy network whose cores do NOT filter hijacker routes for p:
        // the inductive condition must fail somewhere
        use timepiece_algebra::{RewriteOp, RoutePolicy};
        let bench = HijackBench::single_dest(4, 0);
        let good = bench.build();
        let schema = bench.schema.clone();
        // BUG: marks external routes but forgets the prefix-drop clause
        let leaky_import = RoutePolicy::new()
            .rewrite([RewriteOp::SetBool { field: EXTERNAL_TAG.into(), value: true }])
            .increment("len");
        let mut builder = NetworkBuilder::from_schema(bench.topology.clone(), schema.ir().clone())
            .default_policy(schema.increment_policy());
        for (u, v) in bench.topology.edges() {
            if u == bench.hijacker {
                builder = builder.policy((u, v), leaky_import.clone());
            }
        }
        for v in bench.topology.nodes() {
            if v == bench.hijacker {
                builder = builder.init(v, Expr::var(HIJACK_ROUTE_VAR, schema.route_type()));
            } else {
                let originated = schema.originate(HijackBench::prefix());
                builder =
                    builder.init(v, bench.dest.is_dest(v).ite(originated, schema.none_route()));
            }
        }
        builder = builder
            .symbolic(Symbolic::new(PREFIX_VAR, Type::BitVec(32), None))
            .symbolic(Symbolic::new(HIJACK_ROUTE_VAR, schema.route_type(), None));
        let buggy = builder.build().unwrap();

        let report = ModularChecker::new(CheckOptions::default())
            .check(&buggy, &good.interface, &good.property)
            .unwrap();
        assert!(!report.is_verified(), "missing filter must be caught");
        // the error is localized at core nodes (the hijacker's neighbors)
        for f in report.failures() {
            assert!(
                f.node_name.starts_with("core-"),
                "failure localized at a core, got {}",
                f.node_name
            );
        }
    }

    #[test]
    fn simulation_with_concrete_hijack_attempt() {
        // close the network: hijacker announces the internal prefix with a
        // great (short) path — the filter must stop it
        let bench = HijackBench::single_dest(4, 0);
        let inst = bench.build();
        let schema = &bench.schema;
        let def = schema.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        let hijack_announcement = Value::some(Value::record(
            def,
            vec![
                Value::bv(7, 32), // claims prefix 7 = the internal prefix below
                Value::bv(crate::bgp::DEFAULT_AD, 32),
                Value::bv(crate::bgp::DEFAULT_LP, 32),
                Value::bv(crate::bgp::DEFAULT_MED, 32),
                Value::enum_variant(&origin_def, "egp"),
                Value::int(0),
                Value::set_of(&comm_def, []),
                Value::Bool(false),
            ],
        ));
        let mut env = Env::new();
        env.bind(PREFIX_VAR, Value::bv(7, 32));
        env.bind(HIJACK_ROUTE_VAR, hijack_announcement);
        let trace = timepiece_sim::simulate(&inst.network, &env, 16).unwrap();
        for v in inst.network.topology().nodes() {
            if v == bench.hijacker {
                continue;
            }
            let stable = trace.state(v, 10);
            let payload = stable.unwrap_or_default().unwrap();
            assert_eq!(payload.field("destination").unwrap().as_bv(), Some(7));
            assert_eq!(
                payload.field(EXTERNAL_TAG).unwrap().as_bool(),
                Some(false),
                "hijacked route won at {}",
                inst.network.topology().name(v)
            );
        }
    }
}
