//! The `Len` benchmark (Fig. 14b/f): bounded path length.
//!
//! Same policy as `Reach`, stronger property: every node eventually has a
//! route of at most 4 hops — `P_Len(v) ≡ F^4 G(s.len ≤ 4)`. To make the
//! interface inductive it must also rule out "better" spurious routes, so it
//! pins the preference-relevant attributes to their defaults:
//!
//! `A_Len(v) ≡ G(s = ∞ ∨ attrs-default) ⊓ F^{dist(v)} G(s ≠ ∞ ∧ s.len ≤ dist(v))`

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::FatTree;

use crate::bgp::{BgpSchema, DEFAULT_AD, DEFAULT_LP, DEFAULT_MED};
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// Builder for `SpLen`/`ApLen` instances.
#[derive(Debug, Clone)]
pub struct LenBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
}

/// "The route's preference attributes are the defaults" — no better routes
/// can appear, which makes path-length reasoning inductive.
fn attrs_default(schema: &BgpSchema, r: &Expr) -> Expr {
    let payload = r.clone().get_some();
    let ad_ok = payload.clone().field("ad").eq(Expr::bv(DEFAULT_AD, 32));
    let lp_ok = schema.lp(&payload).eq(Expr::bv(DEFAULT_LP, 32));
    let med_ok = payload.clone().field("med").eq(Expr::bv(DEFAULT_MED, 32));
    r.clone().is_none().or(ad_ok.and(lp_ok).and(med_ok))
}

impl LenBench {
    /// `SpLen`: route to the `dest_index`-th edge node of a `k`-fattree.
    pub fn single_dest(k: usize, dest_index: usize) -> LenBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        LenBench { fattree, dest: DestSpec::Fixed(dest), schema: BgpSchema::new([], []) }
    }

    /// `ApLen`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> LenBench {
        LenBench {
            fattree: FatTree::new(k),
            dest: DestSpec::Symbolic,
            schema: BgpSchema::new([], []),
        }
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The fixed destination node (`None` for the all-pairs variant).
    pub fn dest_node(&self) -> Option<timepiece_topology::NodeId> {
        match self.dest {
            DestSpec::Fixed(d) => Some(d),
            DestSpec::Symbolic => None,
        }
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// Same network as `Reach` (plain eBGP, incrementing transfer), declared
    /// through the policy IR.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let mut builder =
            NetworkBuilder::from_schema(self.fattree.topology().clone(), schema.ir().clone())
                .default_policy(schema.increment_policy());
        for v in self.fattree.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            builder = builder.init(v, self.dest.is_dest(v).ite(originated, schema.none_route()));
        }
        if let Some(c) = self.dest.constraint(&self.fattree) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("len network is well-typed")
    }

    /// `A_Len(v)`: defaults always, then a route within `dist(v)` hops.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let dist = self.dest.dist(&self.fattree, v);
            let no_better = {
                let schema = schema.clone();
                Temporal::globally(move |r| attrs_default(&schema, r))
            };
            let arrives = {
                let schema = schema.clone();
                let dist = dist.clone();
                Temporal::finally(
                    dist.clone(),
                    Temporal::globally(move |r| {
                        let len_ok = schema.len(&r.clone().get_some()).le(dist.clone());
                        r.clone().is_some().and(len_ok)
                    }),
                )
            };
            no_better.and(arrives)
        })
    }

    /// `P_Len(v) ≡ F^4 G(s ≠ ∞ ∧ s.len ≤ 4)`.
    pub fn property(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::new(
            self.fattree.topology(),
            Temporal::finally_at(
                4,
                Temporal::globally(move |r| {
                    let len_ok = schema.len(&r.clone().get_some()).le(Expr::int(4));
                    r.clone().is_some().and(len_ok)
                }),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};

    #[test]
    fn sp_len_verifies_at_k4() {
        let inst = LenBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_len_verifies_at_k4() {
        let inst = LenBench::all_pairs(4).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn dropping_the_no_better_conjunct_breaks_induction() {
        // the paper's point: F^{dist} G(len ≤ dist) alone is NOT inductive,
        // because neighbors could offer preferable (higher-lp) routes
        let bench = LenBench::single_dest(4, 0);
        let inst = bench.build();
        let schema = BgpSchema::new([], []);
        let weak = NodeAnnotations::from_fn(inst.network.topology(), |v| {
            let dist = bench.dest.dist(&bench.fattree, v);
            let schema = schema.clone();
            let dist2 = dist.clone();
            Temporal::finally(
                dist,
                Temporal::globally(move |r| {
                    r.clone().is_some().and(schema.len(&r.clone().get_some()).le(dist2.clone()))
                }),
            )
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &weak, &inst.property)
            .unwrap();
        assert!(!report.is_verified(), "weak interface must fail induction");
    }

    #[test]
    fn tighter_property_than_reachable_is_checked() {
        // property asks len ≤ 3: interface admits len = 4 at distance-4
        // nodes, so the SAFETY condition must fail there
        let bench = LenBench::single_dest(4, 0);
        let inst = bench.build();
        let schema = BgpSchema::new([], []);
        let too_tight = NodeAnnotations::new(
            inst.network.topology(),
            Temporal::finally_at(
                4,
                Temporal::globally(move |r| {
                    r.clone().is_some().and(schema.len(&r.clone().get_some()).le(Expr::int(3)))
                }),
            ),
        );
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &too_tight)
            .unwrap();
        assert!(!report.is_verified());
        assert!(report.failures().iter().all(|f| f.vc == timepiece_core::VcKind::Safety));
    }
}
