//! The benchmark networks of the Timepiece paper (§2 and §6).
//!
//! Each module builds a ready-to-verify triple — a
//! [`timepiece_algebra::Network`], an interface and a property (both
//! [`timepiece_core::NodeAnnotations`]) — for one of the paper's benchmarks:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`example`]  | the §2 running example (Figs. 2–10), good/bad/ghost interfaces |
//! | [`bgp`]      | the eBGP route schema of Table 3 |
//! | [`reach`]    | `SpReach` / `ApReach` (Fig. 14a/e) |
//! | [`len`]      | `SpLen` / `ApLen` (Fig. 14b/f) |
//! | [`vf`]       | `SpVf` / `ApVf` — valley freedom (Fig. 13, Fig. 14c/g) |
//! | [`hijack`]   | `SpHijack` / `ApHijack` (Fig. 14d/h) |
//! | [`wan`]      | `BlockToExternal` on the synthetic Internet2 (§6) |
//! | [`ghost`]    | the ghost-state property encodings of Table 1 |
//!
//! The `Sp` variants route to a fixed destination edge node; the `Ap`
//! variants make the destination a *symbolic* node, so one check covers
//! all-pairs routing (§6).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ad;
pub mod bgp;
pub mod example;
pub mod fail;
pub mod fattree_common;
pub mod ghost;
pub mod hijack;
pub mod len;
pub mod med;
pub mod reach;
pub mod vf;
pub mod wan;

/// A benchmark in its *property-only* form: the network and the property to
/// prove, with no interface annotations.
///
/// This is the input shape of interface **inference** (`timepiece-infer`):
/// everything a verification problem needs except the hand-written per-node
/// interfaces. Every benchmark builder exposes a `spec()` constructor for
/// this form alongside its annotated [`BenchInstance`].
#[derive(Debug, Clone)]
pub struct PropertySpec {
    /// The network `N = (G, S, I, F, ⊕)`.
    pub network: timepiece_algebra::Network,
    /// The per-node properties `P`.
    pub property: timepiece_core::NodeAnnotations,
}

impl From<BenchInstance> for PropertySpec {
    fn from(inst: BenchInstance) -> PropertySpec {
        inst.into_spec()
    }
}

/// A benchmark instance ready for the modular or monolithic checker.
#[derive(Debug)]
pub struct BenchInstance {
    /// The network `N = (G, S, I, F, ⊕)`.
    pub network: timepiece_algebra::Network,
    /// The per-node interfaces `A`.
    pub interface: timepiece_core::NodeAnnotations,
    /// The per-node properties `P`.
    pub property: timepiece_core::NodeAnnotations,
}

impl BenchInstance {
    /// The property-only form: surrenders the hand-written interface so an
    /// inference engine can synthesize its own.
    pub fn into_spec(self) -> PropertySpec {
        PropertySpec { network: self.network, property: self.property }
    }

    /// A cloning variant of [`BenchInstance::into_spec`].
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network.clone(), property: self.property.clone() }
    }
}
