//! The `Med` benchmark: multi-exit discrimination across fattree planes.
//!
//! The destination's uplinks advertise per-exit MEDs: the policy of every
//! edge-layer uplink into plane-`j` aggregation stamps `med := j` on routes
//! that are still fresh (`len = 0`, i.e. coming straight from the
//! originator). Routes then ride the plane they entered — aggregation and
//! core switches of plane `j` stabilize on `med = j` — until they descend to
//! an edge switch, which hears **all** planes at equal AS-path length and
//! must use the MED step of the decision process to pick the lowest exit.
//!
//! Property: every edge switch eventually selects the lowest-MED exit —
//! `P_Med(v) ≡ F^4 G(s ≠ ∞ ∧ s.med = 0)` at edge nodes, reachability
//! elsewhere. The interface pins each node's route exactly (Vf-style):
//!
//! `A_Med(v) ≡ s = ∞ U^{dist(v)} G(attrs ∧ len = dist(v) ∧ med = medval(v))`
//!
//! where `medval(v)` is 0 at edge switches and the plane index at
//! aggregation and core switches.

use timepiece_algebra::{
    ClauseAction, Network, NetworkBuilder, RewriteOp, RouteGuard, RoutePolicy, Symbolic,
};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::{FatTree, FatTreeRole};

use crate::bgp::{BgpSchema, DEFAULT_AD, DEFAULT_LP};
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// Builder for `SpMed`/`ApMed` instances.
#[derive(Debug, Clone)]
pub struct MedBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
}

impl MedBench {
    /// `SpMed`: route to the `dest_index`-th edge node of a `k`-fattree.
    pub fn single_dest(k: usize, dest_index: usize) -> MedBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        MedBench { fattree, dest: DestSpec::Fixed(dest), schema: BgpSchema::new([], []) }
    }

    /// `ApMed`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> MedBench {
        MedBench {
            fattree: FatTree::new(k),
            dest: DestSpec::Symbolic,
            schema: BgpSchema::new([], []),
        }
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The fixed destination node (`None` for the all-pairs variant).
    pub fn dest_node(&self) -> Option<timepiece_topology::NodeId> {
        match self.dest {
            DestSpec::Fixed(d) => Some(d),
            DestSpec::Symbolic => None,
        }
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// The exit-advertisement policy of an uplink into plane `j`: stamp
    /// `med := j` on fresh routes, then increment.
    fn uplink_policy(plane: usize) -> RoutePolicy {
        RoutePolicy::new()
            .when(
                RouteGuard::IntEq { field: "len".into(), value: 0 },
                ClauseAction::Rewrite(vec![RewriteOp::SetBv {
                    field: "med".into(),
                    value: plane as u64,
                }]),
            )
            .increment("len")
    }

    /// The network: plain eBGP plus per-plane exit MEDs on the edge-layer
    /// uplinks.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let ft = &self.fattree;
        let mut builder = NetworkBuilder::from_schema(ft.topology().clone(), schema.ir().clone())
            .default_policy(schema.increment_policy());
        for (u, v) in ft.topology().edges() {
            if let (FatTreeRole::Edge { .. }, FatTreeRole::Aggregation { .. }) =
                (ft.role(u), ft.role(v))
            {
                builder = builder.policy((u, v), Self::uplink_policy(ft.group(v)));
            }
        }
        for v in ft.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            builder = builder.init(v, self.dest.is_dest(v).ite(originated, schema.none_route()));
        }
        if let Some(c) = self.dest.constraint(ft) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("med network is well-typed")
    }

    /// The stable MED of a node: 0 at edge switches (lowest exit wins), the
    /// plane index at aggregation and core switches.
    pub fn medval(&self, v: timepiece_topology::NodeId) -> u64 {
        match self.fattree.role(v) {
            FatTreeRole::Edge { .. } => 0,
            FatTreeRole::Aggregation { .. } | FatTreeRole::Core => self.fattree.group(v) as u64,
        }
    }

    /// `A_Med(v)`: no route before `dist(v)`, then exactly the legitimate
    /// route of the node's plane.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let dist = self.dest.dist(&self.fattree, v);
            let medval = self.medval(v);
            let schema = schema.clone();
            let dist2 = dist.clone();
            Temporal::until(
                dist,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let attrs = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(DEFAULT_AD, 32))
                        .and(schema.lp(&payload).eq(Expr::bv(DEFAULT_LP, 32)));
                    let exact_len = schema.len(&payload).eq(dist2.clone());
                    let exact_med = schema.med(&payload).eq(Expr::bv(medval, 32));
                    r.clone().is_some().and(attrs).and(exact_len).and(exact_med)
                }),
            )
        })
    }

    /// `P_Med`: edge switches settle on the lowest exit (`med = 0`),
    /// everyone is eventually reachable.
    pub fn property(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let is_edge = matches!(self.fattree.role(v), FatTreeRole::Edge { .. });
            let schema = schema.clone();
            Temporal::finally_at(
                4,
                Temporal::globally(move |r| {
                    let lowest_exit = schema.med(&r.clone().get_some()).eq(Expr::bv(0, 32));
                    let med_ok = if is_edge { lowest_exit } else { Expr::bool(true) };
                    r.clone().is_some().and(med_ok)
                }),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_expr::Env;

    #[test]
    fn sp_med_verifies_at_k4() {
        let inst = MedBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_med_verifies_at_k4() {
        let inst = MedBench::all_pairs(4).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn simulation_confirms_lowest_exit_selection() {
        let bench = MedBench::single_dest(4, 0);
        let inst = bench.build();
        let trace = timepiece_sim::simulate(&inst.network, &Env::new(), 16).unwrap();
        assert!(trace.converged_at().unwrap() <= 4);
        for v in inst.network.topology().nodes() {
            let stable = trace.state(v, 8).unwrap_or_default().unwrap();
            assert_eq!(
                stable.field("med").unwrap().as_bv(),
                Some(bench.medval(v)),
                "med at {}",
                inst.network.topology().name(v)
            );
        }
    }

    #[test]
    fn ignoring_med_in_the_interface_breaks_induction() {
        // without the exact med pin, planes can masquerade for one another
        // and the edge property med = 0 stops being provable
        let bench = MedBench::single_dest(4, 0);
        let inst = bench.build();
        let schema = BgpSchema::new([], []);
        let loose = NodeAnnotations::from_fn(inst.network.topology(), |v| {
            let dist = bench.dest.dist(&bench.fattree, v);
            let schema = schema.clone();
            let dist2 = dist.clone();
            Temporal::until(
                dist,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| {
                    let exact_len = schema.len(&r.clone().get_some()).eq(dist2.clone());
                    r.clone().is_some().and(exact_len)
                }),
            )
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &loose, &inst.property)
            .unwrap();
        assert!(!report.is_verified());
    }
}
