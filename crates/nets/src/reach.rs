//! The `Reach` benchmark (Fig. 14a/e): every node eventually has a route.
//!
//! Policy: plain eBGP, transfer increments the path length. Property:
//! `P_Reach(v) ≡ F^4 G(s ≠ ∞)` (4 = the fattree diameter). Interface:
//! `A_Reach(v) ≡ F^{dist(v)} G(s ≠ ∞)`.

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::FatTree;

use crate::bgp::BgpSchema;
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// Builder for `SpReach`/`ApReach` instances.
#[derive(Debug, Clone)]
pub struct ReachBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
}

impl ReachBench {
    /// `SpReach`: route to the `dest_index`-th edge node of a `k`-fattree.
    pub fn single_dest(k: usize, dest_index: usize) -> ReachBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        ReachBench { fattree, dest: DestSpec::Fixed(dest), schema: ReachBench::schema() }
    }

    /// `ApReach`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> ReachBench {
        ReachBench {
            fattree: FatTree::new(k),
            dest: DestSpec::Symbolic,
            schema: ReachBench::schema(),
        }
    }

    fn schema() -> BgpSchema {
        BgpSchema::new([], [])
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// The fixed destination node (`None` for the all-pairs variant).
    pub fn dest_node(&self) -> Option<timepiece_topology::NodeId> {
        match self.dest {
            DestSpec::Fixed(d) => Some(d),
            DestSpec::Symbolic => None,
        }
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        let network = self.network();
        let interface = self.interface();
        let property = self.property();
        BenchInstance { network, interface, property }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// The network alone (plain eBGP with incrementing transfer), declared
    /// through the policy IR: the schema's merge keys are `⊕` and one
    /// default [`timepiece_algebra::RoutePolicy`] is every edge's transfer.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let mut builder =
            NetworkBuilder::from_schema(self.fattree.topology().clone(), schema.ir().clone())
                .default_policy(schema.increment_policy());
        for v in self.fattree.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            builder = builder.init(v, self.dest.is_dest(v).ite(originated, schema.none_route()));
        }
        if let Some(c) = self.dest.constraint(&self.fattree) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("reach network is well-typed")
    }

    /// `A_Reach(v) ≡ F^{dist(v)} G(s ≠ ∞)`.
    pub fn interface(&self) -> NodeAnnotations {
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let dist = self.dest.dist(&self.fattree, v);
            Temporal::finally(dist, Temporal::globally(|r| r.clone().is_some()))
        })
    }

    /// `P_Reach(v) ≡ F^4 G(s ≠ ∞)`.
    pub fn property(&self) -> NodeAnnotations {
        NodeAnnotations::new(
            self.fattree.topology(),
            Temporal::finally_at(4, Temporal::globally(|r| r.clone().is_some())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_core::monolithic::check_monolithic;

    #[test]
    fn sp_reach_verifies_at_k4() {
        let bench = ReachBench::single_dest(4, 0);
        let inst = bench.build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn sp_reach_verifies_for_last_edge_node() {
        let bench = ReachBench::single_dest(4, 7);
        let inst = bench.build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_reach_verifies_at_k4() {
        let bench = ReachBench::all_pairs(4);
        let inst = bench.build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn monolithic_agrees_on_sp_reach() {
        let inst = ReachBench::single_dest(4, 0).build();
        let report = check_monolithic(&inst.network, &inst.property, None).unwrap();
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn too_early_witness_time_is_rejected() {
        // claim every node has a route from time 0: fails at non-dest nodes
        let bench = ReachBench::single_dest(4, 0);
        let inst = bench.build();
        let bad = NodeAnnotations::new(
            inst.network.topology(),
            Temporal::globally(|r| r.clone().is_some()),
        );
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &bad, &inst.property)
            .unwrap();
        assert!(!report.is_verified());
        // the initial condition pinpoints every non-destination node
        let initial_failures =
            report.failures().iter().filter(|f| f.vc == timepiece_core::VcKind::Initial).count();
        assert_eq!(initial_failures, inst.network.topology().node_count() - 1);
    }

    #[test]
    fn simulation_confirms_the_verified_property() {
        use timepiece_expr::Env;
        let bench = ReachBench::single_dest(4, 0);
        let inst = bench.build();
        let trace = timepiece_sim::simulate(&inst.network, &Env::new(), 16).unwrap();
        assert!(trace.converged_at().unwrap() <= 4);
        for v in inst.network.topology().nodes() {
            assert_eq!(trace.state(v, 4).is_some_option(), Some(true));
        }
    }
}
