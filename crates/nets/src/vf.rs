//! The `Vf` benchmark (Fig. 13, Fig. 14c/g): valley-free reachability.
//!
//! Policy: `Reach` plus valley prevention — routes crossing a *down* edge
//! (core→aggregation or aggregation→edge) are tagged with the community `D`
//! ("down"), and *up* edges drop tagged routes, so no route descends into an
//! intermediate pod and climbs back up.
//!
//! The interface pins routes to exactly the legitimate shortest path
//! (`lp = 100 ∧ len = dist(v)`) and requires that nodes adjacent to the
//! destination only share untagged routes:
//!
//! `A_Vf(v) ≡ s = ∞ U^{dist(v)} G(attrs ∧ len = dist(v) ∧ (adj(v) → ¬s.down))`

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Expr, Type};
use timepiece_topology::FatTree;

use crate::bgp::{BgpSchema, DEFAULT_AD, DEFAULT_LP, DEFAULT_MED};
use crate::fattree_common::{DestSpec, DEST_VAR};
use crate::{BenchInstance, PropertySpec};

/// The community used to mark routes that traversed a down edge.
pub const DOWN: &str = "down";

/// Builder for `SpVf`/`ApVf` instances.
#[derive(Debug, Clone)]
pub struct VfBench {
    fattree: FatTree,
    dest: DestSpec,
    schema: BgpSchema,
}

impl VfBench {
    /// `SpVf`: route to the `dest_index`-th edge node of a `k`-fattree.
    pub fn single_dest(k: usize, dest_index: usize) -> VfBench {
        let fattree = FatTree::new(k);
        let dest = fattree.edge_nodes().nth(dest_index).expect("edge node index in range");
        VfBench { fattree, dest: DestSpec::Fixed(dest), schema: BgpSchema::new([DOWN], []) }
    }

    /// `ApVf`: the destination is a symbolic edge node.
    pub fn all_pairs(k: usize) -> VfBench {
        VfBench {
            fattree: FatTree::new(k),
            dest: DestSpec::Symbolic,
            schema: BgpSchema::new([DOWN], []),
        }
    }

    /// The underlying fattree.
    pub fn fattree(&self) -> &FatTree {
        &self.fattree
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        BenchInstance {
            network: self.network(),
            interface: self.interface(),
            property: self.property(),
        }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.property() }
    }

    /// The valley-free network: down edges tag `D`, up edges drop tagged
    /// routes — two declarative policies assigned by edge direction.
    pub fn network(&self) -> Network {
        use timepiece_algebra::{RewriteOp, RouteGuard, RoutePolicy};
        let schema = &self.schema;
        let down_policy = RoutePolicy::new()
            .increment("len")
            .rewrite([RewriteOp::AddTag { field: "comms".into(), tag: DOWN.into() }]);
        let up_policy = RoutePolicy::new()
            .drop_if(RouteGuard::HasTag { field: "comms".into(), tag: DOWN.into() })
            .increment("len");
        let mut builder =
            NetworkBuilder::from_schema(self.fattree.topology().clone(), schema.ir().clone());
        for (u, v) in self.fattree.topology().edges() {
            let policy = if self.fattree.is_down_edge(u, v) {
                down_policy.clone()
            } else {
                up_policy.clone()
            };
            builder = builder.policy((u, v), policy);
        }
        for v in self.fattree.topology().nodes() {
            let originated = schema.originate(Expr::bv(0, 32));
            builder = builder.init(v, self.dest.is_dest(v).ite(originated, schema.none_route()));
        }
        if let Some(c) = self.dest.constraint(&self.fattree) {
            builder = builder.symbolic(Symbolic::new(DEST_VAR, Type::BitVec(32), Some(c)));
        }
        builder.build().expect("vf network is well-typed")
    }

    /// `A_Vf(v)`: no route strictly before `dist(v)`, then exactly the
    /// legitimate route, untagged when `v` is adjacent to the destination.
    pub fn interface(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.fattree.topology(), |v| {
            let dist = self.dest.dist(&self.fattree, v);
            let adj = self.dest.adjacent(&self.fattree, v);
            let schema = schema.clone();
            let dist2 = dist.clone();
            Temporal::until(
                dist,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let attrs = payload
                        .clone()
                        .field("ad")
                        .eq(Expr::bv(DEFAULT_AD, 32))
                        .and(schema.lp(&payload).eq(Expr::bv(DEFAULT_LP, 32)))
                        .and(payload.clone().field("med").eq(Expr::bv(DEFAULT_MED, 32)));
                    let exact_len = schema.len(&payload).eq(dist2.clone());
                    let untagged_if_adj =
                        adj.clone().implies(schema.has_community(&payload, DOWN).not());
                    r.clone().is_some().and(attrs).and(exact_len).and(untagged_if_adj)
                }),
            )
        })
    }

    /// Same reachability property as `Reach`: `F^4 G(s ≠ ∞)`.
    pub fn property(&self) -> NodeAnnotations {
        NodeAnnotations::new(
            self.fattree.topology(),
            Temporal::finally_at(4, Temporal::globally(|r| r.clone().is_some())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_expr::Env;

    #[test]
    fn sp_vf_verifies_at_k4() {
        let inst = VfBench::single_dest(4, 0).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn ap_vf_verifies_at_k4() {
        let inst = VfBench::all_pairs(4).build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn simulation_shows_no_valley_routes() {
        // simulate and confirm: every stable route's length equals dist(v),
        // i.e. nothing took an up-down-up valley detour
        let bench = VfBench::single_dest(4, 0);
        let inst = bench.build();
        let dest = match bench.dest {
            DestSpec::Fixed(d) => d,
            DestSpec::Symbolic => unreachable!(),
        };
        let trace = timepiece_sim::simulate(&inst.network, &Env::new(), 16).unwrap();
        for v in inst.network.topology().nodes() {
            let stable = trace.state(v, 8);
            let payload = stable.unwrap_or_default().unwrap();
            assert_eq!(
                payload.field("len").unwrap().as_int().unwrap() as u64,
                bench.fattree.dist(v, dest),
                "valley detour at {}",
                inst.network.topology().name(v)
            );
        }
    }

    #[test]
    fn loose_length_interface_fails_vf_induction() {
        // replacing len = dist by len ≤ dist admits the spurious short
        // tagged routes the paper warns about, breaking induction
        let bench = VfBench::single_dest(4, 0);
        let inst = bench.build();
        let schema = BgpSchema::new([DOWN], []);
        let loose = NodeAnnotations::from_fn(inst.network.topology(), |v| {
            let dist = bench.dest.dist(&bench.fattree, v);
            let adj = bench.dest.adjacent(&bench.fattree, v);
            let schema = schema.clone();
            let dist2 = dist.clone();
            Temporal::until(
                dist,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| {
                    let payload = r.clone().get_some();
                    let le_len = schema.len(&payload).le(dist2.clone());
                    let untagged_if_adj =
                        adj.clone().implies(schema.has_community(&payload, DOWN).not());
                    r.clone().is_some().and(le_len).and(untagged_if_adj)
                }),
            )
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &loose, &inst.property)
            .unwrap();
        assert!(!report.is_verified());
    }
}
