//! The `BlockToExternal` wide-area benchmark (§6, Internet2).
//!
//! Built on the synthetic Internet2 of `timepiece-topology` (see DESIGN.md
//! for the substitution rationale): 10 backbone routers whose initial routes
//! are fully symbolic ("the internal nodes initially have any possible
//! route"), 253 classified external peers whose initial routes are symbolic
//! but assumed BTE-free.
//!
//! Policies mirror the published shape of Internet2's 1,552 Junos terms:
//! exports to peers drop routes carrying the `BTE` ("block to external")
//! community; imports from peers set the local preference by customer class
//! (commercial > academic > settlement-free), add the class community, and
//! filter a per-peer set of scrubbed communities.
//!
//! Property (and interface — the paper uses `A = P` here):
//! `P(v) ≡ G(s ≠ ∞ → BTE ∉ s.comms)` at external nodes, `G(true)` inside.

use timepiece_algebra::{Network, NetworkBuilder, Symbolic};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::Expr;
use timepiece_topology::{NodeId, PeerClass, Wan};

use crate::bgp::BgpSchema;
use crate::{BenchInstance, PropertySpec};

/// The "block to external" community.
pub const BTE: &str = "bte";
/// Communities scrubbed by import filters, cycled per peer.
pub const SCRUBBED: [&str; 4] = ["scrub0", "scrub1", "scrub2", "scrub3"];

/// Builder for the `BlockToExternal` instance.
#[derive(Debug)]
pub struct WanBench {
    wan: Wan,
    schema: BgpSchema,
}

impl WanBench {
    /// The full-size synthetic Internet2 (10 internal, 253 peers).
    pub fn internet2(seed: u64) -> WanBench {
        WanBench::with_peers(seed, 253)
    }

    /// A scaled variant with a chosen number of peers (for tests).
    pub fn with_peers(seed: u64, peers: usize) -> WanBench {
        let wan = Wan::synthetic(seed, peers);
        let mut comms = vec![BTE, "commercial", "academic", "peer"];
        comms.extend(SCRUBBED);
        WanBench { wan, schema: BgpSchema::new(comms, []) }
    }

    /// The underlying WAN.
    pub fn wan(&self) -> &Wan {
        &self.wan
    }

    fn class_lp(class: PeerClass) -> u64 {
        match class {
            PeerClass::Commercial => 200,
            PeerClass::Academic => 150,
            PeerClass::SettlementFree => 100,
        }
    }

    fn class_tag(class: PeerClass) -> &'static str {
        match class {
            PeerClass::Commercial => "commercial",
            PeerClass::Academic => "academic",
            PeerClass::SettlementFree => "peer",
        }
    }

    fn initial_var(&self, v: NodeId) -> String {
        format!("init-{}", self.wan.topology().name(v))
    }

    /// Assembles the network, interface and property.
    pub fn build(&self) -> BenchInstance {
        let network = self.network();
        let interface = self.block_to_external();
        BenchInstance { network, property: interface.clone(), interface }
    }

    /// The property-only form (no interface annotations), for inference.
    pub fn spec(&self) -> PropertySpec {
        PropertySpec { network: self.network(), property: self.block_to_external() }
    }

    /// The export policy on internal→peer links: drop BTE-tagged routes.
    fn export_policy(schema: &BgpSchema) -> timepiece_algebra::RoutePolicy {
        use timepiece_algebra::RouteGuard;
        schema
            .increment_policy()
            .drop_if(RouteGuard::HasTag { field: "comms".into(), tag: BTE.into() })
    }

    /// The import policy on peer→internal links: filter the peer's scrubbed
    /// community, set the class local-pref and add the class tag.
    fn import_policy(
        schema: &BgpSchema,
        class: PeerClass,
        scrub: &str,
    ) -> timepiece_algebra::RoutePolicy {
        use timepiece_algebra::{RewriteOp, RouteGuard};
        schema
            .increment_policy()
            .drop_if(RouteGuard::HasTag { field: "comms".into(), tag: scrub.into() })
            .rewrite([
                RewriteOp::SetBv { field: "lp".into(), value: Self::class_lp(class) },
                RewriteOp::AddTag { field: "comms".into(), tag: Self::class_tag(class).into() },
            ])
    }

    /// The WAN network with class-based import and BTE export filtering —
    /// every Junos-style term is a declarative policy clause.
    pub fn network(&self) -> Network {
        let schema = &self.schema;
        let g = self.wan.topology().clone();
        let mut builder = NetworkBuilder::from_schema(g, schema.ir().clone())
            .default_policy(schema.increment_policy());
        for (u, v) in self.wan.topology().edges() {
            match (self.wan.is_internal(u), self.wan.is_internal(v)) {
                // backbone link: the plain-increment default policy
                (true, true) => {}
                (true, false) => {
                    builder = builder.policy((u, v), Self::export_policy(schema));
                }
                (false, true) => {
                    let class = self.wan.peer_class(u);
                    let scrub = SCRUBBED[u.index() % SCRUBBED.len()];
                    builder = builder.policy((u, v), Self::import_policy(schema, class, scrub));
                }
                (false, false) => unreachable!("peers only attach to the backbone"),
            }
        }
        // symbolic initial routes everywhere
        for v in self.wan.topology().nodes() {
            let name = self.initial_var(v);
            let var = Expr::var(name.clone(), self.schema.route_type());
            let constraint = if self.wan.is_internal(v) {
                None // any possible route, including ∞
            } else {
                // externals do not start with BTE-tagged routes
                let payload = var.clone().get_some();
                Some(var.clone().is_none().or(self.schema.has_community(&payload, BTE).not()))
            };
            builder = builder.init(v, var).symbolic(Symbolic::new(
                name,
                self.schema.route_type(),
                constraint,
            ));
        }
        builder.build().expect("wan network is well-typed")
    }

    /// `G(s ≠ ∞ → BTE ∉ s.comms)` at external nodes, `G(true)` internally.
    pub fn block_to_external(&self) -> NodeAnnotations {
        let schema = self.schema.clone();
        NodeAnnotations::from_fn(self.wan.topology(), |v| {
            if self.wan.is_internal(v) {
                Temporal::any()
            } else {
                let schema = schema.clone();
                Temporal::globally(move |r| {
                    let has_bte = schema.has_community(&r.clone().get_some(), BTE);
                    r.clone().is_some().implies(has_bte.not())
                })
            }
        })
    }

    /// The number of synthetic policy "terms" (for the Table 2-style
    /// summary): one per filter/action across all edges.
    pub fn policy_term_count(&self) -> usize {
        let externals = self.wan.external_nodes().count();
        // export: 2 terms (match BTE, drop) per internal→external edge;
        // import: 4 terms (scrub match/drop, set lp, add tag) per edge
        externals * 2
            + externals * 4
            + self.wan.topology().edge_count().saturating_sub(externals * 2) // backbone increments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_core::check::{CheckOptions, ModularChecker};
    use timepiece_core::monolithic::check_monolithic;
    use timepiece_expr::{Env, Value};

    #[test]
    fn block_to_external_verifies_on_scaled_wan() {
        let bench = WanBench::with_peers(3, 12);
        let inst = bench.build();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&inst.network, &inst.interface, &inst.property)
            .unwrap();
        assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn monolithic_agrees_on_scaled_wan() {
        let bench = WanBench::with_peers(3, 6);
        let inst = bench.build();
        let report = check_monolithic(&inst.network, &inst.property, None).unwrap();
        assert!(report.outcome.is_verified());
    }

    #[test]
    fn missing_export_filter_is_caught_at_the_peer() {
        // rebuild the network with passthrough exports (the bug): now an
        // internal node holding a BTE route leaks it
        let bench = WanBench::with_peers(3, 6);
        let schema = bench.schema.clone();
        let g = bench.wan.topology().clone();
        let mut builder = NetworkBuilder::from_schema(g, schema.ir().clone())
            .default_policy(schema.increment_policy());
        for v in bench.wan.topology().nodes() {
            let name = bench.initial_var(v);
            let var = Expr::var(name.clone(), schema.route_type());
            let constraint = if bench.wan.is_internal(v) {
                None
            } else {
                let payload = var.clone().get_some();
                Some(var.clone().is_none().or(schema.has_community(&payload, BTE).not()))
            };
            builder =
                builder.init(v, var).symbolic(Symbolic::new(name, schema.route_type(), constraint));
        }
        let buggy = builder.build().unwrap();
        let interface = bench.block_to_external();
        let report = ModularChecker::new(CheckOptions::default())
            .check(&buggy, &interface, &interface)
            .unwrap();
        assert!(!report.is_verified());
        // failures are at external peers (the inductive condition)
        for f in report.failures() {
            assert!(f.node_name.starts_with("peer-"), "got {}", f.node_name);
            assert_eq!(f.vc, timepiece_core::VcKind::Inductive);
        }
    }

    #[test]
    fn simulation_of_a_leak_attempt() {
        // close the network: one internal node starts with a BTE route, all
        // other nodes with ∞ — no peer may ever see BTE
        let bench = WanBench::with_peers(1, 9);
        let inst = bench.build();
        let schema = &bench.schema;
        let def = schema.record_def();
        let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
        let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
        let bte_route = Value::some(Value::record(
            def,
            vec![
                Value::bv(0, 32),
                Value::bv(crate::bgp::DEFAULT_AD, 32),
                Value::bv(100, 32),
                Value::bv(0, 32),
                Value::enum_variant(&origin_def, "igp"),
                Value::int(0),
                Value::set_of(&comm_def, [BTE]),
            ],
        ));
        let mut env = Env::new();
        for v in inst.network.topology().nodes() {
            let name = bench.initial_var(v);
            if v == bench.wan.internal_nodes().next().unwrap() {
                env.bind(name, bte_route.clone());
            } else {
                env.bind(name, Value::default_of(&schema.route_type()));
            }
        }
        let trace = timepiece_sim::simulate(&inst.network, &env, 64).unwrap();
        for p in bench.wan.external_nodes() {
            let stable = trace.state(p, 40);
            if let Some(route) = stable.unwrap_or_default() {
                assert_eq!(
                    route.field("comms").unwrap().contains_tag(BTE),
                    Some(false),
                    "BTE leaked to {}",
                    inst.network.topology().name(p)
                );
            }
        }
    }

    #[test]
    fn full_internet2_shape() {
        let bench = WanBench::internet2(7);
        assert_eq!(bench.wan().internal_nodes().count(), 10);
        assert_eq!(bench.wan().external_nodes().count(), 253);
        assert!(bench.policy_term_count() > 1500);
    }
}
