//! Compiling a parsed scenario document down to the verification machinery.
//!
//! The pipeline is parse ([`crate::toml`]) → validate (every name, type and
//! merge key checked with positions) → lower (build the
//! [`Network`], per-node interface and property through the same
//! [`NetworkBuilder`] path the Rust-literal benchmarks use). The output,
//! [`CompiledScenario`], produces [`BenchInstance`]s on demand, so compiled
//! scenarios run unmodified through sweeps, sharding, the daemon and
//! inference.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use timepiece_algebra::{
    FailureModel, MergeKey, Network, NetworkBuilder, PolicyClause, RewriteOp, RouteGuard,
    RoutePolicy, RouteSchema, Symbolic,
};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Env, Expr, Type, Value};
use timepiece_infer::{InferOptions, InferenceEngine, RoleMap};
use timepiece_nets::BenchInstance;
use timepiece_topology::{FatTree, NodeId, Topology};

use crate::term::{self, TypeEnv};
use crate::toml::{self, Span, Spanned, Table, TomlValue};

/// A scenario compilation error, with the source position when known.
#[derive(Debug, Clone)]
pub struct ScenarioError {
    /// What is wrong.
    pub message: String,
    /// Where (absent for whole-document problems).
    pub span: Option<Span>,
}

impl ScenarioError {
    fn at(span: Span, message: impl Into<String>) -> ScenarioError {
        ScenarioError { message: message.into(), span: Some(span) }
    }

    fn whole(message: impl Into<String>) -> ScenarioError {
        ScenarioError { message: message.into(), span: None }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{span}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<toml::TomlError> for ScenarioError {
    fn from(e: toml::TomlError) -> ScenarioError {
        ScenarioError { message: e.message, span: Some(e.span) }
    }
}

/// A scenario lowered to the existing verification machinery.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Display name (used as the registry name when registered).
    pub name: String,
    /// Figure tag (free-form; `file` when the document does not set one).
    pub figure: String,
    /// Nominal size: the declared `k`, the fattree parameter, or the node
    /// count. Compiled scenarios have a fixed topology, so sweeps run them
    /// at exactly this size.
    pub k: usize,
    /// The compiled network.
    pub network: Network,
    /// Per-node temporal interfaces (inferred when `[interface] infer`).
    pub interface: NodeAnnotations,
    /// Per-node properties.
    pub property: NodeAnnotations,
}

impl CompiledScenario {
    /// A fresh annotated instance (clones the compiled parts).
    pub fn instance(&self) -> BenchInstance {
        BenchInstance {
            network: self.network.clone(),
            interface: self.interface.clone(),
            property: self.property.clone(),
        }
    }

    /// An environment closing the network for concrete simulation: every
    /// symbolic bound to its type's default, every failure variable to
    /// "link up".
    pub fn closing_env(&self) -> Env {
        closing_env(&self.network)
    }
}

/// An environment closing `network` for concrete simulation (symbolics at
/// their type defaults, all tracked links up).
pub fn closing_env(network: &Network) -> Env {
    let mut env = Env::new();
    for s in network.symbolics() {
        env.bind(s.name().to_owned(), Value::default_of(s.ty()));
    }
    if let Some(model) = network.policies().and_then(|p| p.failures.as_ref()) {
        model.bind_failures(network.topology(), &mut env, &[]);
    }
    env
}

// ---------------------------------------------------------------------------
// Table access helpers
// ---------------------------------------------------------------------------

fn section<'t>(doc: &'t Table, name: &str) -> Result<Option<&'t Table>, ScenarioError> {
    match doc.get(name) {
        None => Ok(None),
        Some(Spanned { value: TomlValue::Table(t), .. }) => Ok(Some(t)),
        Some(v) => Err(ScenarioError::at(v.span, format!("[{name}] must be a table"))),
    }
}

fn require_section<'t>(doc: &'t Table, name: &str) -> Result<&'t Table, ScenarioError> {
    section(doc, name)?
        .ok_or_else(|| ScenarioError::at(doc.span, format!("missing required section [{name}]")))
}

fn str_key<'t>(t: &'t Table, key: &str) -> Result<Option<(&'t str, Span)>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(Spanned { value: TomlValue::Str(s), span }) => Ok(Some((s, *span))),
        Some(v) => Err(ScenarioError::at(
            v.span,
            format!("{key:?} must be a string, found {}", v.value.kind()),
        )),
    }
}

fn require_str<'t>(t: &'t Table, key: &str) -> Result<(&'t str, Span), ScenarioError> {
    str_key(t, key)?
        .ok_or_else(|| ScenarioError::at(t.span, format!("missing required key {key:?}")))
}

fn int_key(t: &Table, key: &str) -> Result<Option<(i64, Span)>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(Spanned { value: TomlValue::Int(n), span }) => Ok(Some((*n, *span))),
        Some(v) => Err(ScenarioError::at(
            v.span,
            format!("{key:?} must be an integer, found {}", v.value.kind()),
        )),
    }
}

fn bool_key(t: &Table, key: &str) -> Result<Option<(bool, Span)>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(Spanned { value: TomlValue::Bool(b), span }) => Ok(Some((*b, *span))),
        Some(v) => Err(ScenarioError::at(
            v.span,
            format!("{key:?} must be a boolean, found {}", v.value.kind()),
        )),
    }
}

fn array_key<'t>(
    t: &'t Table,
    key: &str,
) -> Result<Option<&'t [Spanned<TomlValue>]>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(Spanned { value: TomlValue::Array(items), .. }) => Ok(Some(items)),
        Some(v) => Err(ScenarioError::at(
            v.span,
            format!("{key:?} must be an array, found {}", v.value.kind()),
        )),
    }
}

fn as_str(v: &Spanned<TomlValue>, what: &str) -> Result<(String, Span), ScenarioError> {
    match &v.value {
        TomlValue::Str(s) => Ok((s.clone(), v.span)),
        other => Err(ScenarioError::at(
            v.span,
            format!("{what} must be a string, found {}", other.kind()),
        )),
    }
}

fn as_pair(v: &Spanned<TomlValue>, what: &str) -> Result<(String, String, Span), ScenarioError> {
    match &v.value {
        TomlValue::Array(pair) if pair.len() == 2 => {
            let (a, _) = as_str(&pair[0], what)?;
            let (b, _) = as_str(&pair[1], what)?;
            Ok((a, b, v.span))
        }
        _ => Err(ScenarioError::at(v.span, format!("{what} must be a two-element array"))),
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Ctx {
    topology: Topology,
    fattree_k: Option<usize>,
    schema: RouteSchema,
    env: TypeEnv,
    edges: HashSet<(NodeId, NodeId)>,
}

impl Ctx {
    fn node(&self, name: &str, span: Span) -> Result<NodeId, ScenarioError> {
        self.topology.node_by_name(name).ok_or_else(|| {
            ScenarioError::at(span, format!("unknown node {name:?} (not in the topology)"))
        })
    }

    fn field_type(&self, field: &str) -> Option<&Type> {
        let def = self.schema.record_def();
        def.field_index(field).map(|i| &def.fields()[i].1)
    }
}

/// Compiles a scenario document.
///
/// # Errors
///
/// Returns a [`ScenarioError`] carrying the source position of the first
/// problem: syntax errors, unknown nodes or fields, ill-typed rewrites or
/// terms, non-total merge keys, missing sections.
pub fn compile_str(src: &str) -> Result<CompiledScenario, ScenarioError> {
    let doc = toml::parse(src)?;

    // --- [scenario] ---
    let meta = require_section(&doc, "scenario")?;
    let (name, _) = require_str(meta, "name")?;
    let figure =
        str_key(meta, "figure")?.map(|(s, _)| s.to_owned()).unwrap_or_else(|| "file".to_owned());
    let declared_k = int_key(meta, "k")?;

    // --- [topology] ---
    let topo_section = require_section(&doc, "topology")?;
    let (topology, fattree_k) = compile_topology(topo_section)?;

    // --- [schema] ---
    let schema_section = require_section(&doc, "schema")?;
    let (schema, mut env) = compile_schema(schema_section)?;

    let mut ctx = Ctx {
        edges: topology.edges().collect(),
        topology,
        fattree_k,
        schema,
        env: TypeEnv::default(),
    };

    // --- [[symbolic.var]] --- (before terms: their types may add names)
    let mut symbolics: Vec<(String, Type, Option<String>, Span)> = Vec::new();
    if let Some(sym_section) = section(&doc, "symbolic")? {
        if let Some(vars) = array_key(sym_section, "var")? {
            for v in vars {
                let TomlValue::Table(t) = &v.value else {
                    return Err(ScenarioError::at(v.span, "[[symbolic.var]] entries are tables"));
                };
                let (sname, _) = require_str(t, "name")?;
                let (stype, tspan) = require_str(t, "type")?;
                let ty = term::parse_type(stype, &env)
                    .map_err(|e| ScenarioError::at(tspan, format!("bad symbolic type: {e}")))?;
                env.register(&ty);
                let constraint = str_key(t, "constraint")?.map(|(s, _)| s.to_owned());
                symbolics.push((sname.to_owned(), ty, constraint, v.span));
            }
        }
    }
    ctx.env = env;

    // --- [policy] ---
    let mut default_policy: Option<RoutePolicy> = None;
    let mut edge_policies: Vec<((NodeId, NodeId), RoutePolicy)> = Vec::new();
    if let Some(policy_section) = section(&doc, "policy")? {
        if let Some(clauses) = array_key(policy_section, "default")? {
            default_policy = Some(compile_policy(&ctx, clauses)?);
        }
        if let Some(edges) = edge_policy_entries(policy_section)? {
            for entry in edges {
                let TomlValue::Table(t) = &entry.value else {
                    return Err(ScenarioError::at(
                        entry.span,
                        "[[policy.edge]] entries are tables",
                    ));
                };
                let (from, fspan) = require_str(t, "from")?;
                let (to, tspan) = require_str(t, "to")?;
                let u = ctx.node(from, fspan)?;
                let v = ctx.node(to, tspan)?;
                if !ctx.edges.contains(&(u, v)) {
                    return Err(ScenarioError::at(
                        fspan,
                        format!("the topology has no edge {from:?} -> {to:?}"),
                    ));
                }
                let clauses = array_key(t, "clauses")?.ok_or_else(|| {
                    ScenarioError::at(entry.span, "missing required key \"clauses\"")
                })?;
                edge_policies.push(((u, v), compile_policy(&ctx, clauses)?));
            }
        }
    }

    // --- [failures] ---
    let mut failures: Option<FailureModel> = None;
    if let Some(fail_section) = section(&doc, "failures")? {
        let (budget, bspan) = int_key(fail_section, "budget")?.ok_or_else(|| {
            ScenarioError::at(fail_section.span, "missing required key \"budget\"")
        })?;
        if budget < 0 {
            return Err(ScenarioError::at(bspan, "the failure budget cannot be negative"));
        }
        let edges = array_key(fail_section, "edges")?.ok_or_else(|| {
            ScenarioError::at(fail_section.span, "missing required key \"edges\"")
        })?;
        let mut tracked = Vec::new();
        for e in edges {
            let (from, to, espan) = as_pair(e, "a failure edge")?;
            let u = ctx.node(&from, espan)?;
            let v = ctx.node(&to, espan)?;
            if !ctx.edges.contains(&(u, v)) {
                return Err(ScenarioError::at(
                    espan,
                    format!("the topology has no edge {from:?} -> {to:?}"),
                ));
            }
            tracked.push((u, v));
        }
        failures = Some(FailureModel::at_most(budget as u64, tracked));
    }

    // --- [init] ---
    let init_section = require_section(&doc, "init")?;
    let inits = per_node_exprs(&ctx, init_section, "initial route")?;
    let route_ty = ctx.schema.route_type();
    for (v, (expr, span)) in &inits {
        let ty = expr
            .type_of()
            .map_err(|e| ScenarioError::at(*span, format!("ill-typed initial route: {e}")))?;
        if ty != route_ty {
            return Err(ScenarioError::at(
                *span,
                format!(
                    "initial route of {:?} has type {ty}, expected the route type {route_ty}",
                    ctx.topology.name(*v)
                ),
            ));
        }
    }

    // --- [property] ---
    let property_section = require_section(&doc, "property")?;
    let property = per_node_temporal(&ctx, property_section, "property")?;

    // --- lower the network ---
    let mut builder = NetworkBuilder::from_schema(ctx.topology.clone(), ctx.schema.clone());
    if let Some(p) = default_policy {
        builder = builder.default_policy(p);
    }
    for (edge, p) in edge_policies {
        builder = builder.policy(edge, p);
    }
    if let Some(model) = failures {
        builder = builder.failures(model);
    }
    for (sname, ty, constraint, span) in symbolics {
        let constraint = constraint
            .map(|c| {
                term::parse_expr(&c, &ctx.env)
                    .map_err(|e| ScenarioError::at(span, format!("bad constraint: {e}")))
            })
            .transpose()?;
        builder = builder.symbolic(Symbolic::new(sname, ty, constraint));
    }
    for (v, (expr, _)) in &inits {
        builder = builder.init(*v, expr.clone());
    }
    let network = builder
        .build()
        .map_err(|e| ScenarioError::whole(format!("the scenario does not assemble: {e}")))?;

    // --- [interface] ---
    let interface_section = require_section(&doc, "interface")?;
    let interface = if let Some((true, _)) = bool_key(interface_section, "infer")? {
        let inferred = InferenceEngine::new(InferOptions::default())
            .infer(
                &network,
                &property,
                RoleMap::singleton(network.topology()),
                &[closing_env(&network)],
            )
            .map_err(|e| {
                ScenarioError::at(
                    interface_section.span,
                    format!("interface inference failed: {e}"),
                )
            })?;
        if !inferred.report.verified {
            return Err(ScenarioError::at(
                interface_section.span,
                "interface inference did not converge to a verified interface \
                 (write the interface explicitly)",
            ));
        }
        inferred.interface
    } else {
        per_node_temporal(&ctx, interface_section, "interface")?
    };

    let k = match declared_k {
        Some((k, span)) => {
            if k <= 0 {
                return Err(ScenarioError::at(span, "k must be positive"));
            }
            k as usize
        }
        None => ctx.fattree_k.unwrap_or_else(|| ctx.topology.node_count()),
    };

    Ok(CompiledScenario { name: name.to_owned(), figure, k, network, interface, property })
}

/// Reads a scenario from a file and compiles it.
///
/// # Errors
///
/// I/O problems are reported as a spanless [`ScenarioError`]; everything
/// else as [`compile_str`].
pub fn compile_file(path: &str) -> Result<CompiledScenario, ScenarioError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::whole(format!("cannot read {path:?}: {e}")))?;
    compile_str(&src)
}

fn edge_policy_entries(
    policy_section: &Table,
) -> Result<Option<&[Spanned<TomlValue>]>, ScenarioError> {
    array_key(policy_section, "edge")
}

fn compile_topology(t: &Table) -> Result<(Topology, Option<usize>), ScenarioError> {
    if let Some((k, span)) = int_key(t, "fattree")? {
        if !(2..=64).contains(&k) || k % 2 != 0 {
            return Err(ScenarioError::at(span, "fattree takes an even k between 2 and 64"));
        }
        return Ok((FatTree::new(k as usize).topology().clone(), Some(k as usize)));
    }
    let nodes = array_key(t, "nodes")?.ok_or_else(|| {
        ScenarioError::at(t.span, "the topology needs either fattree = K or nodes/edges")
    })?;
    let edges = array_key(t, "edges")?
        .ok_or_else(|| ScenarioError::at(t.span, "missing required key \"edges\""))?;
    let undirected = bool_key(t, "undirected")?.map(|(b, _)| b).unwrap_or(true);
    let mut topology = Topology::new();
    let mut seen: BTreeMap<String, NodeId> = BTreeMap::new();
    for n in nodes {
        let (name, span) = as_str(n, "a node name")?;
        if seen.contains_key(&name) {
            return Err(ScenarioError::at(span, format!("duplicate node {name:?}")));
        }
        let v = topology.add_node(&name);
        seen.insert(name, v);
    }
    for e in edges {
        let (from, to, span) = as_pair(e, "an edge")?;
        let u = *seen.get(&from).ok_or_else(|| {
            ScenarioError::at(span, format!("unknown node {from:?} (not in the topology)"))
        })?;
        let v = *seen.get(&to).ok_or_else(|| {
            ScenarioError::at(span, format!("unknown node {to:?} (not in the topology)"))
        })?;
        if undirected {
            topology.add_undirected(u, v);
        } else {
            topology.add_edge(u, v);
        }
    }
    Ok((topology, None))
}

fn compile_schema(t: &Table) -> Result<(RouteSchema, TypeEnv), ScenarioError> {
    let name = str_key(t, "name")?.map(|(s, _)| s.to_owned()).unwrap_or_else(|| "route".to_owned());
    let field_entries = array_key(t, "fields")?
        .ok_or_else(|| ScenarioError::at(t.span, "missing required key \"fields\""))?;
    let mut env = TypeEnv::default();
    let mut fields: Vec<(String, Type)> = Vec::new();
    for f in field_entries {
        let (fname, ftype, span) = as_pair(f, "a schema field")?;
        if fields.iter().any(|(n, _)| *n == fname) {
            return Err(ScenarioError::at(span, format!("duplicate field {fname:?}")));
        }
        let ty = term::parse_type(&ftype, &env)
            .map_err(|e| ScenarioError::at(span, format!("bad type of field {fname:?}: {e}")))?;
        env.register(&ty);
        fields.push((fname, ty));
    }
    if fields.is_empty() {
        return Err(ScenarioError::at(t.span, "the schema needs at least one field"));
    }
    let merge_entries = array_key(t, "merge")?
        .ok_or_else(|| ScenarioError::at(t.span, "missing required key \"merge\""))?;
    if merge_entries.is_empty() {
        return Err(ScenarioError::at(t.span, "the schema needs at least one merge key"));
    }
    let mut keys = Vec::new();
    for m in merge_entries {
        let (text, span) = as_str(m, "a merge key")?;
        let key: MergeKey =
            text.parse().map_err(|e| ScenarioError::at(span, format!("bad merge key: {e}")))?;
        validate_merge_key(&key, &fields, span)?;
        keys.push(key);
    }
    let schema = RouteSchema::new(name, fields, keys);
    env.register(schema.payload_type());
    env.route = Some(schema.route_type());
    Ok((schema, env))
}

fn validate_merge_key(
    key: &MergeKey,
    fields: &[(String, Type)],
    span: Span,
) -> Result<(), ScenarioError> {
    let field_ty = |f: &str| fields.iter().find(|(n, _)| n == f).map(|(_, t)| t);
    match key {
        MergeKey::Lower(f) | MergeKey::Higher(f) => match field_ty(f) {
            None => Err(ScenarioError::at(span, format!("merge key names unknown field {f:?}"))),
            Some(ty) if ty.is_numeric() => Ok(()),
            Some(ty) => Err(ScenarioError::at(
                span,
                format!("merge key on field {f:?} needs a numeric type, found {ty}"),
            )),
        },
        MergeKey::RankEnum(f, order) => {
            let Some(ty) = field_ty(f) else {
                return Err(ScenarioError::at(
                    span,
                    format!("merge key names unknown field {f:?}"),
                ));
            };
            let Some(def) = ty.enum_def() else {
                return Err(ScenarioError::at(
                    span,
                    format!("rank merge key on field {f:?} needs an enum type, found {ty}"),
                ));
            };
            for v in order {
                if def.variant_index(v).is_none() {
                    return Err(ScenarioError::at(
                        span,
                        format!("rank order names unknown variant {v:?} of {:?}", def.name()),
                    ));
                }
            }
            // totality: a rank must order *every* variant, or routes with
            // unranked variants are incomparable
            for v in def.variants() {
                if !order.contains(v) {
                    return Err(ScenarioError::at(
                        span,
                        format!(
                            "non-total merge key: rank order omits variant {v:?} of {:?}",
                            def.name()
                        ),
                    ));
                }
            }
            Ok(())
        }
        MergeKey::GuardFirst(guard) => validate_guard_fields(guard, fields, span),
    }
}

fn validate_guard_fields(
    guard: &RouteGuard,
    fields: &[(String, Type)],
    span: Span,
) -> Result<(), ScenarioError> {
    let field_ty = |f: &str| fields.iter().find(|(n, _)| n == f).map(|(_, t)| t);
    let check_field = |f: &str, want: &str, pred: &dyn Fn(&Type) -> bool| match field_ty(f) {
        None => Err(ScenarioError::at(span, format!("guard names unknown field {f:?}"))),
        Some(ty) if pred(ty) => Ok(()),
        Some(ty) => {
            Err(ScenarioError::at(span, format!("guard on field {f:?} needs {want}, found {ty}")))
        }
    };
    match guard {
        RouteGuard::True | RouteGuard::SymBool(_) => Ok(()),
        RouteGuard::HasTag { field, tag } => {
            check_field(field, "a set type", &|ty: &Type| ty.set_def().is_some())?;
            let def = field_ty(field).and_then(Type::set_def).expect("checked");
            if def.tag_index(tag).is_none() {
                return Err(ScenarioError::at(
                    span,
                    format!("set {:?} has no tag {tag:?}", def.name()),
                ));
            }
            Ok(())
        }
        RouteGuard::IntEq { field, .. } => {
            check_field(field, "an int type", &|ty: &Type| matches!(ty, Type::Int))
        }
        RouteGuard::BvEq { field, .. } => {
            check_field(field, "a bitvector type", &|ty: &Type| matches!(ty, Type::BitVec(_)))
        }
        RouteGuard::FieldEqVar { field, .. } => check_field(field, "any type", &|_| true),
        RouteGuard::Not(g) => validate_guard_fields(g, fields, span),
        RouteGuard::And(a, b) | RouteGuard::Or(a, b) => {
            validate_guard_fields(a, fields, span)?;
            validate_guard_fields(b, fields, span)
        }
    }
}

fn validate_op(op: &RewriteOp, ctx: &Ctx, span: Span) -> Result<(), ScenarioError> {
    let check = |f: &str, want: &str, pred: &dyn Fn(&Type) -> bool| match ctx.field_type(f) {
        None => Err(ScenarioError::at(span, format!("rewrite names unknown field {f:?}"))),
        Some(ty) if pred(ty) => Ok(()),
        Some(ty) => Err(ScenarioError::at(
            span,
            format!("ill-typed rewrite: field {f:?} needs {want}, found {ty}"),
        )),
    };
    match op {
        RewriteOp::IncInt { field, .. } => {
            check(field, "an int type", &|ty| matches!(ty, Type::Int))
        }
        RewriteOp::SetBv { field, .. } => {
            check(field, "a bitvector type", &|ty| matches!(ty, Type::BitVec(_)))
        }
        RewriteOp::SetBool { field, .. } => {
            check(field, "a boolean type", &|ty| matches!(ty, Type::Bool))
        }
        RewriteOp::SetEnum { field, variant } => {
            check(field, "an enum type", &|ty| ty.enum_def().is_some())?;
            let def = ctx.field_type(field).and_then(Type::enum_def).expect("checked");
            if def.variant_index(variant).is_none() {
                return Err(ScenarioError::at(
                    span,
                    format!("enum {:?} has no variant {variant:?}", def.name()),
                ));
            }
            Ok(())
        }
        RewriteOp::AddTag { field, tag } | RewriteOp::RemoveTag { field, tag } => {
            check(field, "a set type", &|ty| ty.set_def().is_some())?;
            let def = ctx.field_type(field).and_then(Type::set_def).expect("checked");
            if def.tag_index(tag).is_none() {
                return Err(ScenarioError::at(
                    span,
                    format!("set {:?} has no tag {tag:?}", def.name()),
                ));
            }
            Ok(())
        }
    }
}

fn compile_policy(ctx: &Ctx, clauses: &[Spanned<TomlValue>]) -> Result<RoutePolicy, ScenarioError> {
    let mut policy = RoutePolicy::new();
    let fields: Vec<(String, Type)> = ctx.schema.record_def().fields().to_vec();
    for c in clauses {
        let (text, span) = as_str(c, "a policy clause")?;
        let clause: PolicyClause =
            text.parse().map_err(|e| ScenarioError::at(span, format!("bad policy clause: {e}")))?;
        validate_guard_fields(&clause.guard, &fields, span)?;
        if let timepiece_algebra::ClauseAction::Rewrite(ops) = &clause.action {
            for op in ops {
                validate_op(op, ctx, span)?;
            }
        }
        policy = policy.when(clause.guard, clause.action);
    }
    Ok(policy)
}

/// Reads a `default = TERM` plus `[SECTION.node]` overrides into one
/// expression per node.
fn per_node_exprs(
    ctx: &Ctx,
    t: &Table,
    what: &str,
) -> Result<BTreeMap<NodeId, (Expr, Span)>, ScenarioError> {
    let default = str_key(t, "default")?
        .map(|(s, span)| {
            term::parse_expr(s, &ctx.env)
                .map(|e| (e, span))
                .map_err(|e| ScenarioError::at(span, format!("bad {what}: {e}")))
        })
        .transpose()?;
    let mut out: BTreeMap<NodeId, (Expr, Span)> = BTreeMap::new();
    if let Some((def, span)) = &default {
        for v in ctx.topology.nodes() {
            out.insert(v, (def.clone(), *span));
        }
    }
    if let Some(node_table) = section(t, "node")? {
        for (key, value) in &node_table.entries {
            let v = ctx.node(&key.value, key.span)?;
            let (text, span) = as_str(value, what)?;
            let expr = term::parse_expr(&text, &ctx.env)
                .map_err(|e| ScenarioError::at(span, format!("bad {what}: {e}")))?;
            out.insert(v, (expr, span));
        }
    }
    for v in ctx.topology.nodes() {
        if !out.contains_key(&v) {
            return Err(ScenarioError::at(
                t.span,
                format!(
                    "node {:?} has no {what} (add a default or a per-node entry)",
                    ctx.topology.name(v)
                ),
            ));
        }
    }
    Ok(out)
}

/// As [`per_node_exprs`], but for temporal terms, assembled into
/// [`NodeAnnotations`].
fn per_node_temporal(ctx: &Ctx, t: &Table, what: &str) -> Result<NodeAnnotations, ScenarioError> {
    let default = str_key(t, "default")?
        .map(|(s, span)| {
            term::parse_temporal(s, &ctx.env)
                .map_err(|e| ScenarioError::at(span, format!("bad {what}: {e}")))
        })
        .transpose()?;
    let mut overrides: Vec<(NodeId, Temporal)> = Vec::new();
    if let Some(node_table) = section(t, "node")? {
        for (key, value) in &node_table.entries {
            let v = ctx.node(&key.value, key.span)?;
            let (text, span) = as_str(value, what)?;
            let q = term::parse_temporal(&text, &ctx.env)
                .map_err(|e| ScenarioError::at(span, format!("bad {what}: {e}")))?;
            overrides.push((v, q));
        }
    }
    let Some(default) = default else {
        let covered: HashSet<NodeId> = overrides.iter().map(|(v, _)| *v).collect();
        for v in ctx.topology.nodes() {
            if !covered.contains(&v) {
                return Err(ScenarioError::at(
                    t.span,
                    format!(
                        "node {:?} has no {what} (add a default or a per-node entry)",
                        ctx.topology.name(v)
                    ),
                ));
            }
        }
        // every node has an override; seed with the first and overwrite all
        let mut ann = NodeAnnotations::new(
            &ctx.topology,
            overrides.first().expect("nonempty topology").1.clone(),
        );
        for (v, q) in overrides {
            ann.set(v, q);
        }
        return Ok(ann);
    };
    let mut ann = NodeAnnotations::new(&ctx.topology, default);
    for (v, q) in overrides {
        ann.set(v, q);
    }
    Ok(ann)
}
